"""Setuptools shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` path (``--no-use-pep517``).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
