"""Parallel/batched crypto engine — end-to-end and primitive speedups.

Three legs per protocol, all at production key sizes (2048-bit RSA and
Paillier moduli, 2048-bit SRA group):

* ``legacy`` — the pre-engine scalar path: Euler-criterion group
  membership, Carmichael Paillier decryption, plain (non-CRT) RSA, and
  one primitive call per tuple.
* ``serial`` — the batched engine without a pool: Jacobi membership,
  CRT Paillier and RSA decryption, batch dispatch in-process.
* ``pooled`` — the same engine with a 4-worker process pool forced on.

Every leg must produce the identical global result (this doubles as the
CI divergence check, run in smoke mode with small keys via
``REPRO_BENCH_SMOKE=1``).  In full mode the run asserts the acceptance
criteria: at least one protocol ≥ 2× end-to-end with 4 workers vs the
legacy serial path, and CRT Paillier decryption alone ≥ 2× vs
Carmichael.  Results land in ``benchmarks/out/BENCH_parallel_crypto.json``
and a rendered table in ``benchmarks/out/parallel_crypto.txt``.

Note on topology: speedups here are dominated by the algorithmic fast
paths (Jacobi, CRT); on a single-CPU container the process pool adds
dispatch overhead without adding cores, so ``pooled`` ≈ ``serial``.
The JSON records ``cpu_count`` so multi-core runs are comparable.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import OUT_DIR, write_report

from repro import (
    CertificationAuthority,
    CommutativeConfig,
    DASConfig,
    Federation,
    PMConfig,
    run_join_query,
    setup_client,
)
from repro.crypto import paillier
from repro.crypto.backend import active_backend
from repro.crypto.engine import CryptoEngine
from repro.crypto.homomorphic import PaillierScheme
from repro.mediation.access_control import allow_all
from repro.relational.algebra import natural_join
from repro.relational.datagen import WorkloadSpec, generate

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

RSA_BITS = 1024 if SMOKE else 2048
PAILLIER_BITS = 768 if SMOKE else 2048
GROUP_BITS = 256 if SMOKE else 2048
WORKERS = 4
QUERY = "select * from R1 natural join R2"

REPORT: dict = {
    "benchmark": "parallel_crypto",
    "smoke": SMOKE,
    "config": {
        "rsa_bits": RSA_BITS,
        "paillier_bits": PAILLIER_BITS,
        "group_bits": GROUP_BITS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "crypto_backend": active_backend().name,
    },
}


@pytest.fixture(scope="module")
def env():
    ca = CertificationAuthority(key_bits=RSA_BITS)
    client = setup_client(
        ca,
        identity="bench-parallel-client",
        properties={("role", "analyst")},
        rsa_bits=RSA_BITS,
        homomorphic_scheme=PaillierScheme(PAILLIER_BITS),
    )
    workload = generate(
        WorkloadSpec(
            domain_1=10,
            domain_2=10,
            overlap=5,
            rows_per_value_1=2,
            rows_per_value_2=2,
            payload_attributes=2,
            seed=2007,
        )
    )
    engines = {
        "legacy": CryptoEngine(workers=0, legacy=True),
        "serial": CryptoEngine(workers=0),
        "pooled": CryptoEngine(workers=WORKERS, threshold=1),
    }
    yield {"ca": ca, "client": client, "workload": workload, "engines": engines}
    engines["pooled"].close()


def _federation(env) -> Federation:
    workload = env["workload"]
    federation = Federation(ca=env["ca"])
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(env["client"])
    return federation


PROTOCOLS = [
    ("das", lambda: DASConfig(buckets=3)),
    ("commutative", lambda: CommutativeConfig(group_bits=GROUP_BITS)),
    ("private-matching", lambda: PMConfig()),
]


def test_end_to_end_speedups(env):
    expected = natural_join(
        env["workload"].relation_1, env["workload"].relation_2
    )
    protocols: dict[str, dict] = {}
    for protocol, make_config in PROTOCOLS:
        timings: dict[str, float] = {}
        for mode, engine in env["engines"].items():
            started = time.perf_counter()
            result = run_join_query(
                _federation(env),
                QUERY,
                protocol=protocol,
                config=make_config(),
                engine=engine,
            )
            timings[mode] = time.perf_counter() - started
            # Divergence gate (CI smoke job): every engine mode must
            # deliver the reference join, byte for byte.
            assert result.global_result == expected, (protocol, mode)
        protocols[protocol] = {
            "seconds": {mode: round(t, 4) for mode, t in timings.items()},
            "speedup_serial_vs_legacy": round(
                timings["legacy"] / timings["serial"], 2
            ),
            "speedup_pooled_vs_legacy": round(
                timings["legacy"] / timings["pooled"], 2
            ),
        }
    REPORT["protocols"] = protocols
    if not SMOKE:
        best = max(
            p["speedup_pooled_vs_legacy"] for p in protocols.values()
        )
        assert best >= 2.0, f"no protocol reached 2x (best {best})"


def test_crt_paillier_decrypt_speedup():
    key = paillier.generate_keypair(PAILLIER_BITS)
    ciphertexts = [
        paillier.encrypt(key.public_key, 3**i % key.public_key.n)
        for i in range(12)
    ]

    def time_leg(decrypt):
        plaintexts = []
        started = time.perf_counter()
        for ciphertext in ciphertexts:
            plaintexts.append(decrypt(key, ciphertext))
        return plaintexts, (time.perf_counter() - started) / len(ciphertexts)

    carmichael_values, carmichael_s = time_leg(paillier.decrypt_carmichael)
    crt_values, crt_s = time_leg(paillier.decrypt_crt)
    assert crt_values == carmichael_values
    speedup = carmichael_s / crt_s
    REPORT["paillier_decrypt"] = {
        "bits": PAILLIER_BITS,
        "carmichael_us_per_op": round(carmichael_s * 1e6, 1),
        "crt_us_per_op": round(crt_s * 1e6, 1),
        "speedup": round(speedup, 2),
    }
    if not SMOKE:
        assert speedup >= 2.0, f"CRT decryption only {speedup:.2f}x"


def test_write_report():
    """Render the table and persist the JSON artifact (runs last)."""
    assert "protocols" in REPORT and "paillier_decrypt" in REPORT
    OUT_DIR.mkdir(exist_ok=True)
    json_path = OUT_DIR / "BENCH_parallel_crypto.json"
    json_path.write_text(json.dumps(REPORT, indent=2) + "\n")

    lines = [
        "Parallel/batched crypto engine - end-to-end protocol runs "
        f"({'smoke' if SMOKE else 'full'} mode)",
        f"keys: rsa={RSA_BITS} paillier={PAILLIER_BITS} group={GROUP_BITS}"
        f"  workers={WORKERS}  cpus={os.cpu_count()}",
        f"{'protocol':20s} {'legacy_s':>9s} {'serial_s':>9s} "
        f"{'pooled_s':>9s} {'serial_x':>9s} {'pooled_x':>9s}",
    ]
    for protocol, row in REPORT["protocols"].items():
        seconds = row["seconds"]
        lines.append(
            f"{protocol:20s} {seconds['legacy']:>9.3f} "
            f"{seconds['serial']:>9.3f} {seconds['pooled']:>9.3f} "
            f"{row['speedup_serial_vs_legacy']:>9.2f} "
            f"{row['speedup_pooled_vs_legacy']:>9.2f}"
        )
    micro = REPORT["paillier_decrypt"]
    lines.append(
        f"paillier decrypt ({micro['bits']} bits): "
        f"carmichael {micro['carmichael_us_per_op']:.0f}us -> "
        f"crt {micro['crt_us_per_op']:.0f}us "
        f"({micro['speedup']:.2f}x)"
    )
    write_report("parallel_crypto.txt", "\n".join(lines))
    print(f"[json written to {json_path}]")
