"""T2 — concurrent sessions vs the sequential baseline, one serve trio.

The sessionised transport claims one mediator/S1/S2 endpoint trio can
serve many interleaved join queries (docs/transport.md).  This bench
drives the claim with :mod:`repro.loadgen`: the same 8-session
commutative workload runs once fully concurrent and once with
``concurrency=1``, against endpoints configured with a simulated link
round-trip (``ack_delay``).  Concurrent sessions overlap each other's
link waits, so the wall-clock ratio — the **concurrency speedup** —
must clear 2x; and because both runs execute identical queries, the
result rows must agree across all sessions and both modes.

The measured speedup is committed as a perf-trajectory artifact
(``BENCH_concurrency.json``); the CI perf gate re-measures it in smoke
mode and fails on a >30% regression against the committed baseline.
"""

from conftest import smoke_mode, write_bench_json, write_report

from repro.loadgen import LoadgenConfig, run_load

SESSIONS = 8
#: Simulated link round-trip per message.  Large against the per-query
#: crypto time of the tiny workload below, so the overlap — not raw
#: CPU — dominates the concurrent/sequential ratio and the bench stays
#: meaningful on small CI hosts.
ACK_DELAY = 0.03

WORKLOAD = dict(
    sessions=SESSIONS,
    protocol="commutative",
    ack_delay=ACK_DELAY,
    domain=6,
    overlap=3,
    rows_per_value=1,
)


def test_concurrent_sessions_speedup():
    concurrent = run_load(LoadgenConfig(**WORKLOAD))
    sequential = run_load(LoadgenConfig(concurrency=1, **WORKLOAD))

    # Correctness first: every query of both runs completed, and every
    # session — concurrent or not — produced the same join.
    assert not concurrent.failed, [o.error for o in concurrent.failed]
    assert not sequential.failed, [o.error for o in sequential.failed]
    rows = {outcome.rows for outcome in concurrent.completed}
    rows |= {outcome.rows for outcome in sequential.completed}
    assert len(rows) == 1, f"sessions disagree on the join: {rows}"

    # Stitching: each session's trace is separable on both sides of the
    # wire — client spans and endpoint recv spans keyed by its id.
    for session_id, entry in concurrent.stitching.items():
        assert entry["spans"] > 0, session_id
        assert entry["traces"] >= 1, session_id
        assert entry["endpoint_spans"] > 0, session_id

    speedup = sequential.wall_seconds / concurrent.wall_seconds
    # Smoke mode (CI) relaxes the local threshold — the committed
    # baseline comparison is the arbiter there; a full run on a quiet
    # host must clear the acceptance bar outright.
    floor = 1.3 if smoke_mode() else 2.0
    assert speedup >= floor, (
        f"{SESSIONS} concurrent sessions only {speedup:.2f}x faster than "
        f"sequential (floor {floor}x): concurrent "
        f"{concurrent.wall_seconds:.3f}s vs sequential "
        f"{sequential.wall_seconds:.3f}s"
    )

    write_report(
        "concurrent_sessions.txt",
        "\n".join(
            [
                f"Concurrent sessions: {SESSIONS} clients, one serve trio, "
                f"ack_delay {ACK_DELAY * 1000:.0f}ms",
                concurrent.render(),
                sequential.render(),
                f"concurrency speedup: {speedup:.2f}x",
            ]
        ),
    )
    write_bench_json(
        "concurrency",
        metrics={
            "speedup": round(speedup, 3),
            "concurrent_throughput": round(concurrent.throughput, 3),
            "sequential_throughput": round(sequential.throughput, 3),
            "concurrent_wall_seconds": round(concurrent.wall_seconds, 4),
            "sequential_wall_seconds": round(sequential.wall_seconds, 4),
            "concurrent_latency_p95": round(concurrent.latency(0.95), 4),
            "completed": len(concurrent.completed) + len(sequential.completed),
        },
        # Only the host-independent ratio is regression-gated; absolute
        # throughput and latency vary with CI hardware and stay
        # informational.
        gate={"speedup": {"direction": "min", "tolerance": 0.30}},
        context=dict(WORKLOAD),
    )
