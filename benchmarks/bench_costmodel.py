"""A7 — Protocol ranking under network cost models.

The Section 6 ranking is derived on an instrumented in-process bus; in
the paper's inter-enterprise target environment, links are WANs where
per-message latency competes with byte volume.  This bench re-costs the
same transcripts under LAN/WAN/internet models and a latency-dominated
extreme, showing where the commutative protocol's lead holds and where
DAS's single-burst sources pay off.
"""

from conftest import write_report

from repro import DASConfig, run_join_query
from repro.mediation.costmodel import INTERNET, LAN, WAN, NetworkCostModel
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"

SATELLITE = NetworkCostModel(
    name="satellite", latency_seconds=2.0, bandwidth_bytes_per_second=1e8
)
#: Pure-bandwidth model: zero latency isolates the byte-volume ranking.
BULK = NetworkCostModel(
    name="bulk", latency_seconds=0.0, bandwidth_bytes_per_second=12.5e6
)
MODELS = (BULK, LAN, WAN, INTERNET, SATELLITE)


def _workload():
    return generate(
        WorkloadSpec(
            domain_1=12,
            domain_2=12,
            overlap=6,
            rows_per_value_1=2,
            rows_per_value_2=2,
            seed=77,
        )
    )


def test_costmodel_matrix(benchmark, make_federation):
    workload = _workload()

    def run_all():
        return {
            label: run_join_query(
                make_federation(workload), QUERY, protocol=protocol,
                config=config,
            )
            for label, protocol, config in (
                ("das", "das", None),
                ("das-source", "das", DASConfig(setting="source")),
                ("commutative", "commutative", None),
                ("private-matching", "private-matching", None),
            )
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "A7 - estimated transfer seconds per protocol and network model",
        f"{'protocol':20s} " + " ".join(f"{m.name:>10s}" for m in MODELS),
    ]
    costs = {
        label: {
            model.name: model.transcript_cost(result.network)
            for model in MODELS
        }
        for label, result in results.items()
    }
    for label, by_model in costs.items():
        lines.append(
            f"{label:20s} "
            + " ".join(f"{by_model[m.name]:>10.4f}" for m in MODELS)
        )

    # Byte-dominated (zero-latency) ranking: the Section 6 ordering.
    assert costs["commutative"]["bulk"] == min(
        c["bulk"] for c in costs.values()
    )
    # Latency-dominated ranking: the *message count* decides, and DAS's
    # leaner flow (8 messages, single-burst sources) beats both
    # interactive protocols — a trade-off invisible on the paper's
    # qualitative level that the cost model surfaces.
    for label in ("commutative", "private-matching"):
        assert costs["das"]["satellite"] < costs[label]["satellite"]
    # The source setting adds one round trip over client-setting DAS; on
    # latency-dominated links it still undercuts PM's longer flow (on
    # byte-dominated links DAS's superset volume dominates instead).
    for model in (WAN, INTERNET, SATELLITE):
        assert costs["das-source"][model.name] < (
            costs["private-matching"][model.name]
        )
    write_report("costmodel.txt", "\n".join(lines))
