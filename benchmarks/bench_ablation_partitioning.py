"""A1 — DAS partitioning ablation: efficiency vs inference exposure.

Section 6: "Small partitions with only a few values are more efficient
(less post-processing is necessary) but can leak confidential
information (see [15] and [8])."  Sweeping the bucket count produces the
two opposing curves: false-positive rate (client post-processing) falls
while inference exposure rises — meeting at singleton partitions, which
are exact but identify each value.
"""

from conftest import write_report

from repro import DASConfig, run_join_query
from repro.analysis.inference import das_efficiency, partition_exposure
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"
BUCKETS = (1, 2, 4, 8, 16)


def _workload():
    return generate(
        WorkloadSpec(
            domain_1=16,
            domain_2=16,
            overlap=8,
            rows_per_value_1=2,
            rows_per_value_2=2,
            seed=41,
        )
    )


def test_partitioning_tradeoff_sweep(benchmark, make_federation):
    workload = _workload()

    def sweep():
        points = []
        for buckets in BUCKETS:
            result = run_join_query(
                make_federation(workload),
                QUERY,
                protocol="das",
                config=DASConfig(buckets=buckets, strategy="equi_depth"),
            )
            efficiency = das_efficiency(result)
            table = result.artifacts["index_tables"]["S1"]
            exposure = partition_exposure(table, workload.relation_1)
            points.append((buckets, efficiency, exposure))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    exposures = [exposure.value_exposure for _, _, exposure in points]
    false_positive_rates = [
        efficiency.false_positive_rate for _, efficiency, _ in points
    ]
    # Exposure rises monotonically with finer partitioning...
    assert exposures == sorted(exposures)
    # ...while post-processing waste falls (weakly) monotonically.
    assert false_positive_rates == sorted(false_positive_rates, reverse=True)
    # The limit cases the paper highlights:
    assert exposures[0] <= 1 / 8  # one bucket: near-anonymous values
    assert false_positive_rates[-1] <= false_positive_rates[0]

    lines = [
        "A1 - DAS partition granularity: efficiency vs inference exposure",
        f"{'buckets':>8s} {'false-pos rate':>14s} {'value exposure':>15s} "
        f"{'|R_C|':>6s} {'exact':>6s}",
    ]
    for buckets, efficiency, exposure in points:
        lines.append(
            f"{buckets:>8d} {efficiency.false_positive_rate:>14.3f} "
            f"{exposure.value_exposure:>15.3f} "
            f"{efficiency.server_result_size:>6d} "
            f"{efficiency.exact_join_size:>6d}"
        )
    write_report("ablation_partitioning.txt", "\n".join(lines))


def test_singleton_limit_case(make_federation):
    """Singleton partitioning: zero waste, total exposure."""
    workload = _workload()
    result = run_join_query(
        make_federation(workload),
        QUERY,
        protocol="das",
        config=DASConfig(strategy="singleton"),
    )
    efficiency = das_efficiency(result)
    assert efficiency.false_positives == 0
    table = result.artifacts["index_tables"]["S1"]
    exposure = partition_exposure(table, workload.relation_1)
    assert exposure.value_exposure == 1.0
