"""E2 — Reproduce Table 2: applied cryptographic primitives.

The instrumented primitive counters of real runs are categorized into
the paper's terms; each assertion is one cell of Table 2.  The benchmark
times the protocol run that produces the counters.

Every run is executed through the telemetry ``MetricsRegistry`` with a
legacy ``PrimitiveCounter`` installed at the same scope: both observe
the identical stream of ``record()`` calls, so their totals must agree
exactly.  That parity assertion pins the registry-based accounting to
the counter the original benchmarks were built on, and the registry
snapshot for each protocol is persisted under ``benchmarks/out/`` as a
machine-readable companion to the rendered table.
"""

import json

from conftest import write_report

from repro import run_join_query
from repro.analysis.primitives import (
    baseline_operations,
    primitive_profile,
    table2,
)
from repro.crypto.instrumentation import count_primitives
from repro.telemetry import MetricsRegistry, use_metrics
from repro.telemetry.exporters import registry_snapshot_json
from repro.telemetry.metrics import PRIMITIVE_OPS_METRIC

QUERY = "select * from R1 natural join R2"


def run_with_registry(make_federation, workload, protocol):
    """One traced run; returns (result, registry) after asserting parity.

    The registry and the legacy counter are installed at the same scope,
    so ``registry.primitive_counts()`` must equal the counter's dict —
    any drift means the shim stopped forwarding ``record()`` calls.
    """
    registry = MetricsRegistry()
    with use_metrics(registry), count_primitives() as counter:
        result = run_join_query(
            make_federation(workload), QUERY, protocol=protocol
        )
    assert registry.primitive_counts() == dict(counter.counts)
    assert registry.total(PRIMITIVE_OPS_METRIC) == sum(counter.counts.values())
    return result, registry


def test_table2_das_row(benchmark, make_federation, default_workload):
    result, _ = benchmark.pedantic(
        lambda: run_with_registry(make_federation, default_workload, "das"),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == ("hashfunction",)


def test_table2_commutative_row(benchmark, make_federation, default_workload):
    result, _ = benchmark.pedantic(
        lambda: run_with_registry(
            make_federation, default_workload, "commutative"
        ),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == (
        "commutative encryption",
        "hashfunction",
    )


def test_table2_private_matching_row(benchmark, make_federation, default_workload):
    result, _ = benchmark.pedantic(
        lambda: run_with_registry(
            make_federation, default_workload, "private-matching"
        ),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == (
        "homomorphic encryption",
        "random numbers",
    )


def test_table2_report(make_federation, default_workload):
    """Render the full reproduced table (and check the baseline split)."""
    profiles = []
    snapshots = {}
    for protocol in ("das", "commutative", "private-matching"):
        result, registry = run_with_registry(
            make_federation, default_workload, protocol
        )
        profiles.append(primitive_profile(result))
        snapshots[protocol] = json.loads(registry_snapshot_json(registry))
        baseline = baseline_operations(result.primitive_counter)
        # The hybrid/symmetric machinery belongs to the MMM baseline in
        # every row (PM's session-key variant uses the symmetric layer
        # directly rather than full hybrid wrapping).
        assert any(
            op.startswith(("hybrid.", "symmetric.", "rsa."))
            for op in baseline
        )
    write_report("table2.txt", table2(profiles))
    write_report(
        "table2_metrics.json", json.dumps(snapshots, indent=2, sort_keys=True)
    )
