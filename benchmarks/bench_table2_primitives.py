"""E2 — Reproduce Table 2: applied cryptographic primitives.

The instrumented primitive counters of real runs are categorized into
the paper's terms; each assertion is one cell of Table 2.  The benchmark
times the protocol run that produces the counters.
"""

from conftest import write_report

from repro import run_join_query
from repro.analysis.primitives import (
    baseline_operations,
    primitive_profile,
    table2,
)

QUERY = "select * from R1 natural join R2"


def test_table2_das_row(benchmark, make_federation, default_workload):
    result = benchmark.pedantic(
        lambda: run_join_query(
            make_federation(default_workload), QUERY, protocol="das"
        ),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == ("hashfunction",)


def test_table2_commutative_row(benchmark, make_federation, default_workload):
    result = benchmark.pedantic(
        lambda: run_join_query(
            make_federation(default_workload), QUERY, protocol="commutative"
        ),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == (
        "commutative encryption",
        "hashfunction",
    )


def test_table2_private_matching_row(benchmark, make_federation, default_workload):
    result = benchmark.pedantic(
        lambda: run_join_query(
            make_federation(default_workload), QUERY,
            protocol="private-matching",
        ),
        rounds=3,
        iterations=1,
    )
    profile = primitive_profile(result)
    assert profile.category_names() == (
        "homomorphic encryption",
        "random numbers",
    )


def test_table2_report(make_federation, default_workload):
    """Render the full reproduced table (and check the baseline split)."""
    profiles = []
    for protocol in ("das", "commutative", "private-matching"):
        result = run_join_query(
            make_federation(default_workload), QUERY, protocol=protocol
        )
        profiles.append(primitive_profile(result))
        baseline = baseline_operations(result.primitive_counter)
        # The hybrid/symmetric machinery belongs to the MMM baseline in
        # every row (PM's session-key variant uses the symmetric layer
        # directly rather than full hybrid wrapping).
        assert any(
            op.startswith(("hybrid.", "symmetric.", "rsa."))
            for op in baseline
        )
    write_report("table2.txt", table2(profiles))
