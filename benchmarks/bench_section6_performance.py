"""E6 — Section 6 performance ranking, swept over workload size.

The paper concludes "the commutative approach seems to be the most
efficient one to be employed in a secure mediation system" and calls the
PM polynomial evaluation "quite expensive".  This bench sweeps the
active-domain size, times each protocol end-to-end, and checks the
qualitative ordering: commutative cheapest in protocol-step time, PM the
expensive outlier, with the gap growing with the domain size.
"""

import pytest
from conftest import write_report

from repro import run_join_query
from repro.analysis.comparison import measure
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"
DOMAIN_SIZES = (6, 12, 24)


def _workload(domain):
    return generate(
        WorkloadSpec(
            domain_1=domain,
            domain_2=domain,
            overlap=domain // 2,
            rows_per_value_1=2,
            rows_per_value_2=2,
            seed=600 + domain,
        )
    )


@pytest.mark.parametrize("protocol", ["das", "commutative", "private-matching"])
def test_protocol_wall_clock(benchmark, make_federation, protocol):
    """pytest-benchmark series: one end-to-end run at the middle size."""
    workload = _workload(12)
    benchmark.pedantic(
        lambda: run_join_query(
            make_federation(workload), QUERY, protocol=protocol
        ),
        rounds=3,
        iterations=1,
    )


def test_section6_ranking_sweep(make_federation):
    """The qualitative shape across the domain sweep."""
    lines = [
        "Section 6 performance sweep (protocol-step seconds, bytes on wire)",
        f"{'|dom|':>6s} {'protocol':30s} {'seconds':>9s} {'bytes':>10s} "
        f"{'crypto-ops':>10s}",
    ]
    ratios = []
    for domain in DOMAIN_SIZES:
        workload = _workload(domain)
        rows = {}
        for protocol in ("das", "commutative", "private-matching"):
            result = run_join_query(
                make_federation(workload), QUERY, protocol=protocol
            )
            row = measure(result)
            rows[protocol] = row
            lines.append(
                f"{domain:>6d} {row.protocol:30s} {row.total_seconds:>9.4f} "
                f"{row.total_bytes:>10d} {row.crypto_operations:>10d}"
            )
        # The paper's ranking: PM is the expensive outlier at every size.
        assert rows["private-matching"].total_seconds > (
            rows["commutative"].total_seconds
        )
        assert rows["private-matching"].crypto_operations > (
            rows["das"].crypto_operations
        )
        ratios.append(
            rows["private-matching"].total_seconds
            / max(rows["commutative"].total_seconds, 1e-9)
        )
    # PM's polynomial evaluation is quadratic in the domain size, so its
    # disadvantage must grow along the sweep.
    assert ratios[-1] > ratios[0]
    lines.append(
        f"\nPM/commutative time ratio along the sweep: "
        + " -> ".join(f"{r:.1f}x" for r in ratios)
    )
    write_report("section6_performance.txt", "\n".join(lines))


def test_commutative_cheapest_crypto_among_interactive(make_federation):
    """Source-side extra computation: 'only a small extra computation to
    encrypt their hash values and the hash values of the other
    datasource' — commutative crypto op count grows linearly with the
    domains, PM quadratically."""
    small, large = _workload(6), _workload(24)
    counts = {}
    for name, workload in (("small", small), ("large", large)):
        for protocol in ("commutative", "private-matching"):
            result = run_join_query(
                make_federation(workload), QUERY, protocol=protocol
            )
            counts[(name, protocol)] = sum(
                count
                for op, count in result.primitive_counter.counts.items()
                if op.startswith(("commutative.", "paillier.", "homomorphic."))
            )
    commutative_growth = counts[("large", "commutative")] / counts[
        ("small", "commutative")
    ]
    pm_growth = counts[("large", "private-matching")] / counts[
        ("small", "private-matching")
    ]
    assert pm_growth > commutative_growth
