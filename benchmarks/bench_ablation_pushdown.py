"""A5 — Selection push-down ablation (§2 remark / §8).

The paper keeps partial queries to ``select *`` but notes that "more
complex queries could be executed by the datasources".  With the
push-down optimizer, selective conditions are evaluated at the sources
*before* encryption; this bench quantifies the effect on traffic, crypto
operations, and the quantities the mediator still learns.
"""

from conftest import write_report

from repro import run_join_query
from repro.analysis.leakage import analyze
from repro.core.federation import Federation
from repro.mediation.access_control import allow_all
from repro.relational.datagen import WorkloadSpec, generate

DOMAIN = 16


def _workload():
    return generate(
        WorkloadSpec(
            domain_1=DOMAIN,
            domain_2=DOMAIN,
            overlap=8,
            rows_per_value_1=2,
            rows_per_value_2=2,
            seed=55,
        )
    )


def _federation(ca, client, workload, push_down):
    federation = Federation(ca=ca)
    federation.mediator.push_down = push_down
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def test_pushdown_sweep(benchmark, ca, client):
    workload = _workload()
    cutoff = sorted(workload.relation_1.active_domain("k"))[DOMAIN // 4]
    query = f"select * from R1 natural join R2 where k <= {cutoff}"

    def run_pair(protocol):
        plain = run_join_query(
            _federation(ca, client, workload, False), query, protocol=protocol
        )
        pushed = run_join_query(
            _federation(ca, client, workload, True), query, protocol=protocol
        )
        assert plain.global_result == pushed.global_result
        return plain, pushed

    def sweep():
        return {
            protocol: run_pair(protocol)
            for protocol in ("das", "commutative", "private-matching")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A5 - selection push-down: datasources pre-filter partial results",
        f"query: {results['das'][0].query}",
        f"{'protocol':30s} {'mode':>8s} {'bytes':>10s} {'crypto-ops':>10s}",
    ]
    for protocol, (plain, pushed) in results.items():
        plain_ops = sum(plain.primitive_counter.counts.values())
        pushed_ops = sum(pushed.primitive_counter.counts.values())
        # Pre-filtering strictly reduces wire traffic and crypto work.
        assert pushed.total_bytes() < plain.total_bytes()
        assert pushed_ops < plain_ops
        lines.append(
            f"{plain.protocol:30s} {'plain':>8s} {plain.total_bytes():>10d} "
            f"{plain_ops:>10d}"
        )
        lines.append(
            f"{pushed.protocol:30s} {'pushed':>8s} {pushed.total_bytes():>10d} "
            f"{pushed_ops:>10d}"
        )
    write_report("ablation_pushdown.txt", "\n".join(lines))


def test_pushdown_shrinks_mediator_knowledge(ca, client):
    """With push-down the mediator's Table-1 quantities describe the
    *reduced* relations — residual leakage shrinks with selectivity."""
    workload = _workload()
    cutoff = sorted(workload.relation_1.active_domain("k"))[DOMAIN // 4]
    query = f"select * from R1 natural join R2 where k <= {cutoff}"
    plain = analyze(
        run_join_query(
            _federation(ca, client, workload, False), query,
            protocol="commutative",
        )
    )
    pushed = analyze(
        run_join_query(
            _federation(ca, client, workload, True), query,
            protocol="commutative",
        )
    )
    assert pushed.mediator_learns["|domactive@S1|"] < (
        plain.mediator_learns["|domactive@S1|"]
    )
