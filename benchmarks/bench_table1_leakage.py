"""E1 — Reproduce Table 1: extra information disclosed per protocol.

For each protocol the leakage analyzer derives the Table-1 cells from
the actual run transcript; the assertions check every cell against the
paper's row, and the benchmark measures the analysis cost itself.
"""

from conftest import write_report

from repro import run_join_query
from repro.analysis.leakage import analyze, table1, verify_no_plaintext_leak

QUERY = "select * from R1 natural join R2"


def _run(make_federation, default_workload, protocol):
    return run_join_query(
        make_federation(default_workload), QUERY, protocol=protocol
    )


def test_table1_das_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "das")
    report = benchmark(analyze, result)
    workload = default_workload
    # Mediator cell: |R_i| and |R_C|.
    assert report.mediator_learns["|R1|"] == len(workload.relation_1)
    assert report.mediator_learns["|R2|"] == len(workload.relation_2)
    assert report.mediator_learns["|R_C|"] >= len(result.global_result)
    # Client cell: superset of the global result plus the index tables.
    assert (
        report.client_learns["superset_rows_received"]
        >= report.client_learns["exact_result_rows"]
    )
    assert report.client_learns["index_tables_received"] == 2


def test_table1_commutative_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "commutative")
    report = benchmark(analyze, result)
    workload = default_workload
    dom_1 = set(workload.relation_1.active_domain("k"))
    dom_2 = set(workload.relation_2.active_domain("k"))
    # Mediator cell: |domactive(R_i.A_join)| and the intersection size.
    assert report.mediator_learns["|domactive@S1|"] == len(dom_1)
    assert report.mediator_learns["|domactive@S2|"] == len(dom_2)
    assert report.mediator_learns["intersection_size"] == len(dom_1 & dom_2)
    # Client cell: only the exact global result (matched tuple sets).
    assert report.client_learns["matched_tuple_set_pairs"] == len(dom_1 & dom_2)


def test_table1_private_matching_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "private-matching")
    report = benchmark(analyze, result)
    workload = default_workload
    n = len(workload.relation_1.active_domain("k"))
    m = len(workload.relation_2.active_domain("k"))
    # Mediator cell: |domactive| from the polynomial degrees.
    assert report.mediator_learns["|domactive@S1|"] == n
    assert report.mediator_learns["|domactive@S2|"] == m
    # Client cell: n + m encrypted values, decipherable = exact result.
    assert report.client_learns["encrypted_values_received"] == n + m
    assert report.client_learns["decipherable_rows"] == len(result.global_result)


def test_table1_confidentiality_scan(benchmark, make_federation, default_workload):
    """The property underlying the whole table: the mediator sees no
    plaintext in any protocol."""
    results = [
        _run(make_federation, default_workload, protocol)
        for protocol in ("das", "commutative", "private-matching")
    ]
    relations = [default_workload.relation_1, default_workload.relation_2]

    def scan_all():
        return [verify_no_plaintext_leak(r, relations) for r in results]

    leaks = benchmark(scan_all)
    assert all(not found for found in leaks)
    write_report(
        "table1.txt", table1([analyze(result) for result in results])
    )
