"""E1 — Reproduce Table 1, plus the differential leakage-audit artifact.

For each protocol the leakage analyzer derives the Table-1 cells from
the actual run transcript; the assertions check every cell against the
paper's row, and the benchmark measures the analysis cost itself.

The final test turns the table into a *measured envelope*: it runs the
differential audit (adjacent workloads, per-adversary observable
distances — :mod:`repro.analysis.audit`) and writes the deterministic
``repro-leakage/1`` artifact gated in CI by
``scripts/check_leakage_regression.py`` against the committed
``benchmarks/baselines/BENCH_leakage_audit.json``.
"""

import pathlib
import sys

from conftest import OUT_DIR, smoke_mode, write_report

from repro import Federation, run_join_query
from repro.analysis.audit import (
    AuditConfig,
    differential_audit,
    leakage_json,
    write_leakage_artifact,
)
from repro.analysis.leakage import analyze, table1, verify_no_plaintext_leak
from repro.mediation.access_control import allow_all
from repro.relational.datagen import WorkloadSpec

QUERY = "select * from R1 natural join R2"

#: The canonical audit parameters — must match what a bare
#: ``repro audit --differential`` runs, so the committed baseline and
#: the CI candidate artifact describe the same workload.
CANONICAL_AUDIT_SPEC = WorkloadSpec(
    domain_1=10,
    domain_2=10,
    overlap=5,
    rows_per_value_1=2,
    rows_per_value_2=2,
    seed=7,
)


def _run(make_federation, default_workload, protocol):
    return run_join_query(
        make_federation(default_workload), QUERY, protocol=protocol
    )


def test_table1_das_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "das")
    report = benchmark(analyze, result)
    workload = default_workload
    # Mediator cell: |R_i| and |R_C|.
    assert report.mediator_learns["|R1|"] == len(workload.relation_1)
    assert report.mediator_learns["|R2|"] == len(workload.relation_2)
    assert report.mediator_learns["|R_C|"] >= len(result.global_result)
    # Client cell: superset of the global result plus the index tables.
    assert (
        report.client_learns["superset_rows_received"]
        >= report.client_learns["exact_result_rows"]
    )
    assert report.client_learns["index_tables_received"] == 2


def test_table1_commutative_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "commutative")
    report = benchmark(analyze, result)
    workload = default_workload
    dom_1 = set(workload.relation_1.active_domain("k"))
    dom_2 = set(workload.relation_2.active_domain("k"))
    # Mediator cell: |domactive(R_i.A_join)| and the intersection size.
    assert report.mediator_learns["|domactive@S1|"] == len(dom_1)
    assert report.mediator_learns["|domactive@S2|"] == len(dom_2)
    assert report.mediator_learns["intersection_size"] == len(dom_1 & dom_2)
    # Client cell: only the exact global result (matched tuple sets).
    assert report.client_learns["matched_tuple_set_pairs"] == len(dom_1 & dom_2)


def test_table1_private_matching_row(benchmark, make_federation, default_workload):
    result = _run(make_federation, default_workload, "private-matching")
    report = benchmark(analyze, result)
    workload = default_workload
    n = len(workload.relation_1.active_domain("k"))
    m = len(workload.relation_2.active_domain("k"))
    # Mediator cell: |domactive| from the polynomial degrees.
    assert report.mediator_learns["|domactive@S1|"] == n
    assert report.mediator_learns["|domactive@S2|"] == m
    # Client cell: n + m encrypted values, decipherable = exact result.
    assert report.client_learns["encrypted_values_received"] == n + m
    assert report.client_learns["decipherable_rows"] == len(result.global_result)


def test_table1_confidentiality_scan(benchmark, make_federation, default_workload):
    """The property underlying the whole table: the mediator sees no
    plaintext in any protocol."""
    results = [
        _run(make_federation, default_workload, protocol)
        for protocol in ("das", "commutative", "private-matching")
    ]
    relations = [default_workload.relation_1, default_workload.relation_2]

    def scan_all():
        return [verify_no_plaintext_leak(r, relations) for r in results]

    leaks = benchmark(scan_all)
    assert all(not found for found in leaks)
    write_report(
        "table1.txt", table1([analyze(result) for result in results])
    )


def _audit_factory(ca, client):
    """Audit federation factory reusing the session's key material."""

    def factory(workload, network):
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


def test_differential_leakage_audit(benchmark, ca, client):
    """E1b — the measured leakage envelope (``repro-leakage/1``).

    Produces ``benchmarks/out/BENCH_leakage_audit.json``, asserts the
    document is deterministic (byte-identical across two full audits,
    fresh ciphertexts and all), and proves the gate is not vacuous: the
    deliberately size-leaking canary transport must breach it.
    """
    factory = _audit_factory(ca, client)
    config = AuditConfig(spec=CANONICAL_AUDIT_SPEC)
    document = benchmark.pedantic(
        differential_audit,
        args=(config,),
        kwargs={"federation_factory": factory},
        rounds=1,
        iterations=1,
    )
    OUT_DIR.mkdir(exist_ok=True)
    artifact = OUT_DIR / "BENCH_leakage_audit.json"
    write_leakage_artifact(str(artifact), document)
    print(f"[leakage artifact written to {artifact}]")

    # The paper's Table-1 ordering shows up as measured distances: the
    # DAS mediator observes the largest cardinality movement (|R_C|),
    # private matching moves nothing the mediator can count.
    distances = {
        protocol: entry["adversaries"]["mediator"]["distances"]
        for protocol, entry in document["protocols"].items()
    }
    assert distances["das"]["max_cardinality_delta"] > 0
    assert distances["private-matching"]["max_count_delta"] == 0

    if smoke_mode():
        return  # the CI leakage job runs determinism + canary separately

    again = differential_audit(config, federation_factory=factory)
    assert leakage_json(document) == leakage_json(again), (
        "repro-leakage/1 artifact is not deterministic across runs"
    )

    # Canary: the same audit through the size-leaking transport must
    # breach the gate the honest document declares (shared machinery of
    # scripts/check_leakage_regression.py).
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts")
    )
    from check_leakage_regression import compare as leakage_compare

    canary_doc = differential_audit(
        AuditConfig(spec=CANONICAL_AUDIT_SPEC, canary=True),
        federation_factory=factory,
    )
    passed, lines = leakage_compare(document, canary_doc)
    assert not passed, "the size-leak canary went undetected:\n" + "\n".join(lines)
