"""T6 — mediator fleet scaling: 4 shards vs a lone shard.

The sharded mediator claims that session-affine routing lets a fleet
serve concurrent sessions in parallel with no protocol change
(docs/cluster.md).  This bench drives the claim with
:mod:`repro.loadgen` in cluster mode: the same 8-session commutative
workload runs once against a single mediator shard and once against a
4-shard fleet, each shard restricted to **one** worker slot so the
shard count — not thread-level concurrency inside one endpoint — is
what the wall-clock ratio measures.  The consistent-hash ring spreads
the 8 ``load-NNNN`` session ids over the 4 shards with at most 3
sessions on the busiest shard, so the fleet's wall is bounded by that
shard and the **shard speedup** must clear 1.8x.

Correctness rides along: every session completes on both topologies,
all sessions agree on the join, and the fleet together receives
exactly the mediator-bound messages of the lone-shard run (the router
adds and removes nothing — the message-count invariant the leakage
audit depends on).

The measured speedup is committed as a perf-trajectory artifact
(``BENCH_cluster.json``); the CI perf gate re-measures it in smoke
mode and fails on a >30% regression against the committed baseline.
"""

from conftest import smoke_mode, write_bench_json, write_report

from repro.loadgen import LoadgenConfig, run_load

SESSIONS = 8
FLEET_SHARDS = 4
#: Simulated link round-trip per message at the mediator shards.  Large
#: against the per-query crypto time of the tiny workload below, so
#: shard-level parallelism — not raw CPU — dominates the fleet/lone
#: ratio and the bench stays meaningful on small CI hosts.
ACK_DELAY = 0.03

WORKLOAD = dict(
    sessions=SESSIONS,
    protocol="commutative",
    ack_delay=ACK_DELAY,
    cluster=True,
    #: One worker slot per shard: sessions placed on the same shard
    #: serialize, so wall clock scales with the busiest shard's depth.
    shard_max_workers=1,
    domain=6,
    overlap=3,
    rows_per_value=1,
)


def _shard_records(report) -> int:
    return sum(report.cluster["per_shard_records"].values())


def test_shard_fleet_speedup():
    fleet = run_load(LoadgenConfig(shards=FLEET_SHARDS, **WORKLOAD))
    lone = run_load(LoadgenConfig(shards=1, **WORKLOAD))

    # Correctness first: every query of both runs completed, and every
    # session — routed or not — produced the same join.
    assert not fleet.failed, [o.error for o in fleet.failed]
    assert not lone.failed, [o.error for o in lone.failed]
    rows = {outcome.rows for outcome in fleet.completed}
    rows |= {outcome.rows for outcome in lone.completed}
    assert len(rows) == 1, f"sessions disagree on the join: {rows}"

    # Routing shape: the router accounted for every session, no shard
    # failed one, and the ring genuinely spread the load (no shard owns
    # the whole run).
    router = fleet.cluster["router"]
    per_shard_sessions = {
        shard["label"]: shard["sessions"] for shard in router["shards"]
    }
    assert sum(per_shard_sessions.values()) == SESSIONS
    assert all(s["failures"] == 0 for s in router["shards"])
    busiest = max(per_shard_sessions.values())
    assert busiest < SESSIONS, per_shard_sessions

    # Message-count invariant: the fleet together received exactly the
    # mediator-bound traffic of the lone shard.
    fleet_records = _shard_records(fleet)
    lone_records = _shard_records(lone)
    records_delta = abs(fleet_records - lone_records)
    assert records_delta == 0, (fleet_records, lone_records)

    speedup = lone.wall_seconds / fleet.wall_seconds
    # Smoke mode (CI) relaxes the local threshold — the committed
    # baseline comparison is the arbiter there; a full run on a quiet
    # host must clear the acceptance bar outright.
    floor = 1.2 if smoke_mode() else 1.8
    assert speedup >= floor, (
        f"{FLEET_SHARDS}-shard fleet only {speedup:.2f}x faster than a "
        f"lone shard (floor {floor}x, busiest shard {busiest} sessions): "
        f"fleet {fleet.wall_seconds:.3f}s vs lone {lone.wall_seconds:.3f}s"
    )

    write_report(
        "cluster_sessions.txt",
        "\n".join(
            [
                f"Mediator fleet: {SESSIONS} sessions, "
                f"{FLEET_SHARDS} shards vs 1, one worker slot per shard, "
                f"ack_delay {ACK_DELAY * 1000:.0f}ms",
                fleet.render(),
                lone.render(),
                f"shard speedup: {speedup:.2f}x "
                f"(busiest shard: {busiest}/{SESSIONS} sessions)",
            ]
        ),
    )
    write_bench_json(
        "cluster",
        metrics={
            "shard_speedup": round(speedup, 3),
            "records_delta": records_delta,
            "busiest_shard_sessions": busiest,
            "fleet_throughput": round(fleet.throughput, 3),
            "lone_throughput": round(lone.throughput, 3),
            "fleet_wall_seconds": round(fleet.wall_seconds, 4),
            "lone_wall_seconds": round(lone.wall_seconds, 4),
            "fleet_shard_records": fleet_records,
            "completed": len(fleet.completed) + len(lone.completed),
        },
        # The host-independent ratio and the exact message-count
        # invariant are regression-gated; absolute throughput and wall
        # clock vary with CI hardware and stay informational.
        gate={
            "shard_speedup": {"direction": "min", "tolerance": 0.30},
            "records_delta": {"direction": "max", "tolerance": 0.0},
        },
        context=dict(WORKLOAD, shards=FLEET_SHARDS),
    )
