"""E7 — Section 6 client-received data, swept over join selectivity.

The paper: the DAS client "receives more data records than necessary",
the commutative client "receives the exact tuple sets ... that form the
global result", and the PM client "retrieves all the tuples of the
encrypted partial results".  Measured as result-bearing units delivered
to the client across overlap levels.
"""

from conftest import write_report

from repro import DASConfig, run_join_query
from repro.analysis.comparison import measure
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"
DOMAIN = 12
OVERLAPS = (0, 3, 6, 12)


def _workload(overlap):
    return generate(
        WorkloadSpec(
            domain_1=DOMAIN,
            domain_2=DOMAIN,
            overlap=overlap,
            rows_per_value_1=2,
            rows_per_value_2=1,
            seed=700 + overlap,
        )
    )


def test_client_data_sweep(benchmark, make_federation):
    def sweep():
        rows = {}
        for overlap in OVERLAPS:
            workload = _workload(overlap)
            rows[overlap] = {
                protocol: measure(
                    run_join_query(
                        make_federation(workload), QUERY, protocol=protocol
                    )
                )
                for protocol in ("das", "commutative", "private-matching")
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Section 6 client-received units vs exact join size",
        f"{'overlap':>8s} {'protocol':30s} {'cli-units':>9s} {'exact':>6s}",
    ]
    for overlap, by_protocol in rows.items():
        das = by_protocol["das"]
        commutative = by_protocol["commutative"]
        pm = by_protocol["private-matching"]
        # DAS: superset (server-result pairs >= exact join rows).
        assert das.client_received_units >= das.exact_join_size
        # Commutative: exactly the matched tuple-set pairs = |intersection|.
        assert commutative.client_received_units == overlap
        # PM: all n + m values regardless of the join selectivity.
        assert pm.client_received_units == 2 * DOMAIN
        for row in (das, commutative, pm):
            lines.append(
                f"{overlap:>8d} {row.protocol:30s} "
                f"{row.client_received_units:>9d} {row.exact_join_size:>6d}"
            )
    # PM's delivery volume is selectivity-independent; commutative's
    # scales with the join - the crossover the paper's discussion implies.
    assert rows[0]["private-matching"].client_received_units == (
        rows[DOMAIN]["private-matching"].client_received_units
    )
    assert rows[0]["commutative"].client_received_units == 0
    write_report("section6_client_data.txt", "\n".join(lines))


def test_das_superset_shrinks_with_buckets(make_federation):
    """Finer partitioning -> smaller superset delivered to the client."""
    workload = _workload(6)
    units = []
    for buckets in (1, 3, 12):
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="das",
            config=DASConfig(buckets=buckets),
        )
        units.append(measure(result).client_received_units)
    assert units[0] >= units[1] >= units[2]
    assert units[2] == measure_exact(units, result)


def measure_exact(units, result):
    # With singleton-fine buckets (12 buckets on 12 values) the server
    # result is exactly the join.
    return len(result.global_result) + result.artifacts["false_positives"]
