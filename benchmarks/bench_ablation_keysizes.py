"""A4 — Cryptographic parameter scaling.

How each protocol's primitive costs scale with its security parameter:
the SRA group modulus for the commutative cipher, the Paillier modulus
for private matching, plus a Paillier-vs-EC-ElGamal comparison of the
homomorphic interface (the paper names both as candidate schemes [10],
[20]; EC-ElGamal's discrete-log decoding restricts its message space).
"""

import time

import pytest
from conftest import write_report

from repro.crypto import commutative as comm
from repro.crypto import groups, paillier
from repro.crypto.ec import TINY
from repro.crypto.hashes import IdealHash
from repro.crypto.homomorphic import ECElGamalScheme, PaillierScheme

GROUP_BITS = (128, 256, 512)
PAILLIER_BITS = (256, 512, 1024)


@pytest.mark.parametrize("bits", GROUP_BITS)
def test_commutative_apply_scaling(benchmark, bits):
    group = groups.commutative_group(bits)
    ideal_hash = IdealHash(group.p)
    key = comm.generate_key(group)
    value = ideal_hash(b"join-value")
    benchmark(comm.apply, key, value)


@pytest.mark.parametrize("bits", PAILLIER_BITS)
def test_paillier_encrypt_scaling(benchmark, bits):
    key = paillier.generate_keypair(bits)
    benchmark(paillier.encrypt, key.public_key, 42)


@pytest.mark.parametrize("bits", PAILLIER_BITS)
def test_paillier_scalar_multiply_scaling(benchmark, bits):
    key = paillier.generate_keypair(bits)
    ciphertext = paillier.encrypt(key.public_key, 42)
    benchmark(paillier.scalar_multiply, ciphertext, 2**64 - 1)


def test_keysize_report():
    """Cost table across parameters; asserts the expected growth."""
    lines = ["A4 - primitive cost scaling (microseconds per operation)"]
    lines.append(f"{'primitive':34s} {'param':>8s} {'us/op':>10s}")

    def time_op(operation, repeat=50):
        started = time.perf_counter()
        for _ in range(repeat):
            operation()
        return (time.perf_counter() - started) / repeat * 1e6

    commutative_times = []
    for bits in GROUP_BITS:
        group = groups.commutative_group(bits)
        key = comm.generate_key(group)
        value = IdealHash(group.p)(b"v")
        cost = time_op(lambda: comm.apply(key, value))
        commutative_times.append(cost)
        lines.append(f"{'commutative f_e(x)':34s} {bits:>8d} {cost:>10.1f}")

    paillier_times = []
    for bits in PAILLIER_BITS:
        key = paillier.generate_keypair(bits)
        cost = time_op(lambda: paillier.encrypt(key.public_key, 42), repeat=20)
        paillier_times.append(cost)
        lines.append(f"{'paillier encrypt':34s} {bits:>8d} {cost:>10.1f}")

    assert commutative_times[-1] > commutative_times[0]
    assert paillier_times[-1] > paillier_times[0]
    write_report("ablation_keysizes.txt", "\n".join(lines))


class TestHomomorphicSchemeComparison:
    """Paillier vs EC-ElGamal behind the same interface."""

    def test_paillier_has_vastly_larger_message_space(self):
        paillier_scheme = PaillierScheme(512)
        ec_scheme = ECElGamalScheme(TINY, dlog_bound=1 << 12)
        p_key = paillier_scheme.generate_keypair()
        e_key = ec_scheme.generate_keypair()
        p_bound = paillier_scheme.plaintext_bound(
            paillier_scheme.public_key(p_key)
        )
        e_bound = ec_scheme.plaintext_bound(ec_scheme.public_key(e_key))
        # This gap is why the protocols default to Paillier: session-key
        # payloads need hundreds of bits, EC-ElGamal decodes only small
        # discrete logs (13 bits here vs 512).
        assert p_bound.bit_length() > 20 * e_bound.bit_length()

    def test_ec_elgamal_homomorphic_on_small_space(self, benchmark):
        scheme = ECElGamalScheme(TINY, dlog_bound=2000)
        key = scheme.generate_keypair()
        pk = scheme.public_key(key)
        ct = scheme.add(scheme.encrypt(pk, 700), scheme.encrypt(pk, 300))
        assert scheme.decrypt(key, ct) == 1000
        benchmark(scheme.encrypt, pk, 123)
