"""E4 — Listing 1-4 conformance: transcripts match the paper's steps.

Each delivery protocol's transcript is checked step by step against the
message sequence the corresponding listing prescribes (who sends what to
whom, in order); the benchmark measures a full conformance sweep.
"""

from conftest import write_report

from repro import DASConfig, run_join_query
from repro.analysis.conformance import check_flow

QUERY = "select * from R1 natural join R2"

PROTOCOLS = [
    ("das", None, "Listing 2 (client setting)"),
    ("commutative", None, "Listing 3"),
    ("private-matching", None, "Listing 4"),
    ("das", DASConfig(setting="mediator"), "mediator-setting baseline"),
]


def test_listing_conformance_sweep(benchmark, make_federation, default_workload):
    results = [
        (
            run_join_query(
                make_federation(default_workload),
                QUERY,
                protocol=protocol,
                config=config,
            ),
            label,
        )
        for protocol, config, label in PROTOCOLS
    ]

    def check_all():
        return [(check_flow(result), label) for result, label in results]

    checks = benchmark(check_all)
    lines = ["Listing conformance (request phase = Listing 1 steps 1-4)"]
    for flow, label in checks:
        assert flow.conforms, (label, flow.mismatches)
        lines.append(f"\n== {flow.protocol} — {label}: CONFORMS ==")
        lines.extend(f"  {step}" for step in flow.actual_flow)
    write_report("listing_conformance.txt", "\n".join(lines))


def test_commutative_listing3_step_order(make_federation, default_workload):
    """Spot-check the Listing 3 step numbering on the live transcript."""
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="commutative"
    )
    kinds = [m.kind for m in result.network.transcript]
    # Steps 3 (both M_i inbound), 4 (exchange), 5/6 (double), 7 (result).
    assert kinds.index("commutative_m_set") < kinds.index("commutative_exchange")
    assert kinds.index("commutative_exchange") < kinds.index("commutative_double")
    assert kinds[-1] == "commutative_result"


def test_das_listing2_step_order(make_federation, default_workload):
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="das"
    )
    kinds = [m.kind for m in result.network.transcript]
    assert kinds.index("das_encrypted_partial_result") < kinds.index(
        "das_encrypted_index_tables"
    )
    assert kinds.index("das_encrypted_index_tables") < kinds.index(
        "das_server_query"
    )
    assert kinds[-1] == "das_server_result"


def test_pm_listing4_step_order(make_federation, default_workload):
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="private-matching"
    )
    kinds = [m.kind for m in result.network.transcript]
    assert kinds.index("pm_homomorphic_key") < kinds.index(
        "pm_encrypted_coefficients"
    )
    assert kinds.index("pm_encrypted_coefficients") < kinds.index(
        "pm_evaluations"
    )
