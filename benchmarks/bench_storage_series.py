"""T6 — a series of joins on one attribute: cold vs warm index cache.

The storage engine's amortization claim (docs/storage.md, following
"Equi-Joins over Encrypted Data for Series of Queries"): the dominant
per-query cost — encrypting join attributes and result tuples from
scratch — is paid once, persisted in the encrypted-index cache, and the
rest of the series reuses it.  This bench drives one SQLite-backed
federation through a query series on the same join attribute and
measures the **warm speedup** (cold wall-clock / best warm wall-clock).

The workload is skewed the way real federations are: wide relations
(many join values to encrypt cold) with a small overlap (few matched
tuples to decrypt warm), so the cacheable crypto dominates the cold run
and the irreducible result decryption dominates the warm runs.  The
commutative protocol — the paper's flagship — must clear 3x warm; DAS
is measured alongside as context (its warm floor is the per-etuple
result handling, which caching cannot remove).

Every run is checked against the plaintext reference join, and the warm
runs must be byte-identical to the cold one — the cache is an
optimization, never an answer-changer.  A reopened store (fresh backend
on the same file, simulating a process restart) must serve hits on its
very first query: persistence is what makes the amortization hold
across sessions, not just across loop iterations.

The measured speedup and the deterministic per-query hit count are
committed as a perf-trajectory artifact (``BENCH_storage_series.json``);
the CI perf gate re-measures both in smoke mode and fails on
regression against the committed baseline.
"""

import time

from conftest import smoke_mode, write_bench_json, write_report

from repro import Federation, run_join_query
from repro.core.runner import reference_join
from repro.mediation.access_control import allow_all
from repro.relational.datagen import WorkloadSpec, generate
from repro.relational.encoding import encode_relation
from repro.storage import SQLiteBackend

QUERY = "select * from R1 natural join R2"

#: Wide relations, small overlap: 60 rows a side but only ~6 joining,
#: so cold pays ~10x more cacheable encryption than warm pays
#: irreducible decryption.
SPEC = WorkloadSpec(
    domain_1=30,
    domain_2=30,
    overlap=3,
    rows_per_value_1=2,
    rows_per_value_2=2,
    payload_attributes=2,
    seed=2007,
)

WARM_RUNS = 3


def build(ca, client, workload, storage):
    federation = Federation(ca=ca, storage=storage)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def timed_query(federation, protocol):
    start = time.perf_counter()
    result = run_join_query(federation, QUERY, protocol=protocol)
    return time.perf_counter() - start, result


def run_series(ca, client, workload, storage, protocol):
    """One cold query then WARM_RUNS repeats; returns the measurements."""
    federation = build(ca, client, workload, storage)
    reference = encode_relation(reference_join(federation, QUERY))

    cold_seconds, cold = timed_query(federation, protocol)
    assert encode_relation(cold.global_result) == reference
    cold_stats = cold.artifacts["storage_cache"]

    warm_seconds = []
    previous = cold_stats
    for _ in range(WARM_RUNS):
        seconds, warm = timed_query(federation, protocol)
        assert encode_relation(warm.global_result) == reference
        warm_seconds.append(seconds)
        previous_stats, previous = previous, warm.artifacts["storage_cache"]
        # Stats are cumulative on the federation: the per-query delta
        # must be pure hits — a warm series recomputes nothing.
        assert previous["errors"] == previous_stats["errors"]
    warm_hits_per_query = (
        previous["hits"] - cold_stats["hits"]
    ) // WARM_RUNS

    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": min(warm_seconds),
        "speedup": cold_seconds / min(warm_seconds),
        "warm_hits_per_query": warm_hits_per_query,
        "errors": previous["errors"],
    }


def test_storage_series_warm_speedup(ca, client, tmp_path):
    workload = generate(SPEC)
    series = {}
    for protocol in ("commutative", "das"):
        storage = SQLiteBackend(str(tmp_path / f"{protocol}.db"))
        try:
            series[protocol] = run_series(
                ca, client, workload, storage, protocol
            )
        finally:
            storage.close()

    commutative = series["commutative"]
    assert commutative["errors"] == 0
    assert commutative["warm_hits_per_query"] > 0

    # Smoke mode (CI) relaxes the local threshold — the committed
    # baseline comparison is the arbiter there; a full run on a quiet
    # host must clear the acceptance bar outright.
    floor = 1.5 if smoke_mode() else 3.0
    assert commutative["speedup"] >= floor, (
        f"warm index cache only {commutative['speedup']:.2f}x faster than "
        f"cold (floor {floor}x): cold {commutative['cold_seconds']:.3f}s "
        f"vs warm {commutative['warm_seconds']:.3f}s"
    )

    # Persistence across a restart: a *fresh* backend over the same
    # file must be warm on its very first query.
    reopened = SQLiteBackend(str(tmp_path / "commutative.db"))
    try:
        federation = build(ca, client, workload, reopened)
        seconds, result = timed_query(federation, "commutative")
        stats = result.artifacts["storage_cache"]
        assert stats["hits"] > 0, "reopened store served no cache hits"
        assert stats["errors"] == 0
        reopened_speedup = commutative["cold_seconds"] / seconds
    finally:
        reopened.close()

    write_report(
        "storage_series.txt",
        "\n".join(
            [
                f"Storage series: 1 cold + {WARM_RUNS} warm joins, "
                f"sqlite backend, domain {SPEC.domain_1}x{SPEC.domain_2} "
                f"overlap {SPEC.overlap}",
            ]
            + [
                f"  {protocol:<12} cold {data['cold_seconds']:.4f}s  "
                f"warm {data['warm_seconds']:.4f}s  "
                f"speedup {data['speedup']:.2f}x  "
                f"hits/query {data['warm_hits_per_query']}"
                for protocol, data in series.items()
            ]
            + [f"  reopened store first query: {reopened_speedup:.2f}x"]
        ),
    )
    write_bench_json(
        "storage_series",
        metrics={
            "warm_speedup": round(commutative["speedup"], 3),
            "warm_hits_per_query": commutative["warm_hits_per_query"],
            "warm_errors": commutative["errors"],
            "das_speedup": round(series["das"]["speedup"], 3),
            "reopened_speedup": round(reopened_speedup, 3),
            "cold_seconds": round(commutative["cold_seconds"], 4),
            "warm_seconds": round(commutative["warm_seconds"], 4),
        },
        # The ratio and the deterministic hit/error counts are
        # host-independent and gated; absolute timings are context.
        gate={
            "warm_speedup": {"direction": "min", "tolerance": 0.30},
            "warm_hits_per_query": {"direction": "min", "tolerance": 0.0},
            "warm_errors": {"direction": "max", "tolerance": 0.0},
        },
        context={
            "protocols": "commutative (gated), das (context)",
            "warm_runs": WARM_RUNS,
            "domain": SPEC.domain_1,
            "overlap": SPEC.overlap,
            "rows_per_value": SPEC.rows_per_value_1,
            "payload_attributes": SPEC.payload_attributes,
        },
    )
