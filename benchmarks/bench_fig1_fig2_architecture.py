"""E3 — Reproduce Figures 1 and 2: the mediated-system architecture.

Figure 1 shows the basic star: client <-> mediator <-> sources, with
partial queries/results on the source links and the global query/result
on the client link.  Figure 2 adds credentials (CA-issued, forwarded in
subsets) and the encrypted global result.  These benches check the
actual communication topology and message content of every protocol run
against that schematic and render the observed flow.
"""

from conftest import write_report

from repro import run_join_query
from repro.analysis.conformance import architecture_edges
from repro.analysis.views import client_party, mediator_party, source_parties

QUERY = "select * from R1 natural join R2"


def test_fig1_star_topology(benchmark, make_federation, default_workload):
    results = [
        run_join_query(
            make_federation(default_workload), QUERY, protocol=protocol
        )
        for protocol in ("das", "commutative", "private-matching")
    ]

    def check_all():
        return [architecture_edges(result) for result in results]

    facts_per_run = benchmark(check_all)
    for facts in facts_per_run:
        assert facts["client<->mediator"]
        assert facts["S1<->mediator"] and facts["S2<->mediator"]
        # No link bypasses the mediator.
        assert facts["no client<->source"]
        assert facts["no source<->source"]


def test_fig2_credential_flow(make_federation, default_workload, client):
    """Figure 2's credential path: client -> mediator -> sources."""
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="commutative"
    )
    network = result.network
    query_message = network.messages_of_kind("global_query")[0]
    assert query_message.body["credentials"] == client.credentials
    for message in network.messages_of_kind("partial_query"):
        forwarded = message.body["credentials"]
        assert set(c.fingerprint() for c in forwarded) <= {
            c.fingerprint() for c in client.credentials
        }


def test_fig2_partial_results_encrypted(make_federation, default_workload):
    """Figure 2 labels the source->mediator links 'partial result R_i
    (scheme)': the payloads must be ciphertext carriers, never
    relations."""
    from repro.relational.relation import Relation

    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="das"
    )
    for message in result.network.messages_of_kind(
        "das_encrypted_partial_result"
    ):
        assert not isinstance(message.body["relation"], Relation)


def test_architecture_flow_rendering(make_federation, default_workload):
    lines = []
    for protocol in ("das", "commutative", "private-matching"):
        result = run_join_query(
            make_federation(default_workload), QUERY, protocol=protocol
        )
        network = result.network
        lines.append(f"== {result.protocol} ==")
        lines.append(
            f"roles: client={client_party(network)}, "
            f"mediator={mediator_party(network)}, "
            f"sources={', '.join(source_parties(network))}"
        )
        lines.extend(network.flow_summary())
        lines.append("")
    write_report("fig1_fig2_flows.txt", "\n".join(lines))
