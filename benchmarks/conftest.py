"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one artifact of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks both
*measure* (via pytest-benchmark) and *verify* (via assertions on the
reproduced shape); rendered tables are written to ``benchmarks/out/`` so
the reproduction is inspectable after a run.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import CertificationAuthority, Federation, setup_client
from repro.crypto.backend import active_backend, available_backends
from repro.mediation.access_control import allow_all
from repro.mediation.client import Client, default_homomorphic_scheme
from repro.relational.datagen import Workload, WorkloadSpec, generate

RSA_BITS = 1024
PAILLIER_BITS = 1024

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def ca() -> CertificationAuthority:
    return CertificationAuthority(key_bits=RSA_BITS)


@pytest.fixture(scope="session")
def client(ca) -> Client:
    return setup_client(
        ca,
        identity="bench-client",
        properties={("role", "analyst")},
        rsa_bits=RSA_BITS,
        homomorphic_scheme=default_homomorphic_scheme(PAILLIER_BITS),
    )


@pytest.fixture(scope="session")
def make_federation(ca, client):
    def factory(workload: Workload) -> Federation:
        federation = Federation(ca=ca)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


@pytest.fixture(scope="session")
def default_workload() -> Workload:
    return generate(
        WorkloadSpec(
            domain_1=12,
            domain_2=12,
            overlap=6,
            rows_per_value_1=2,
            rows_per_value_2=2,
            payload_attributes=2,
            seed=2007,
        )
    )


def write_report(name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")


def smoke_mode() -> bool:
    """CI smoke mode: trimmed runs, relaxed local assertions.

    The CI perf gate sets ``REPRO_BENCH_SMOKE=1`` and relies on the
    committed-baseline comparison (``scripts/check_perf_regression.py``)
    rather than this process's hard thresholds.
    """
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def write_bench_json(
    bench: str,
    metrics: dict[str, float],
    gate: dict[str, dict[str, float | str]],
    context: dict | None = None,
) -> pathlib.Path:
    """Emit a machine-readable perf artifact (``BENCH_<bench>.json``).

    The document is self-describing for the CI perf-regression gate:
    ``metrics`` are the measurements, ``gate`` declares which of them
    are regression-gated and how (``direction`` ``"min"``/``"max"``
    plus a relative ``tolerance``).  Only host-independent metrics
    (ratios, counts) should be gated; absolute timings are context.
    """
    merged_context = {
        # Every bench artifact names the arithmetic that produced it —
        # a python-backend number is not comparable to a native one.
        "crypto_backend": active_backend().name,
        "crypto_backends_available": list(available_backends()),
    }
    merged_context.update(context or {})
    document = {
        "schema": "repro-bench/1",
        "bench": bench,
        "smoke": smoke_mode(),
        "metrics": metrics,
        "gate": gate,
        "context": merged_context,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{bench}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"[bench json written to {path}]")
    return path
