"""Native bigint backend — python-vs-gmpy2 speedups at production sizes.

Four legs, each measured under every available backend on the same
inputs so the ratios are host-independent:

* ``commutative`` — batched SRA tagging (Listing 3's hot loop): 2048-bit
  group, full-size secret exponent, one modexp per tag.
* ``paillier_encrypt`` — batched Paillier encryption with pinned
  nonces (two 2048-bit-exponent modexps per item at 4096-bit modulus).
* ``paillier_decrypt`` — batched CRT Paillier decryption.
* ``fixed_base`` — backend-independent: the engine's shared-base batch
  (windowed fixed-base table) against a naive per-item ``pow`` loop,
  both forced onto the pure-Python backend.  This is the leg a
  gmpy2-free host can measure honestly.

Every leg asserts bit-identical outputs across backends — the speedup
numbers are only meaningful because the arithmetic is interchangeable.
The JSON artifact (``BENCH_native_crypto.json``) is gated by
``scripts/check_perf_regression.py`` against the committed baseline in
the CI ``native-crypto`` job (the only job that installs gmpy2); the
ordinary perf-gate job skips this bench via ``--only``.

In full mode on a gmpy2 host the run also asserts the acceptance
criterion in-process: >= 5x native-vs-python on all three crypto legs.
"""

from __future__ import annotations

import json
import math
import os
import time

from conftest import OUT_DIR, smoke_mode, write_bench_json, write_report

from repro.crypto import commutative, paillier
from repro.crypto import backend as bk
from repro.crypto.engine import CryptoEngine
from repro.crypto.groups import commutative_group

SMOKE = smoke_mode()

GROUP_BITS = 256 if SMOKE else 2048
PAILLIER_BITS = 768 if SMOKE else 2048
N_COMMUTATIVE = 8 if SMOKE else 48
N_PAILLIER = 4 if SMOKE else 24
N_FIXED_BASE = 16 if SMOKE else 64

#: Acceptance floor for the native backend (ISSUE: >= 5x at 2048 bits).
NATIVE_FLOOR = 5.0

BACKENDS = list(bk.available_backends())
NATIVE = bk.native_available()

REPORT: dict = {
    "benchmark": "native_crypto",
    "smoke": SMOKE,
    "config": {
        "group_bits": GROUP_BITS,
        "paillier_bits": PAILLIER_BITS,
        "n_commutative": N_COMMUTATIVE,
        "n_paillier": N_PAILLIER,
        "n_fixed_base": N_FIXED_BASE,
        "backends": BACKENDS,
        "cpu_count": os.cpu_count(),
    },
    "legs": {},
}


def _derive_exponents(modulus: int, count: int, bits: int) -> list[int]:
    """Deterministic full-size odd exponents (no CSPRNG: reproducible)."""
    exponents = []
    x = (1 << (bits - 8)) // 7
    for i in range(count):
        x = (x * 0x9E3779B97F4A7C15 + i + 1) % modulus
        exponents.append((x | 1) | (1 << (bits - 16)))
    return exponents


def _speedup(seconds: dict[str, float]) -> float:
    """python wall-clock over the best non-python backend (1.0 solo)."""
    others = [t for name, t in seconds.items() if name != "python"]
    if not others:
        return 1.0
    return seconds["python"] / min(others)


def _record_leg(name: str, seconds: dict[str, float], items: int) -> float:
    speedup = round(_speedup(seconds), 2)
    REPORT["legs"][name] = {
        "items": items,
        "seconds": {b: round(t, 4) for b, t in seconds.items()},
        "us_per_op": {
            b: round(t / items * 1e6, 1) for b, t in seconds.items()
        },
        "speedup": speedup,
    }
    return speedup


def test_commutative_batch():
    group = commutative_group(GROUP_BITS)
    # Full-size secret exponent, derived deterministically and nudged
    # until it is a valid key (coprime to q).
    exponent = _derive_exponents(group.q, 1, GROUP_BITS - 2)[0] % group.q
    while math.gcd(exponent, group.q) != 1:
        exponent = (exponent + 1) % group.q or 3
    key = commutative.CommutativeKey(group, exponent)
    values = [(i + 2) * (i + 2) % group.p for i in range(N_COMMUTATIVE)]

    seconds: dict[str, float] = {}
    outputs = set()
    for name in BACKENDS:
        engine = CryptoEngine(backend=name, workers=0)
        started = time.perf_counter()
        tags = engine.batch_commutative_encrypt(key, values, validate=False)
        seconds[name] = time.perf_counter() - started
        outputs.add(tuple(tags))
    assert len(outputs) == 1, "backends produced diverging tags"
    REPORT["commutative_identical"] = True
    _record_leg("commutative", seconds, N_COMMUTATIVE)


def test_paillier_batches():
    key = paillier.generate_keypair(PAILLIER_BITS)
    public = key.public_key
    plaintexts = [(3 * i + 1) % public.n for i in range(N_PAILLIER)]
    # Pinned nonces: encryption is deterministic, so ciphertexts must be
    # bit-identical across backends (small nonces do not cheapen the
    # r^n exponentiation — the exponent n is full-size either way).
    randomness = [(5 * i + 7) % public.n for i in range(N_PAILLIER)]

    encrypt_seconds: dict[str, float] = {}
    decrypt_seconds: dict[str, float] = {}
    ciphertext_sets, plaintext_sets = set(), set()
    for name in BACKENDS:
        engine = CryptoEngine(backend=name, workers=0)
        started = time.perf_counter()
        ciphertexts = engine.batch_paillier_encrypt(
            public, plaintexts, randomness=randomness
        )
        encrypt_seconds[name] = time.perf_counter() - started
        ciphertext_sets.add(tuple(c.value for c in ciphertexts))

        started = time.perf_counter()
        decrypted = engine.batch_paillier_decrypt(
            key, ciphertexts, flavour="crt"
        )
        decrypt_seconds[name] = time.perf_counter() - started
        plaintext_sets.add(tuple(decrypted))
    assert len(ciphertext_sets) == 1, "backends produced diverging ciphertexts"
    assert plaintext_sets == {tuple(plaintexts)}
    REPORT["paillier_identical"] = True
    _record_leg("paillier_encrypt", encrypt_seconds, N_PAILLIER)
    _record_leg("paillier_decrypt", decrypt_seconds, N_PAILLIER)


def test_fixed_base_batch():
    """Windowed fixed-base table vs naive loop, pure Python only.

    Backend-independent by construction — both sides are forced onto
    the python backend — so this ratio is measurable (and gated) even
    on hosts without gmpy2.
    """
    group = commutative_group(GROUP_BITS)
    modulus, base = group.p, 4
    exponents = _derive_exponents(modulus, N_FIXED_BASE, GROUP_BITS)

    with bk.use_backend("python"):
        engine = CryptoEngine(backend="python", workers=0)
        started = time.perf_counter()
        batched = engine.batch_pow_shared_base(base, exponents, modulus)
        table_s = time.perf_counter() - started

        started = time.perf_counter()
        naive = [pow(base, e, modulus) for e in exponents]
        naive_s = time.perf_counter() - started

    assert batched == naive, "fixed-base table diverged from pow"
    speedup = round(naive_s / table_s, 2)
    REPORT["legs"]["fixed_base"] = {
        "items": N_FIXED_BASE,
        "seconds": {"naive": round(naive_s, 4), "table": round(table_s, 4)},
        "speedup": speedup,
    }


def test_write_report():
    """Assemble metrics, enforce acceptance, persist artifacts (last)."""
    legs = REPORT["legs"]
    for required in (
        "commutative", "paillier_encrypt", "paillier_decrypt", "fixed_base"
    ):
        assert required in legs, f"leg {required!r} did not run"
    results_identical = float(
        REPORT.get("commutative_identical") and REPORT.get("paillier_identical")
    )
    metrics = {
        "commutative_speedup": legs["commutative"]["speedup"],
        "paillier_encrypt_speedup": legs["paillier_encrypt"]["speedup"],
        "paillier_decrypt_speedup": legs["paillier_decrypt"]["speedup"],
        "fixed_base_speedup": legs["fixed_base"]["speedup"],
        "results_identical": results_identical,
    }
    # The gate block mirrors the committed baseline's contract; the CI
    # comparison always takes policy from the baseline file.
    gate = {
        "commutative_speedup": {"direction": "min", "tolerance": 0.0},
        "paillier_encrypt_speedup": {"direction": "min", "tolerance": 0.0},
        "paillier_decrypt_speedup": {"direction": "min", "tolerance": 0.0},
        "fixed_base_speedup": {"direction": "min", "tolerance": 0.25},
        "results_identical": {"direction": "min", "tolerance": 0.0},
    }
    write_bench_json(
        "native_crypto",
        metrics,
        gate,
        context={
            "group_bits": GROUP_BITS,
            "paillier_bits": PAILLIER_BITS,
            "native_available": NATIVE,
            "note": (
                "speedups are python-vs-best-native on this host; 1.0 "
                "means no native backend was installed"
            ),
        },
    )

    lines = [
        "Native bigint backend - python vs "
        + ("gmpy2" if NATIVE else "(no native backend installed)")
        + f" ({'smoke' if SMOKE else 'full'} mode)",
        f"group={GROUP_BITS}b paillier={PAILLIER_BITS}b "
        f"backends={','.join(BACKENDS)}",
    ]
    for name, leg in legs.items():
        seconds = " ".join(
            f"{b}={t:.3f}s" for b, t in leg["seconds"].items()
        )
        lines.append(
            f"{name:18s} n={leg['items']:<3d} {seconds}  "
            f"speedup={leg['speedup']:.2f}x"
        )
    write_report("native_crypto.txt", "\n".join(lines))

    json_path = OUT_DIR / "native_crypto_report.json"
    json_path.write_text(json.dumps(REPORT, indent=2) + "\n")

    assert results_identical == 1.0
    if not SMOKE and NATIVE:
        for leg_name in ("commutative", "paillier_encrypt", "paillier_decrypt"):
            speedup = legs[leg_name]["speedup"]
            assert speedup >= NATIVE_FLOOR, (
                f"{leg_name}: native only {speedup:.2f}x "
                f"(need >= {NATIVE_FLOOR}x)"
            )
    if not SMOKE:
        assert metrics["fixed_base_speedup"] >= 1.5, (
            f"fixed-base table only {metrics['fixed_base_speedup']:.2f}x"
        )
