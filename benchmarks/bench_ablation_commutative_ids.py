"""A3 — Commutative ID-value ablation (footnote 1).

"The mediator should refrain from sending the encrypted tuples to the
opposite datasource for performance as well as security reasons.
Instead, the mediator could use ID values of fixed length."  This bench
quantifies the saving: bytes on the source<->mediator links with the
naive echo vs the ID substitution, swept over tuple-set width.
"""

from conftest import write_report

from repro import CommutativeConfig, run_join_query
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"
ROWS_PER_VALUE = (1, 4, 8)


def _workload(rows_per_value):
    return generate(
        WorkloadSpec(
            domain_1=8,
            domain_2=8,
            overlap=4,
            rows_per_value_1=rows_per_value,
            rows_per_value_2=rows_per_value,
            payload_attributes=2,
            payload_width=12,
            seed=900 + rows_per_value,
        )
    )


def _source_link_bytes(result):
    return result.network.bytes_between("S1", "mediator") + (
        result.network.bytes_between("S2", "mediator")
    )


def test_id_substitution_sweep(benchmark, make_federation):
    def sweep():
        points = []
        for rows_per_value in ROWS_PER_VALUE:
            workload = _workload(rows_per_value)
            echo = run_join_query(
                make_federation(workload),
                QUERY,
                protocol="commutative",
                config=CommutativeConfig(use_tuple_ids=False),
            )
            with_ids = run_join_query(
                make_federation(workload),
                QUERY,
                protocol="commutative",
                config=CommutativeConfig(use_tuple_ids=True),
            )
            assert echo.global_result == with_ids.global_result
            points.append(
                (
                    rows_per_value,
                    _source_link_bytes(echo),
                    _source_link_bytes(with_ids),
                )
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A3 - commutative footnote-1 optimization: echo vs ID tokens",
        f"{'rows/value':>10s} {'echo bytes':>12s} {'id bytes':>10s} "
        f"{'saving':>8s}",
    ]
    savings = []
    for rows_per_value, echo_bytes, id_bytes in points:
        assert id_bytes < echo_bytes
        saving = 1 - id_bytes / echo_bytes
        savings.append(saving)
        lines.append(
            f"{rows_per_value:>10d} {echo_bytes:>12d} {id_bytes:>10d} "
            f"{saving:>7.1%}"
        )
    # The saving grows with the tuple-set size: echo traffic scales with
    # the payload, ID traffic does not.
    assert savings[-1] > savings[0]
    write_report("ablation_commutative_ids.txt", "\n".join(lines))


def test_ids_keep_exchange_payload_constant(make_federation):
    """With IDs, the mediator->source exchange is payload-independent."""
    sizes = []
    for rows_per_value in (1, 8):
        workload = _workload(rows_per_value)
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="commutative",
            config=CommutativeConfig(use_tuple_ids=True),
        )
        exchanges = result.network.messages_of_kind("commutative_exchange")
        sizes.append(sum(m.size_bytes for m in exchanges))
    # Tag integers vary by a byte or two in their big-endian length, so
    # "constant" means payload-independent up to that jitter (vs the
    # multi-kilobyte growth of the echo variant).
    assert abs(sizes[0] - sizes[1]) <= 64, sizes
