"""E5 — Section 6 interaction counts.

The paper: "In the DAS approach, the client has to interact twice with
the mediator ... For the datasources, the DAS approach is the most
convenient one, as they only have to send data once"; in both other
approaches the datasources "have to interact twice with the mediator".
Measured from real transcripts via the interaction counter.
"""

from conftest import write_report

from repro import run_join_query
from repro.analysis.comparison import measure

QUERY = "select * from R1 natural join R2"


def _rows(make_federation, default_workload):
    return [
        measure(
            run_join_query(
                make_federation(default_workload), QUERY, protocol=protocol
            )
        )
        for protocol in ("das", "commutative", "private-matching")
    ]


def test_interaction_pattern(benchmark, make_federation, default_workload):
    rows = benchmark.pedantic(
        _rows, args=(make_federation, default_workload), rounds=2, iterations=1
    )
    das, commutative, pm = rows

    # "the client has to interact twice with the mediator" (DAS only).
    assert das.client_interactions == 2
    assert commutative.client_interactions == 1
    assert pm.client_interactions == 1

    # "[DAS datasources] only have to send data once".
    assert das.max_source_interactions == 1
    # "they have to interact twice with the mediator" (commutative + PM).
    assert commutative.max_source_interactions == 2
    assert pm.max_source_interactions == 2

    lines = [
        "Section 6 interaction counts (paper claim -> measured)",
        f"{'protocol':30s} {'client<->mediator':>18s} {'source<->mediator':>18s}",
    ]
    for row in rows:
        lines.append(
            f"{row.protocol:30s} {row.client_interactions:>18d} "
            f"{row.max_source_interactions:>18d}"
        )
    write_report("section6_interactions.txt", "\n".join(lines))


def test_das_source_messages_single_burst(make_federation, default_workload):
    """DAS sources send everything in one shot (relation + table)."""
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="das"
    )
    for source in ("S1", "S2"):
        sent_kinds = [
            m.kind for m in result.network.messages_from(source, "mediator")
        ]
        assert sent_kinds == ["das_encrypted_partial_result"]


def test_commutative_source_two_bursts(make_federation, default_workload):
    result = run_join_query(
        make_federation(default_workload), QUERY, protocol="commutative"
    )
    for source in ("S1", "S2"):
        sent_kinds = [
            m.kind for m in result.network.messages_from(source, "mediator")
        ]
        assert sent_kinds == ["commutative_m_set", "commutative_double"]
