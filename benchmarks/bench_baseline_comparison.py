"""A6 — Mediated protocols vs their two-party originals ([1], [12]).

The paper's protocols adapt two-party constructions to the mediated
setting; this bench runs the originals side by side and quantifies what
mediation buys and costs:

* **trust**: in the two-party baselines a *data party* learns the
  intersection values; in the mediated versions the matching entity (the
  mediator) learns only cardinalities and the client gets the result;
* **traffic**: mediation adds the mediator hop (roughly doubling the
  relayed bytes) plus the request-phase overhead.
"""

from conftest import write_report

from repro import run_join_query
from repro.baselines import two_party_equijoin, two_party_private_matching
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"


def _workload():
    return generate(
        WorkloadSpec(
            domain_1=10,
            domain_2=10,
            overlap=5,
            rows_per_value_1=2,
            rows_per_value_2=2,
            seed=66,
        )
    )


def test_commutative_vs_agrawal(benchmark, make_federation, client):
    workload = _workload()

    def run_both():
        mediated = run_join_query(
            make_federation(workload), QUERY, protocol="commutative"
        )
        baseline = two_party_equijoin(
            workload.relation_1, workload.relation_2, ("k",)
        )
        return mediated, baseline

    mediated, baseline = benchmark.pedantic(run_both, rounds=2, iterations=1)

    # Same join, either way.
    assert baseline.joined == mediated.global_result
    # The baseline receiver *is* a data party and learns the shared
    # values; the mediated client does too (it holds the result), but
    # the matching entity — the mediator — learns only counts.
    assert baseline.intersection  # plaintext values at the receiver
    # Mediation roughly doubles relayed traffic (every payload crosses
    # two hops) plus the credential/request machinery.
    assert mediated.total_bytes() > baseline.network.total_bytes()

    write_report(
        "baseline_commutative.txt",
        "\n".join(
            [
                "A6 - mediated commutative vs two-party Agrawal equijoin",
                f"{'variant':24s} {'bytes':>10s} {'messages':>9s}",
                f"{'mediated':24s} {mediated.total_bytes():>10d} "
                f"{len(mediated.network.transcript):>9d}",
                f"{'two-party baseline':24s} "
                f"{baseline.network.total_bytes():>10d} "
                f"{len(baseline.network.transcript):>9d}",
            ]
        ),
    )


def test_pm_vs_fnp(benchmark, make_federation, client):
    workload = _workload()
    scheme = client.homomorphic_scheme

    def run_both():
        mediated = run_join_query(
            make_federation(workload), QUERY, protocol="private-matching"
        )
        chooser_keys = {
            (value,) for value in workload.relation_1.active_domain("k")
        }
        sender_payloads = {
            (value,): b"payload"
            for value in workload.relation_2.active_domain("k")
        }
        baseline = two_party_private_matching(
            scheme, chooser_keys, sender_payloads
        )
        return mediated, baseline

    mediated, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)

    shared = set(workload.relation_1.active_domain("k")) & set(
        workload.relation_2.active_domain("k")
    )
    assert {key[0] for key in baseline.matches} == shared
    assert mediated.artifacts["matched_keys"] == len(shared)

    # The mediated version evaluates *two* polynomials (both directions)
    # vs the baseline's one: roughly double the homomorphic work.
    mediated_evaluations = sum(
        mediated.artifacts["evaluations_sent"].values()
    )
    assert mediated_evaluations == 2 * baseline.sender_set_size

    write_report(
        "baseline_pm.txt",
        "\n".join(
            [
                "A6 - mediated private matching vs two-party FNP",
                f"{'variant':24s} {'bytes':>10s} {'messages':>9s} "
                f"{'evaluations':>12s}",
                f"{'mediated':24s} {mediated.total_bytes():>10d} "
                f"{len(mediated.network.transcript):>9d} "
                f"{mediated_evaluations:>12d}",
                f"{'two-party baseline':24s} "
                f"{baseline.network.total_bytes():>10d} "
                f"{len(baseline.network.transcript):>9d} "
                f"{baseline.sender_set_size:>12d}",
            ]
        ),
    )
