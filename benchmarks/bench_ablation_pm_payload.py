"""A2 — Private-matching payload ablation (footnote 2).

"As tuple sets can be of large size, we could face length restrictions
when using asymmetric encryption" — the inline payload overflows the
homomorphic message space as tuple sets grow, while the session-key
variant stays feasible at constant in-polynomial size.  This bench
sweeps the tuple-set width and records feasibility and traffic.
"""

import pytest
from conftest import write_report

from repro import PMConfig, run_join_query
from repro.errors import EncodingError
from repro.relational.datagen import WorkloadSpec, generate

QUERY = "select * from R1 natural join R2"
ROWS_PER_VALUE = (1, 2, 4, 8)


def _workload(rows_per_value):
    return generate(
        WorkloadSpec(
            domain_1=6,
            domain_2=6,
            overlap=3,
            rows_per_value_1=rows_per_value,
            rows_per_value_2=1,
            payload_attributes=1,
            payload_width=6,
            seed=800 + rows_per_value,
        )
    )


def test_payload_mode_sweep(benchmark, make_federation):
    def sweep():
        points = []
        for rows_per_value in ROWS_PER_VALUE:
            workload = _workload(rows_per_value)
            session = run_join_query(
                make_federation(workload),
                QUERY,
                protocol="private-matching",
                config=PMConfig(payload_mode="session_key"),
            )
            try:
                inline = run_join_query(
                    make_federation(workload),
                    QUERY,
                    protocol="private-matching",
                    config=PMConfig(payload_mode="inline"),
                )
                inline_bytes = inline.total_bytes()
            except EncodingError:
                inline_bytes = None  # message space exceeded
            points.append((rows_per_value, session.total_bytes(), inline_bytes))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The session-key variant never fails; inline eventually must.
    assert all(session_bytes is not None for _, session_bytes, _ in points)
    assert points[-1][2] is None, (
        "inline payloads should overflow a 1024-bit Paillier space at 8 "
        "tuples per join value"
    )
    # Inline works for the narrow cases - footnote 2 is an *optimisation
    # for large sets*, not a correctness requirement for small ones.
    assert points[0][2] is not None

    lines = [
        "A2 - PM payload variants: session-key (footnote 2) vs inline",
        f"{'rows/value':>10s} {'session-key bytes':>18s} {'inline bytes':>14s}",
    ]
    for rows_per_value, session_bytes, inline_bytes in points:
        rendered = "OVERFLOW" if inline_bytes is None else str(inline_bytes)
        lines.append(
            f"{rows_per_value:>10d} {session_bytes:>18d} {rendered:>14s}"
        )
    write_report("ablation_pm_payload.txt", "\n".join(lines))


def test_session_key_in_polynomial_is_constant_size(make_federation):
    """The in-polynomial part of the session-key variant is independent
    of the tuple-set size (key + ID token only)."""
    sizes = []
    for rows_per_value in (1, 8):
        workload = _workload(rows_per_value)
        result = run_join_query(
            make_federation(workload),
            QUERY,
            protocol="private-matching",
            config=PMConfig(payload_mode="session_key"),
        )
        evaluations = result.network.messages_of_kind("pm_evaluations")
        # Source -> mediator messages carry the homomorphic values.
        source_messages = [
            m for m in evaluations if m.sender in ("S1", "S2")
        ]
        sizes.append(sum(m.size_bytes for m in source_messages))
    assert sizes[0] == sizes[1]
