"""T1 — in-process bus vs loopback TCP, per delivery protocol.

The transport subsystem claims that moving the three delivery protocols
onto real sockets changes *where* bytes flow, not *what* the mediator
computes.  This bench runs every protocol end-to-end on both carriers,
times them, and compares byte accounting: the bus reports structural
estimates plus a flat envelope constant, the TCP transport reports
actual framed wire bytes.  The measured wire inflation (codec tags,
length prefixes, envelope routing) should stay well under 2x.
"""

import time

import pytest
from conftest import smoke_mode, write_bench_json, write_report

from repro import Federation, run_join_query
from repro.mediation.access_control import allow_all
from repro.transport import RetryPolicy, TcpTransport

QUERY = "select * from R1 natural join R2"
PROTOCOLS = ("das", "commutative", "private-matching")

POLICY = RetryPolicy(connect_timeout=5.0, io_timeout=60.0)


def _federation(ca, client, workload, network=None):
    if network is None:
        federation = Federation(ca=ca)
    else:
        federation = Federation(ca=ca, network=network)
    federation.add_source("S1", [(workload.relation_1, allow_all())])
    federation.add_source("S2", [(workload.relation_2, allow_all())])
    federation.attach_client(client)
    return federation


def _timed_run(federation, protocol):
    started = time.perf_counter()
    result = run_join_query(federation, QUERY, protocol=protocol)
    elapsed = time.perf_counter() - started
    network = federation.network
    return result, elapsed, network.total_bytes(), len(network.transcript)


@pytest.mark.skipif(
    smoke_mode(), reason="smoke mode runs the report test only"
)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_loopback_tcp_wall_clock(benchmark, ca, client, default_workload, protocol):
    """pytest-benchmark series: one full join over loopback sockets."""

    def run():
        with TcpTransport(retry=POLICY) as transport:
            federation = _federation(ca, client, default_workload, transport)
            return run_join_query(federation, QUERY, protocol=protocol)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bus_vs_loopback_report(ca, client, default_workload):
    lines = [
        "Transport comparison: in-process bus vs loopback TCP",
        "(same workload, same protocols; bus bytes are structural",
        " estimates + envelope constant, tcp bytes are framed wire bytes)",
        f"{'protocol':18s} {'carrier':8s} {'seconds':>9s} {'bytes':>9s} "
        f"{'msgs':>5s} {'inflation':>9s}",
    ]
    metrics: dict[str, float] = {}
    gate: dict[str, dict] = {}
    for protocol in PROTOCOLS:
        bus_result, bus_seconds, bus_bytes, bus_messages = _timed_run(
            _federation(ca, client, default_workload), protocol
        )
        with TcpTransport(retry=POLICY) as transport:
            tcp_result, tcp_seconds, tcp_bytes, tcp_messages = _timed_run(
                _federation(ca, client, default_workload, transport), protocol
            )

        # Identical joins, identical interaction counts.
        assert tcp_result.global_result == bus_result.global_result
        assert tcp_messages == bus_messages

        inflation = tcp_bytes / bus_bytes
        # Real framing costs something, but nowhere near double.
        assert 1.0 <= inflation < 2.0, (protocol, inflation)

        # Host-independent structure is regression-gated (wire
        # inflation within tolerance, message count never grows);
        # absolute timings are informational context.
        metrics[f"{protocol}_inflation"] = round(inflation, 4)
        metrics[f"{protocol}_messages"] = tcp_messages
        metrics[f"{protocol}_tcp_seconds"] = round(tcp_seconds, 4)
        metrics[f"{protocol}_bus_seconds"] = round(bus_seconds, 4)
        gate[f"{protocol}_inflation"] = {
            "direction": "max", "tolerance": 0.30,
        }
        gate[f"{protocol}_messages"] = {
            "direction": "max", "tolerance": 0.0,
        }

        lines.append(
            f"{protocol:18s} {'bus':8s} {bus_seconds:>9.4f} {bus_bytes:>9d} "
            f"{bus_messages:>5d} {'--':>9s}"
        )
        lines.append(
            f"{protocol:18s} {'tcp':8s} {tcp_seconds:>9.4f} {tcp_bytes:>9d} "
            f"{tcp_messages:>5d} {inflation:>8.2f}x"
        )
    write_report("transport_loopback.txt", "\n".join(lines))
    write_bench_json("transport_loopback", metrics=metrics, gate=gate)
