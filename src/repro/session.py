"""Session lifecycle: multiplexing many join queries over shared parties.

One *session* is one client's series of queries — the unit of isolation
when a single mediator/datasource trio serves many clients at once
(Shafieinejad et al. motivate exactly this workload: the same encrypted
sources answering a *series* of queries).  This module provides the two
halves of that multiplexing:

* a **registry** (:class:`SessionRegistry`) that keys arbitrary
  per-session protocol state — endpoint routing records, dedupe
  windows, decomposition caches, credential-verification caches — by
  session id, with an explicit lifecycle (open → steps → close) plus
  LRU + TTL eviction so abandoned sessions cannot leak memory in a
  long-lived ``repro serve`` process;
* a **context** (:func:`session_scope` / :func:`current_session_id`)
  that propagates the active session id through a run the same way
  :mod:`repro.deadline` propagates deadlines: the runner opens a scope,
  and every transport send, fault decision, and span below it can read
  the id without plumbing it through each protocol signature.

Isolation is a security property here, not just a performance one
(Vaswani et al., "Information Flows in Encrypted Databases"): endpoint
state recorded under one session id must never be observable through
another session's queries, which is why the registry — not ad-hoc
module globals — owns every per-session slot.

The module is dependency-free (no telemetry, no transport imports) so
any layer may use it without import cycles.
"""

from __future__ import annotations

import contextvars
import secrets
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "DEFAULT_SESSION_CAPACITY",
    "DEFAULT_SESSION_TTL",
    "LEGACY_SESSION",
    "Session",
    "SessionRegistry",
    "current_session_id",
    "new_session_id",
    "session_scope",
]

#: Sessions kept per registry before the least-recently-used is evicted.
DEFAULT_SESSION_CAPACITY = 1024
#: Seconds of inactivity after which a session is expired by a sweep.
DEFAULT_SESSION_TTL = 900.0
#: The session id assigned to traffic that predates session envelopes.
#: Legacy peers keep exactly their old behaviour: one shared state slot,
#: never rejected by admission control.
LEGACY_SESSION = "legacy"


def new_session_id() -> str:
    """A fresh, unguessable session identifier (64 bits of entropy)."""
    return secrets.token_hex(8)


class Session:
    """One open session: identity, liveness clock, and its state slots.

    ``state`` is a free-form dict owned by whoever opened the session
    (an endpoint keeps its records and dedupe window there, a mediator
    its decomposition cache).  ``lock`` serializes steps *within* the
    session while distinct sessions proceed in parallel; its concrete
    type comes from the registry's ``lock_factory`` so the same class
    serves ``threading`` and ``asyncio`` callers.
    """

    __slots__ = ("id", "created_at", "last_used", "state", "lock", "closed")

    def __init__(self, session_id: str, lock: Any, now: float) -> None:
        self.id = session_id
        self.created_at = now
        self.last_used = now
        self.state: dict[str, Any] = {}
        self.lock = lock
        self.closed = False

    def touch(self, now: float) -> None:
        self.last_used = now

    def idle_seconds(self, now: float) -> float:
        return now - self.last_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.id!r}, closed={self.closed})"


class SessionRegistry:
    """Keyed per-session state with explicit lifecycle and bounded memory.

    Lifecycle: a session is **opened** (explicitly via :meth:`open`, or
    implicitly by :meth:`get` with ``create=True`` — the legacy-friendly
    path for peers that never send a SESSION frame), **touched** by each
    step, and ends by :meth:`close`, by TTL expiry (:meth:`expire`, also
    run opportunistically on every access), or by LRU eviction once the
    registry exceeds ``capacity``.  ``on_evict(session, reason)`` is
    fired for every ending (reasons: ``"closed"``, ``"ttl"``, ``"lru"``)
    so owners can release derived resources.

    Thread-safe: a private :class:`threading.Lock` guards the table, so
    the registry serves multi-threaded clients (the bus, the load
    generator) and single-threaded asyncio endpoints alike.  Per-session
    ``lock`` objects are built by ``lock_factory`` and handed to the
    caller; the registry itself never acquires them.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_SESSION_CAPACITY,
        ttl: float | None = DEFAULT_SESSION_TTL,
        lock_factory: Callable[[], Any] = threading.Lock,
        on_evict: Callable[[Session, str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._lock_factory = lock_factory
        self._on_evict = on_evict
        self._clock = clock
        self._guard = threading.Lock()
        #: Insertion order doubles as LRU order: every touch reinserts.
        self._sessions: dict[str, Session] = {}

    # -- lifecycle ---------------------------------------------------------

    def open(self, session_id: str | None = None) -> Session:
        """Explicitly open a fresh session; returns the existing one if
        the id is already live (opens are idempotent — a retried SESSION
        frame must not fail)."""
        session_id = session_id or new_session_id()
        return self.get(session_id)

    def get(self, session_id: str, *, create: bool = True) -> Session | None:
        """The live session for ``session_id``, LRU-touched.

        With ``create=True`` (default) an unknown id opens implicitly —
        the compatibility path for peers that never announce sessions.
        Expired sessions are swept first, so a stale id re-creates a
        fresh session rather than resurrecting evicted state.
        """
        now = self._clock()
        ended: list[tuple[Session, str]] = []
        try:
            with self._guard:
                self._sweep(now, ended)
                session = self._sessions.pop(session_id, None)
                if session is None:
                    if not create:
                        return None
                    session = Session(session_id, self._lock_factory(), now)
                session.touch(now)
                self._sessions[session_id] = session  # reinsert = LRU bump
                self._evict_over_capacity(ended)
                return session
        finally:
            self._notify(ended)

    def peek(self, session_id: str) -> Session | None:
        """The live session, without touching LRU order or creating."""
        with self._guard:
            return self._sessions.get(session_id)

    def close(self, session_id: str) -> Session | None:
        """End a session explicitly; returns it (now closed), if it was
        live."""
        with self._guard:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
            self._notify([(session, "closed")])
        return session

    def expire(self) -> list[Session]:
        """Sweep TTL-stale sessions now; returns the expired ones."""
        ended: list[tuple[Session, str]] = []
        with self._guard:
            self._sweep(self._clock(), ended)
        self._notify(ended)
        return [session for session, _ in ended]

    def clear(self) -> None:
        """Close every live session (registry shutdown)."""
        with self._guard:
            doomed = list(self._sessions.values())
            self._sessions.clear()
        for session in doomed:
            session.closed = True
        self._notify([(session, "closed") for session in doomed])

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._guard:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._guard:
            return session_id in self._sessions

    def ids(self) -> list[str]:
        """Live session ids, least-recently-used first."""
        with self._guard:
            return list(self._sessions)

    # -- internals ---------------------------------------------------------

    def _sweep(self, now: float, ended: list[tuple[Session, str]]) -> None:
        """Remove TTL-expired sessions (guard held)."""
        if self.ttl is None:
            return
        stale = [
            session_id
            for session_id, session in self._sessions.items()
            if session.idle_seconds(now) > self.ttl
        ]
        for session_id in stale:
            session = self._sessions.pop(session_id)
            session.closed = True
            ended.append((session, "ttl"))

    def _evict_over_capacity(self, ended: list[tuple[Session, str]]) -> None:
        """Drop least-recently-used sessions above capacity (guard held)."""
        while len(self._sessions) > self.capacity:
            session_id = next(iter(self._sessions))
            session = self._sessions.pop(session_id)
            session.closed = True
            ended.append((session, "lru"))

    def _notify(self, ended: list[tuple[Session, str]]) -> None:
        """Fire eviction callbacks outside the guard (no re-entrancy)."""
        if self._on_evict is None:
            return
        for session, reason in ended:
            self._on_evict(session, reason)


# ---------------------------------------------------------------------------
# Context propagation (mirrors repro.deadline).
# ---------------------------------------------------------------------------

_current_session: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro.session", default=None
)


def current_session_id() -> str | None:
    """The session id installed by the innermost :func:`session_scope`."""
    return _current_session.get()


@contextmanager
def session_scope(session_id: str | None = None) -> Iterator[str]:
    """Install a session id for the dynamic extent of a run.

    Everything below the scope — transport sends, fault decisions,
    spans — reads the id via :func:`current_session_id`.  ``None``
    mints a fresh id; scopes nest, restoring the outer id on exit.
    """
    session_id = session_id or new_session_id()
    token = _current_session.set(session_id)
    try:
        yield session_id
    finally:
        _current_session.reset(token)
