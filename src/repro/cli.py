"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     — run a built-in workload under one protocol and print
  the decrypted global result plus the transcript summary.
* ``compare``  — the Section-6 comparison table over a parameterized
  synthetic workload.
* ``leakage``  — reproduce Tables 1 and 2 from live transcripts.
* ``audit``    — run one protocol and emit the JSON audit record.
* ``query``    — secure-join two relations loaded from CSV files,
  in-process or over TCP against running ``serve`` endpoints.
* ``serve``    — run one party's TCP endpoint (mediator, source, or
  client) for the distributed demo.
* ``loadgen``  — drive N concurrent client sessions against one serve
  trio (in-process by default) and report throughput and tail latency.
* ``telemetry`` — fetch a running endpoint's spans and metrics.
* ``workload`` — generate a synthetic workload as two CSV files.

Every protocol-running command accepts ``--trace-out`` (Chrome
trace-event JSON, loadable in Perfetto), ``--metrics-out`` (Prometheus
text exposition, or a JSON snapshot for ``.json`` paths), and
``--log-level``; see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro import (
    CertificationAuthority,
    Federation,
    run_join_query,
    setup_client,
)
from repro.analysis import analyze, compare, primitive_profile, render, table1, table2
from repro.analysis.export import export_run_json
from repro.core.runner import PROTOCOLS
from repro.crypto.backend import (
    BACKEND_CHOICES,
    record_backend_info,
    set_backend,
)
from repro.crypto.engine import CryptoEngine, set_engine
from repro.errors import ParameterError
from repro.faults import FaultInjector, FaultPlan, FaultyTransport
from repro.mediation.access_control import allow_all
from repro.mediation.network import Network
from repro.mediation.client import default_homomorphic_scheme
from repro.errors import StorageError
from repro.relational import csvio
from repro.relational.datagen import WorkloadSpec, Workload, generate
from repro.relational.relation import Relation
from repro.storage import FaultyStorage, StorageBackend, storage_from_spec
from repro.telemetry import (
    MetricsRegistry,
    MetricsScrapeServer,
    Tracer,
    configure_logging,
    get_tracer,
    party_logger,
    prometheus_exposition,
    use_metrics,
    use_tracer,
    write_chrome_trace,
    write_metrics,
)
from repro.transport import PartyServer, TcpTransport
from repro.transport.base import Transport
from repro.transport.tcp import fetch_telemetry

DEFAULT_RSA_BITS = 1024
DEFAULT_PAILLIER_BITS = 1024

#: Default loopback ports of the distributed-demo endpoints.
DEFAULT_PORTS = {"mediator": 7401, "S1": 7402, "S2": 7403}
DEFAULT_PARTY_OF_ROLE = {"mediator": "mediator", "source": "S1"}


def _build_federation(
    relation_1: Relation,
    relation_2: Relation,
    rsa_bits: int,
    paillier_bits: int,
    network: Transport | None = None,
    storage: StorageBackend | None = None,
) -> Federation:
    ca = CertificationAuthority(key_bits=rsa_bits)
    if network is not None:
        federation = Federation(ca=ca, network=network, storage=storage)
    else:
        federation = Federation(ca=ca, storage=storage)
    federation.add_source("S1", [(relation_1, allow_all())])
    federation.add_source("S2", [(relation_2, allow_all())])
    federation.attach_client(
        setup_client(
            ca,
            "cli-client",
            {("role", "analyst")},
            rsa_bits=rsa_bits,
            homomorphic_scheme=default_homomorphic_scheme(paillier_bits),
        )
    )
    return federation


def _workload_from_args(args) -> Workload:
    return generate(
        WorkloadSpec(
            domain_1=args.domain,
            domain_2=args.domain,
            overlap=args.overlap,
            rows_per_value_1=args.rows_per_value,
            rows_per_value_2=args.rows_per_value,
            seed=args.seed,
        )
    )


def _add_crypto_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rsa-bits", type=int, default=DEFAULT_RSA_BITS,
        help="RSA modulus size for client keys and the CA",
    )
    parser.add_argument(
        "--paillier-bits", type=int, default=DEFAULT_PAILLIER_BITS,
        help="Paillier modulus size for private matching",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="crypto engine worker processes (0/1 = serial; default: "
        "the REPRO_CRYPTO_WORKERS environment variable, else serial)",
    )
    parser.add_argument(
        "--batch-threshold", type=int, default=None,
        help="minimum batch size before crypto work fans out to the pool",
    )
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--crypto-backend", choices=BACKEND_CHOICES, default=None,
        help="bigint backend: gmpy2 (native GMP), python (stdlib), or "
        "auto = gmpy2 when importable (default: the "
        "REPRO_CRYPTO_BACKEND environment variable, else auto)",
    )


def _add_storage_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--storage", default=None, metavar="SPEC",
        help="persistent storage backend: 'memory' (per-process index "
             "cache) or 'sqlite:PATH' (relations and encrypted index "
             "caches survive across invocations); default: none",
    )


def _open_storage(args, injector=None) -> StorageBackend | None:
    """``--storage`` spec -> opened backend (fail fast on a bad spec).

    With an active fault plan the backend is wrapped in
    :class:`~repro.storage.FaultyStorage` so plans with ``site:
    "storage"`` rules reach it.
    """
    spec = getattr(args, "storage", None)
    try:
        backend = storage_from_spec(spec)
    except StorageError as exc:
        raise SystemExit(f"invalid --storage {spec!r}: {exc}")
    if backend is not None and injector is not None:
        backend = FaultyStorage(backend, injector)
    return backend


def _print_storage_stats(result) -> None:
    """One greppable line of cache statistics (CI's chaos step reads it)."""
    stats = result.artifacts.get("storage_cache")
    if not stats:
        return
    print(
        f"storage cache [{stats['backend']}]: hits={stats['hits']} "
        f"misses={stats['misses']} puts={stats['puts']} "
        f"errors={stats['errors']}"
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the run (open in Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run metrics: Prometheus text exposition, or a JSON "
             "snapshot when PATH ends in .json",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable structured logging at this level",
    )


@contextmanager
def _telemetry_session(args) -> Iterator[tuple[Tracer | None, MetricsRegistry | None]]:
    """Install tracer/registry per the CLI flags; export files on exit.

    Tracing and metrics activate together whenever either output path is
    requested — a trace without its metrics (or vice versa) is rarely
    what anyone wants, and the combined overhead is negligible.
    """
    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield None, None
        return
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        try:
            yield tracer, registry
        finally:
            if trace_out:
                write_chrome_trace(trace_out, tracer.spans)
                print(f"trace written to {trace_out}", file=sys.stderr)
            if metrics_out:
                write_metrics(metrics_out, registry)
                print(f"metrics written to {metrics_out}", file=sys.stderr)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--domain", type=int, default=10)
    parser.add_argument("--overlap", type=int, default=5)
    parser.add_argument("--rows-per-value", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)


def _command_demo(args) -> int:
    workload = _workload_from_args(args)
    storage = _open_storage(args)
    try:
        federation = _build_federation(
            workload.relation_1, workload.relation_2, args.rsa_bits,
            args.paillier_bits, storage=storage,
        )
        result = run_join_query(
            federation, "select * from R1 natural join R2",
            protocol=args.protocol,
        )
        print(result.global_result.pretty())
        print()
        print(result.summary())
        _print_storage_stats(result)
    finally:
        if storage is not None:
            storage.close()
    return 0


def _command_compare(args) -> int:
    from repro import CommutativeConfig, DASConfig, PMConfig

    workload = _workload_from_args(args)

    def factory() -> Federation:
        return _build_federation(
            workload.relation_1, workload.relation_2, args.rsa_bits,
            args.paillier_bits,
        )

    rows = compare(
        factory,
        "select * from R1 natural join R2",
        [
            ("das", DASConfig()),
            ("commutative", CommutativeConfig()),
            ("private-matching", PMConfig()),
        ],
    )
    print(render(rows))
    return 0


def _command_leakage(args) -> int:
    workload = _workload_from_args(args)
    reports, profiles = [], []
    for protocol in sorted(PROTOCOLS):
        federation = _build_federation(
            workload.relation_1, workload.relation_2, args.rsa_bits,
            args.paillier_bits,
        )
        result = run_join_query(
            federation, "select * from R1 natural join R2", protocol=protocol
        )
        reports.append(analyze(result))
        profiles.append(primitive_profile(result))
    print(table1(reports))
    print()
    print(table2(profiles))
    return 0


def _command_audit(args) -> int:
    if args.differential:
        return _command_audit_differential(args)
    workload = _workload_from_args(args)
    federation = _build_federation(
        workload.relation_1, workload.relation_2, args.rsa_bits,
        args.paillier_bits,
    )
    result = run_join_query(
        federation, "select * from R1 natural join R2", protocol=args.protocol
    )
    print(export_run_json(result))
    return 0


def _command_audit_differential(args) -> int:
    """``repro audit --differential``: the repro-leakage/1 artifact.

    Runs every protocol over a seeded workload and its adjacent twin
    (one tuple's join value moved), on the chosen carrier, and emits the
    per-adversary observable-distance document the CI leakage gate
    consumes (see docs/observability.md).
    """
    from repro.analysis.audit import (
        AuditConfig,
        differential_audit,
        leakage_json,
        render_audit_summary,
        write_leakage_artifact,
    )

    spec = WorkloadSpec(
        domain_1=args.domain,
        domain_2=args.domain,
        overlap=args.overlap,
        rows_per_value_1=args.rows_per_value,
        rows_per_value_2=args.rows_per_value,
        seed=args.seed,
    )
    config = AuditConfig(
        transport=args.transport,
        spec=spec,
        rsa_bits=args.rsa_bits,
        paillier_bits=args.paillier_bits,
        canary=args.canary,
        include_timing=args.include_timing,
        hardened=args.hardened,
    )
    document = differential_audit(config)
    if getattr(args, "any_transport", False):
        # Hardened distances are transport-independent by construction;
        # a baseline labelled "any" gates both bus and tcp candidates.
        document["transport"] = "any"
    if args.out:
        write_leakage_artifact(args.out, document)
        print(render_audit_summary(document))
        print(f"leakage artifact written to {args.out}", file=sys.stderr)
    else:
        print(leakage_json(document), end="")
    return 0


def _parse_endpoints(pairs: list[str]) -> dict[str, tuple[str, int]]:
    """``PARTY=HOST:PORT`` arguments -> endpoint map, with defaults."""
    endpoints = {
        party: ("127.0.0.1", port) for party, port in DEFAULT_PORTS.items()
    }
    for pair in pairs:
        try:
            party, address = pair.split("=", 1)
            host, port = address.rsplit(":", 1)
            endpoints[party] = (host, int(port))
        except ValueError:
            raise SystemExit(
                f"invalid --endpoint {pair!r}; expected PARTY=HOST:PORT"
            )
    return endpoints


def _command_query(args) -> int:
    relation_1 = csvio.load(args.name1, args.csv1)
    relation_2 = csvio.load(args.name2, args.csv2)
    if args.fault_log and not args.fault_plan:
        raise SystemExit("--fault-log requires --fault-plan")
    injector = None
    if args.fault_plan:
        injector = FaultInjector(FaultPlan.load(args.fault_plan))
    transport = None
    if args.transport == "tcp":
        # Mediator and sources must already be listening (``repro
        # serve``); the client's own endpoint is hosted in this process.
        transport = TcpTransport(endpoints=_parse_endpoints(args.endpoint))
    network: Transport | None = transport
    if injector is not None:
        # A fault plan needs a carrier to wrap — over the bus that means
        # constructing the (otherwise implicit) Network explicitly.
        network = FaultyTransport(transport or Network(), injector)
    storage = _open_storage(args, injector)
    try:
        federation = _build_federation(
            relation_1, relation_2, args.rsa_bits, args.paillier_bits,
            network=network, storage=storage,
        )
        sql = args.sql or (
            f"select * from {args.name1} natural join {args.name2}"
        )
        degrade = injector is not None or args.deadline is not None
        result = run_join_query(
            federation, sql, protocol=args.protocol,
            on_failure="return" if degrade else "raise",
            deadline_seconds=args.deadline,
            hardening=args.hardened,
        )
        if not result.ok:
            # Graceful degradation: the structured failure, never a
            # traceback.  Partial telemetry still exports on exit.
            print(result.summary())
            if transport is not None and get_tracer() is not None:
                try:
                    transport.harvest_telemetry()
                except Exception:
                    pass  # surviving endpoints only; some may be dead
            return 2
        if args.output:
            csvio.dump(result.global_result, args.output)
            print(f"{len(result.global_result)} rows written to {args.output}")
        else:
            print(result.global_result.pretty())
        _print_storage_stats(result)
        if args.hardened and "hardening" in result.artifacts:
            stats = result.artifacts["hardening"]
            print(
                f"hardened: overhead x{stats['overhead_factor']}, "
                f"{stats['dummy_items_total']} dummy items, "
                f"{stats['frames_total']} result frames"
            )
        if transport is not None:
            print(
                f"\n{len(federation.network.transcript)} messages, "
                f"{result.total_bytes()} actual bytes on the wire"
            )
            remote = transport.remote_view(federation.mediator.name)
            print(
                f"mediator endpoint recorded {len(remote)} messages "
                f"({sum(r.wire_bytes for r in remote)} B received)"
            )
            if get_tracer() is not None:
                # Pull every endpoint's recv spans and metrics into the
                # installed collectors: the exported trace then covers
                # client, mediator, and both sources as one trace.
                transport.harvest_telemetry()
    finally:
        if injector is not None and args.fault_log:
            with open(args.fault_log, "w", encoding="utf-8") as handle:
                text = injector.event_log_text()
                handle.write(text + "\n" if text else "")
            print(f"fault log written to {args.fault_log}", file=sys.stderr)
        if storage is not None:
            storage.close()
        if network is not None:
            network.close()
    return 0


def _parse_shard(spec: str | None) -> tuple[int, int] | None:
    """``K/N`` -> (index, total); validates 1 <= K <= N."""
    if spec is None:
        return None
    try:
        index, total = (int(part) for part in spec.split("/", 1))
    except ValueError:
        raise SystemExit(f"invalid --shard {spec!r}; expected K/N")
    if not 1 <= index <= total:
        raise SystemExit(f"invalid --shard {spec!r}; need 1 <= K <= N")
    return index, total


def _command_serve_router(args) -> int:
    """``repro serve router``: the session-affine shard router."""
    from repro.cluster import ShardRouter

    party = args.party or "mediator"
    port = args.port if args.port is not None else DEFAULT_PORTS.get(party, 0)
    configure_logging(args.log_level or "info")
    log = party_logger(f"{party}.router")
    if not args.shard_endpoint:
        raise SystemExit(
            "serve router needs at least one --shard-endpoint HOST:PORT"
        )
    shards: dict[str, tuple[str, int]] = {}
    for index, spec in enumerate(args.shard_endpoint, start=1):
        try:
            shard_host, shard_port = spec.rsplit(":", 1)
            shards[f"{party}-{index}"] = (shard_host, int(shard_port))
        except ValueError:
            raise SystemExit(
                f"invalid --shard-endpoint {spec!r}; expected HOST:PORT"
            )
    router = ShardRouter(shards, party=party, host=args.host, port=port)

    async def _serve() -> None:
        bound_host, bound_port = await router.start()
        log.info(
            "shard router for party %r listening on %s:%d (%d shards: %s)",
            party, bound_host, bound_port, len(shards),
            ", ".join(
                f"{label}={host}:{endpoint_port}"
                for label, (host, endpoint_port) in sorted(shards.items())
            ),
        )
        await router.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        stats = router.stats()
        log.info(
            "%d sessions routed, bye", stats.get("sessions_routed", 0)
        )
    return 0


def _command_serve(args) -> int:
    if args.role == "router":
        return _command_serve_router(args)
    party = args.party or DEFAULT_PARTY_OF_ROLE.get(args.role, "client")
    port = args.port if args.port is not None else DEFAULT_PORTS.get(party, 0)
    shard = _parse_shard(getattr(args, "shard", None))
    configure_logging(args.log_level or "info")
    log = party_logger(
        party if shard is None else f"{party}[{shard[0]}/{shard[1]}]"
    )
    # Open (and thereby validate) the backend before the endpoint binds:
    # a bad spec or unwritable path fails fast instead of surfacing as
    # query-time errors.  The SQLite file is created here, so restarted
    # endpoints find their store provisioned.
    storage = _open_storage(args)
    if storage is not None:
        log.info("storage backend ready: %s", storage.describe())
    server = PartyServer(
        party,
        host=args.host,
        port=port,
        on_message=lambda record: log.info(
            "#%03d %s -> %s: %s (%d B)",
            record.sequence, record.sender, record.receiver,
            record.kind, record.wire_bytes,
        ),
    )

    async def _serve() -> None:
        host, bound_port = await server.start()
        log.info(
            "%s endpoint for party %r listening on %s:%d",
            args.role, party, host, bound_port,
        )
        scrape = None
        if args.metrics_port is not None:
            # Live Prometheus scrape target next to the party endpoint:
            # renders the endpoint's own registry on every GET /metrics.
            scrape = MetricsScrapeServer(
                lambda: prometheus_exposition(server.registry),
                host=args.host,
                port=args.metrics_port,
            )
            scrape_host, scrape_port = await scrape.start()
            log.info(
                "metrics exposition at http://%s:%d/metrics",
                scrape_host, scrape_port,
            )
        # SIGTERM begins a graceful drain (docs/cluster.md): the
        # endpoint answers BUSY to new sessions, finishes in-flight
        # ones, and exits 0 once they close (or --drain-grace expires).
        loop = asyncio.get_running_loop()
        draining = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, draining.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal handler support
        serve_task = asyncio.ensure_future(server.serve_forever())
        drain_task = asyncio.ensure_future(draining.wait())
        try:
            done, _pending = await asyncio.wait(
                {serve_task, drain_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if drain_task in done:
                server.drain()
                log.info(
                    "SIGTERM: draining, refusing new sessions "
                    "(%d in flight)", server.active_sessions(),
                )
                deadline = loop.time() + args.drain_grace
                while server.active_sessions() and loop.time() < deadline:
                    await asyncio.sleep(0.1)
                leftover = server.active_sessions()
                if leftover:
                    log.warning(
                        "drain grace of %.1fs expired with %d sessions "
                        "still live", args.drain_grace, leftover,
                    )
                log.info(
                    "drained; %d messages received, bye",
                    len(server.records),
                )
            else:
                await serve_task  # propagate listener failures
        finally:
            for task in (serve_task, drain_task):
                task.cancel()
            await server.stop()
            if scrape is not None:
                await scrape.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        log.info("%d messages received, bye", len(server.records))
    finally:
        if storage is not None:
            storage.close()
    return 0


def _command_loadgen(args) -> int:
    from repro.loadgen import LoadgenConfig, run_load

    config = LoadgenConfig(
        sessions=args.sessions,
        queries_per_session=args.queries,
        concurrency=args.concurrency,
        protocol=args.protocol,
        ack_delay=args.ack_delay,
        max_sessions=args.max_sessions,
        domain=args.domain,
        overlap=args.overlap,
        rows_per_value=args.rows_per_value,
        seed=args.seed,
        rsa_bits=args.rsa_bits,
        paillier_bits=args.paillier_bits,
        storage_spec=args.storage,
        cluster=args.cluster,
        shards=args.shards,
        shard_max_workers=args.shard_max_workers,
    )
    endpoints = _parse_endpoints(args.endpoint) if args.remote else None
    report = run_load(config, endpoints=endpoints)
    print(report.render())
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json_out}", file=sys.stderr)
    if report.failed or not report.consistent:
        return 2
    return 0


def _command_telemetry(args) -> int:
    """Print a running endpoint's telemetry (TELEMETRY/TELEMETRY_DATA)."""
    snapshot = fetch_telemetry(args.host, args.port, timeout=args.timeout)
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        exposition = snapshot.get("exposition", "")
        print(exposition, end="" if exposition.endswith("\n") else "\n")
    return 0


def _command_report(args) -> int:
    from repro.analysis.report import full_report

    workload = _workload_from_args(args)

    def factory() -> Federation:
        return _build_federation(
            workload.relation_1, workload.relation_2, args.rsa_bits,
            args.paillier_bits,
        )

    document = full_report(
        factory,
        "select * from R1 natural join R2",
        [workload.relation_1, workload.relation_2],
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"report written to {args.output}")
    else:
        print(document)
    return 0


def _command_workload(args) -> int:
    workload = _workload_from_args(args)
    csvio.dump(workload.relation_1, args.out1)
    csvio.dump(workload.relation_2, args.out2)
    print(
        f"wrote {args.out1} ({len(workload.relation_1)} rows) and "
        f"{args.out2} ({len(workload.relation_2)} rows); expected join "
        f"size {workload.expected_join_size}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure mediation of join queries by processing ciphertexts",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run one protocol on a demo workload")
    demo.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="commutative"
    )
    _add_workload_arguments(demo)
    _add_crypto_arguments(demo)
    _add_storage_arguments(demo)
    _add_telemetry_arguments(demo)
    demo.set_defaults(handler=_command_demo)

    comparison = commands.add_parser(
        "compare", help="Section-6 comparison of all protocols"
    )
    _add_workload_arguments(comparison)
    _add_crypto_arguments(comparison)
    _add_telemetry_arguments(comparison)
    comparison.set_defaults(handler=_command_compare)

    leakage = commands.add_parser(
        "leakage", help="reproduce Tables 1 and 2 from live transcripts"
    )
    _add_workload_arguments(leakage)
    _add_crypto_arguments(leakage)
    _add_telemetry_arguments(leakage)
    leakage.set_defaults(handler=_command_leakage)

    audit = commands.add_parser(
        "audit", help="emit a JSON audit record of one protocol run, or "
        "the differential leakage audit over all protocols",
    )
    audit.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="commutative"
    )
    audit.add_argument(
        "--differential", action="store_true",
        help="run the adjacent-workload leakage audit over every protocol "
             "and emit the repro-leakage/1 artifact (docs/observability.md)",
    )
    audit.add_argument(
        "--transport", choices=("bus", "tcp", "cluster"), default="bus",
        help="with --differential: carrier to observe (tcp hosts a local "
             "endpoint trio in-process; cluster routes the mediator "
             "through a 2-shard fleet to prove router leakage-neutrality)",
    )
    audit.add_argument(
        "--out", default=None, metavar="PATH",
        help="with --differential: write the artifact here and print the "
             "distance table (default: artifact JSON to stdout)",
    )
    audit.add_argument(
        "--canary", action="store_true",
        help="with --differential: wrap the carrier in the deliberately "
             "size-leaking LeakyTransport (the leakage gate must flag this)",
    )
    audit.add_argument(
        "--include-timing", action="store_true",
        help="with --differential: add (nondeterministic, ungated) "
             "step-latency distances",
    )
    audit.add_argument(
        "--hardened", action="store_true",
        help="with --differential: audit the leakage-hardened oblivious "
             "mode and gate at ~zero distances (docs/security.md); with "
             "--canary, runs execute unhardened so the hardened gate "
             "must flag the regression",
    )
    audit.add_argument(
        "--any-transport", action="store_true",
        help="with --differential: label the artifact transport 'any' so "
             "a committed baseline gates both bus and tcp candidates",
    )
    _add_workload_arguments(audit)
    _add_crypto_arguments(audit)
    _add_telemetry_arguments(audit)
    audit.set_defaults(handler=_command_audit)

    query = commands.add_parser("query", help="secure-join two CSV relations")
    query.add_argument("csv1", help="CSV file of the first relation")
    query.add_argument("csv2", help="CSV file of the second relation")
    query.add_argument("--name1", default="R1", help="first relation name")
    query.add_argument("--name2", default="R2", help="second relation name")
    query.add_argument("--sql", default=None, help="global query to run")
    query.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="commutative"
    )
    query.add_argument("--output", default=None, help="write result CSV here")
    query.add_argument(
        "--transport", choices=("bus", "tcp"), default="bus",
        help="message carrier: in-process bus or TCP endpoints",
    )
    query.add_argument(
        "--endpoint", action="append", default=[], metavar="PARTY=HOST:PORT",
        help="TCP endpoint of a remote party (repeatable; defaults: "
             "mediator=127.0.0.1:7401, S1=...:7402, S2=...:7403)",
    )
    query.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="inject the faults described in this JSON plan (see "
             "docs/robustness.md); failures become structured RunFailure "
             "output with exit code 2",
    )
    query.add_argument(
        "--fault-log", default=None, metavar="PATH",
        help="write the deterministic fault-event log here (requires "
             "--fault-plan; byte-identical across same-seed runs)",
    )
    query.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="overall run deadline, propagated into every transport wait",
    )
    query.add_argument(
        "--hardened", action="store_true",
        help="run in the leakage-hardened oblivious mode: padded buckets, "
             "uniform ciphertext sizes, fixed-size result frames "
             "(docs/security.md 'Hardened mode')",
    )
    _add_crypto_arguments(query)
    _add_storage_arguments(query)
    _add_telemetry_arguments(query)
    query.set_defaults(handler=_command_query)

    serve = commands.add_parser(
        "serve", help="run one party's TCP endpoint for the distributed demo"
    )
    serve.add_argument(
        "role", choices=("mediator", "source", "client", "router"),
        help="which party role this endpoint plays (router fronts a "
             "sharded mediator fleet, see docs/cluster.md)",
    )
    serve.add_argument(
        "--party", default=None,
        help="party name (defaults: mediator, S1, or client)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=None,
        help="listening port (default: the party's well-known demo port)",
    )
    serve.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run as shard K of an N-shard fleet behind a router "
             "(label '{party}-K'; affects logging only — placement is "
             "the router's job)",
    )
    serve.add_argument(
        "--shard-endpoint", action="append", default=[],
        metavar="HOST:PORT",
        help="with role 'router': a mediator shard endpoint, in shard "
             "order (repeatable; shard k gets label '{party}-k')",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="on SIGTERM: refuse new sessions and wait up to this long "
             "for in-flight sessions to finish before exiting",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve the endpoint's metrics as a live Prometheus "
             "scrape target (GET /metrics) on this port (0 = ephemeral)",
    )
    serve.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="endpoint log verbosity (default: info)",
    )
    _add_backend_argument(serve)
    _add_storage_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive N concurrent client sessions against one serve trio",
    )
    loadgen.add_argument(
        "--sessions", type=int, default=8,
        help="number of concurrent client sessions (default: 8)",
    )
    loadgen.add_argument(
        "--queries", type=int, default=1,
        help="queries each session runs back to back (default: 1)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=None,
        help="worker threads (default: one per session; 1 = sequential "
             "baseline)",
    )
    loadgen.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="commutative"
    )
    loadgen.add_argument(
        "--ack-delay", type=float, default=0.0, metavar="SECONDS",
        help="simulated link round-trip per message at the in-process "
             "trio's endpoints (ignored with --remote)",
    )
    loadgen.add_argument(
        "--max-sessions", type=int, default=64,
        help="session capacity of the in-process trio (BUSY above it)",
    )
    loadgen.add_argument(
        "--remote", action="store_true",
        help="drive running `repro serve` endpoints instead of hosting "
             "the trio in-process",
    )
    loadgen.add_argument(
        "--cluster", action="store_true",
        help="host the mediator as a sharded fleet behind a session-"
             "affine router (in-process; with --remote, report router "
             "per-shard stats when the mediator endpoint is a router)",
    )
    loadgen.add_argument(
        "--shards", type=int, default=2,
        help="with --cluster: number of mediator shards (default: 2)",
    )
    loadgen.add_argument(
        "--shard-max-workers", type=int, default=None, metavar="N",
        help="with --cluster: per-shard worker slots (default: the "
             "server default; 1 models a fully serialized shard)",
    )
    loadgen.add_argument(
        "--endpoint", action="append", default=[], metavar="PARTY=HOST:PORT",
        help="with --remote: TCP endpoint of a party (repeatable; "
             "defaults to the well-known demo ports)",
    )
    loadgen.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the full load report as JSON here",
    )
    _add_workload_arguments(loadgen)
    _add_crypto_arguments(loadgen)
    _add_storage_arguments(loadgen)
    _add_telemetry_arguments(loadgen)
    loadgen.set_defaults(handler=_command_loadgen)

    telemetry = commands.add_parser(
        "telemetry", help="fetch a running endpoint's spans and metrics"
    )
    telemetry.add_argument("--host", default="127.0.0.1")
    telemetry.add_argument(
        "--port", type=int, required=True, help="endpoint port to query"
    )
    telemetry.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="Prometheus exposition (default) or the full JSON snapshot",
    )
    telemetry.add_argument(
        "--timeout", type=float, default=10.0, help="request timeout seconds"
    )
    telemetry.set_defaults(handler=_command_telemetry)

    report = commands.add_parser(
        "report", help="full markdown evaluation report (all protocols)"
    )
    report.add_argument("--output", default=None, help="write markdown here")
    _add_workload_arguments(report)
    _add_crypto_arguments(report)
    _add_telemetry_arguments(report)
    report.set_defaults(handler=_command_report)

    workload = commands.add_parser(
        "workload", help="generate a synthetic workload as CSV files"
    )
    workload.add_argument("out1", help="output CSV for the first relation")
    workload.add_argument("out2", help="output CSV for the second relation")
    _add_workload_arguments(workload)
    workload.set_defaults(handler=_command_workload)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Install the bigint backend first: engine construction, key
    # generation, and telemetry all observe it.  An explicit request for
    # an unavailable backend (gmpy2 without the module) fails fast here.
    backend_spec = getattr(args, "crypto_backend", None)
    previous_backend = None
    if backend_spec is not None:
        try:
            previous_backend = set_backend(backend_spec)
        except ParameterError as exc:
            raise SystemExit(str(exc))
    try:
        with _telemetry_session(args):
            # Name the active backend in the run's metric exposition
            # (no-op when no registry is installed).
            record_backend_info()
            # Install the crypto engine for subcommands exposing the
            # tuning knobs (serve/workload have no crypto arguments).
            if getattr(args, "workers", None) is not None or getattr(
                args, "batch_threshold", None
            ) is not None:
                engine = CryptoEngine(
                    workers=args.workers, threshold=args.batch_threshold
                )
                previous = set_engine(engine)
                try:
                    return args.handler(args)
                finally:
                    engine.close()
                    set_engine(previous)
            return args.handler(args)
    finally:
        if backend_spec is not None:
            set_backend(previous_backend)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
