"""Lightweight instrumentation of cryptographic primitive usage.

The paper's Table 2 lists which cryptographic primitives each protocol
applies (hash functions, commutative encryption, homomorphic encryption,
random numbers).  To *reproduce* that table from running code rather than
restate it, every primitive in :mod:`repro.crypto` reports each invocation
through :func:`record`.  Analyses install a :class:`PrimitiveCounter`
around a protocol run and read back exact operation counts.

Counting is opt-in and costs one dictionary lookup per primitive call when
no counter is installed.

This module is now a thin compatibility shim over the unified telemetry
layer: every recorded operation is *also* forwarded into the installed
:class:`repro.telemetry.metrics.MetricsRegistry` (as the
``repro_crypto_primitive_ops_total`` counter family), so Prometheus
expositions and JSON snapshots carry exactly the totals the legacy
counters observe.  The counter stack itself is unchanged — analyses and
tests that consume :class:`PrimitiveCounter` keep working verbatim.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry import metrics as _metrics

_local = threading.local()


def _stack() -> list["PrimitiveCounter"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class PrimitiveCounter:
    """Collects per-operation invocation counts of crypto primitives.

    Operation names are dotted strings such as ``"hash.ideal"``,
    ``"commutative.encrypt"``, ``"paillier.encrypt"`` or ``"random.key"``.
    :attr:`counts` maps each name to its invocation count;
    :meth:`families` aggregates by the prefix before the first dot, which
    is the granularity of the paper's Table 2.
    """

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def record(self, operation: str, amount: int = 1) -> None:
        self.counts[operation] += amount

    def families(self) -> dict[str, int]:
        """Aggregate counts by primitive family (prefix before '.')."""
        totals: Counter[str] = Counter()
        for operation, count in self.counts.items():
            family = operation.split(".", 1)[0]
            totals[family] += count
        return dict(totals)

    def total(self, prefix: str = "") -> int:
        """Total invocations of operations starting with ``prefix``."""
        return sum(
            count for op, count in self.counts.items() if op.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrimitiveCounter({dict(self.counts)!r})"


def record(operation: str, amount: int = 1) -> None:
    """Report ``amount`` invocations of ``operation`` to active counters
    and to the installed metrics registry (if any)."""
    for counter in _stack():
        counter.record(operation, amount)
    registry = _metrics.get_registry()
    if registry is not None:
        registry.record_primitive(operation, amount)


@contextmanager
def count_primitives() -> Iterator[PrimitiveCounter]:
    """Context manager installing a fresh :class:`PrimitiveCounter`.

    Counters nest: every counter on the stack sees every recorded
    operation, so an outer audit still observes operations recorded while
    an inner one is active.
    """
    counter = PrimitiveCounter()
    stack = _stack()
    stack.append(counter)
    try:
        yield counter
    finally:
        stack.remove(counter)
