"""Authenticated symmetric encryption: ChaCha20 + HMAC-SHA256.

The hybrid scheme of the paper (Section 2) encrypts bulk data under a
fresh *session key*.  We instantiate the data-encapsulation mechanism with
the ChaCha20 stream cipher (RFC 7539 block function, implemented from
scratch) in an encrypt-then-MAC composition with HMAC-SHA256.  The result
is IND-CCA-style authenticated encryption: any bit flip in the ciphertext
is detected before decryption output is released.

Key layout: a 32-byte master session key is expanded (HKDF-style, with
distinct labels) into a 32-byte ChaCha20 key and a 32-byte MAC key, so the
two primitives never share key material while the wrapped key stays small
enough for RSA-OAEP key encapsulation at 1024-bit moduli.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import struct

from repro.crypto import instrumentation
from repro.errors import DecryptionError, IntegrityError, ParameterError

KEY_BYTES = 32  #: master session-key size
CIPHER_KEY_BYTES = 32
MAC_KEY_BYTES = 32
NONCE_BYTES = 12
TAG_BYTES = 32

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One ChaCha20 block (RFC 7539 section 2.3): 64 keystream bytes."""
    if len(key) != CIPHER_KEY_BYTES:
        raise ParameterError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_BYTES:
        raise ParameterError("ChaCha20 nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants)
    state.extend(struct.unpack("<8L", key))
    state.append(counter & _MASK32)
    state.extend(struct.unpack("<3L", nonce))

    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypt == decrypt)."""
    out = bytearray(len(data))
    for block_index in range(0, len(data), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = data[block_index:block_index + 64]
        out[block_index:block_index + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, keystream)
        )
    return bytes(out)


def generate_key() -> bytes:
    """Fresh 32-byte master session key from the system CSPRNG."""
    instrumentation.record("random.session_key")
    return secrets.token_bytes(KEY_BYTES)


def _split_key(key: bytes) -> tuple[bytes, bytes]:
    """Derive independent cipher and MAC subkeys from the master key."""
    if len(key) != KEY_BYTES:
        raise ParameterError(f"session key must be {KEY_BYTES} bytes")
    cipher_key = hmac.new(key, b"repro/dem/cipher", hashlib.sha256).digest()
    mac_key = hmac.new(key, b"repro/dem/mac", hashlib.sha256).digest()
    return cipher_key, mac_key


def encrypt(key: bytes, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Authenticated encryption; output is ``nonce || ciphertext || tag``.

    ``associated_data`` is authenticated but not encrypted (used by the
    protocols to bind ciphertexts to message headers).
    """
    cipher_key, mac_key = _split_key(key)
    instrumentation.record("symmetric.encrypt")
    nonce = secrets.token_bytes(NONCE_BYTES)
    body = chacha20_xor(cipher_key, nonce, plaintext)
    tag = _mac(mac_key, nonce, body, associated_data)
    return nonce + body + tag


def decrypt(key: bytes, ciphertext: bytes, associated_data: bytes = b"") -> bytes:
    """Inverse of :func:`encrypt`; raises :class:`IntegrityError` on tamper."""
    cipher_key, mac_key = _split_key(key)
    instrumentation.record("symmetric.decrypt")
    if len(ciphertext) < NONCE_BYTES + TAG_BYTES:
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_BYTES]
    body = ciphertext[NONCE_BYTES:-TAG_BYTES]
    tag = ciphertext[-TAG_BYTES:]
    expected = _mac(mac_key, nonce, body, associated_data)
    if not hmac.compare_digest(tag, expected):
        raise IntegrityError("MAC verification failed")
    return chacha20_xor(cipher_key, nonce, body)


def _mac(mac_key: bytes, nonce: bytes, body: bytes, associated_data: bytes) -> bytes:
    mac = hmac.new(mac_key, digestmod=hashlib.sha256)
    mac.update(len(associated_data).to_bytes(8, "big"))
    mac.update(associated_data)
    mac.update(nonce)
    mac.update(body)
    return mac.digest()


def ciphertext_overhead() -> int:
    """Bytes added to a plaintext by :func:`encrypt` (nonce + tag)."""
    return NONCE_BYTES + TAG_BYTES
