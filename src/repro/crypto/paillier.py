"""The Paillier cryptosystem (additively homomorphic), from scratch.

The private-matching protocol of Section 5 needs a semantically secure
public-key scheme ``E`` with

* ``E(a) (+) E(b)  ->  E(a + b)``       (homomorphic addition), and
* ``gamma, E(a)    ->  E(gamma * a)``   (scalar multiplication),

which the paper instantiates with Paillier [20].  We implement the
textbook scheme with ``g = n + 1`` (so that ``g^m = 1 + m*n mod n^2``,
avoiding one exponentiation) and decryption via the Carmichael function.

Plaintext space is ``Z_n``; homomorphic operations reduce modulo ``n``.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from repro.crypto import instrumentation
from repro.crypto.numtheory import generate_prime, lcm, modinv
from repro.errors import DecryptionError, EncryptionError, KeyError_, ParameterError


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus ``n`` (``g`` is fixed to ``n + 1``)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def max_plaintext(self) -> int:
        """Largest encodable plaintext (exclusive bound is ``n``)."""
        return self.n - 1


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key: ``lambda = lcm(p-1, q-1)`` and ``mu = lambda^-1 mod n``."""

    public_key: PaillierPublicKey
    lam: int
    mu: int


@dataclass(frozen=True)
class PaillierCiphertext:
    """A ciphertext bound to its public key.

    Binding the key allows the homomorphic operators to check that both
    operands live under the same modulus, which catches a whole class of
    protocol bugs (mixing ciphertexts of different clients).
    """

    value: int
    public_key: PaillierPublicKey

    def __add__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        return add(self, other)

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        return scalar_multiply(self, scalar)

    __rmul__ = __mul__


def generate_keypair(bits: int = 2048) -> PaillierPrivateKey:
    """Generate a Paillier key pair with an ``bits``-bit modulus ``n``."""
    if bits < 64:
        raise ParameterError("Paillier modulus below 64 bits is not supported")
    instrumentation.record("paillier.keygen")
    while True:
        p = generate_prime(bits // 2)
        q = generate_prime(bits - bits // 2)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        # Standard requirement gcd(n, (p-1)(q-1)) = 1 holds for distinct
        # primes of equal size, but check explicitly.
        if math.gcd(n, (p - 1) * (q - 1)) != 1:
            continue
        lam = lcm(p - 1, q - 1)
        public = PaillierPublicKey(n)
        mu = modinv(_big_l(pow(public.n + 1, lam, public.n_squared), n), n)
        return PaillierPrivateKey(public_key=public, lam=lam, mu=mu)


def _big_l(u: int, n: int) -> int:
    """The Paillier ``L`` function: ``L(u) = (u - 1) / n``."""
    return (u - 1) // n


def encrypt(
    public_key: PaillierPublicKey, plaintext: int, randomness: int | None = None
) -> PaillierCiphertext:
    """Encrypt ``plaintext`` in ``Z_n``; fresh randomness unless given.

    ``c = (1 + m*n) * r^n  mod n^2`` with ``r`` uniform in ``Z_n*``.
    """
    n = public_key.n
    if not 0 <= plaintext < n:
        raise EncryptionError(
            f"plaintext {plaintext} outside message space [0, {n})"
        )
    instrumentation.record("paillier.encrypt")
    n_sq = public_key.n_squared
    if randomness is None:
        instrumentation.record("random.paillier_nonce")
        randomness = _random_unit(n)
    elif not 0 < randomness < n or math.gcd(randomness, n) != 1:
        raise EncryptionError("randomness must be a unit in Z_n")
    value = (1 + plaintext * n) % n_sq * pow(randomness, n, n_sq) % n_sq
    return PaillierCiphertext(value, public_key)


def decrypt(private_key: PaillierPrivateKey, ciphertext: PaillierCiphertext) -> int:
    """Decrypt to the plaintext in ``[0, n)``."""
    public = private_key.public_key
    if ciphertext.public_key != public:
        raise KeyError_("ciphertext was produced under a different key")
    n = public.n
    value = ciphertext.value
    if not 0 < value < public.n_squared or math.gcd(value, n) != 1:
        raise DecryptionError("invalid Paillier ciphertext")
    instrumentation.record("paillier.decrypt")
    u = pow(value, private_key.lam, public.n_squared)
    return _big_l(u, n) * private_key.mu % n


def add(a: PaillierCiphertext, b: PaillierCiphertext) -> PaillierCiphertext:
    """Homomorphic addition: ``E(x) + E(y) = E(x + y mod n)``."""
    if a.public_key != b.public_key:
        raise KeyError_("cannot add ciphertexts under different keys")
    instrumentation.record("paillier.add")
    n_sq = a.public_key.n_squared
    return PaillierCiphertext(a.value * b.value % n_sq, a.public_key)


def add_plain(a: PaillierCiphertext, plaintext: int) -> PaillierCiphertext:
    """Homomorphic plaintext addition: ``E(x) + y = E(x + y mod n)``.

    Cheaper than ``add(a, encrypt(pk, y))`` and — crucially for the
    private-matching payload step — deterministic given ``a``.
    """
    n = a.public_key.n
    n_sq = a.public_key.n_squared
    instrumentation.record("paillier.add_plain")
    return PaillierCiphertext(
        a.value * (1 + plaintext % n * n) % n_sq, a.public_key
    )


def scalar_multiply(a: PaillierCiphertext, scalar: int) -> PaillierCiphertext:
    """Homomorphic scalar multiplication: ``gamma * E(x) = E(gamma * x)``."""
    instrumentation.record("paillier.scalar_multiply")
    n = a.public_key.n
    n_sq = a.public_key.n_squared
    return PaillierCiphertext(pow(a.value, scalar % n, n_sq), a.public_key)


def negate(a: PaillierCiphertext) -> PaillierCiphertext:
    """Homomorphic negation: ``-E(x) = E(n - x)``."""
    return scalar_multiply(a, a.public_key.n - 1)


def rerandomize(a: PaillierCiphertext) -> PaillierCiphertext:
    """Fresh randomness on an existing ciphertext (same plaintext).

    ``c * r^n`` for fresh ``r`` makes the output statistically unlinkable
    to the input — the datasources use this so the mediator cannot match
    forwarded ciphertexts by value.
    """
    instrumentation.record("paillier.rerandomize")
    instrumentation.record("random.paillier_nonce")
    n = a.public_key.n
    n_sq = a.public_key.n_squared
    r = _random_unit(n)
    return PaillierCiphertext(a.value * pow(r, n, n_sq) % n_sq, a.public_key)


def encrypt_zero(public_key: PaillierPublicKey) -> PaillierCiphertext:
    """A fresh encryption of zero (useful as a homomorphic accumulator)."""
    return encrypt(public_key, 0)


def _random_unit(n: int) -> int:
    while True:
        r = 1 + secrets.randbelow(n - 1)
        if math.gcd(r, n) == 1:
            return r
