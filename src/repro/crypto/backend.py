"""Pluggable bigint backends for the crypto substrate.

Every protocol of the paper bottoms out in 2048-4096-bit modular
exponentiation — SRA double encryption, Paillier coefficient encryption
and oblivious polynomial evaluation, RSA key wrapping — and the pure
Python ``pow()`` path is the throughput ceiling named in ROADMAP.md.
This module puts that arithmetic behind a small backend interface:

* :class:`PythonBackend` — the reference implementation on the standard
  library, always available.  Everything in :mod:`repro.crypto` was
  originally written against exactly these semantics, so this backend
  *defines* correct behaviour.
* :class:`NativeBackend` — GMP-backed arithmetic via `gmpy2
  <https://gmpy2.readthedocs.io>`_ (``powmod``, ``invert``, ``jacobi``,
  ``is_prime``, ``mpz``), typically 5-15x faster at production key
  sizes.  Only constructible when gmpy2 imports; the module never
  requires it.

Both backends return plain ``int`` results, so ciphertexts, transcripts,
and serialized messages are **bit-identical** regardless of the backend
in use — the CI divergence gate runs every protocol under both backends
and compares outputs byte for byte.

Selection is a runtime decision, mirroring the crypto engine's
installation model:

* ``REPRO_CRYPTO_BACKEND`` environment variable (``auto`` | ``python``
  | ``gmpy2``; default ``auto`` = native when importable),
* ``--crypto-backend`` on the protocol-running CLI commands,
* :func:`set_backend` / :func:`use_backend` for library callers and
  tests.

Requesting ``gmpy2`` explicitly when it is not importable raises
:class:`~repro.errors.ParameterError`; ``auto`` silently falls back to
the Python backend.  The active backend is observable: crypto batch
spans carry a ``backend`` attribute, the ``repro_crypto_backend_info``
gauge names it in metric expositions (see
:func:`record_backend_info`), and ``run_join_query`` artifacts,
loadgen reports, and bench JSON all self-describe it.
"""

from __future__ import annotations

import math
import os
import secrets
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.errors import ParameterError

try:  # The native backend is strictly optional.
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - exercised on gmpy2-free hosts
    _gmpy2 = None

#: Environment variable selecting the process-default backend.
BACKEND_ENV = "REPRO_CRYPTO_BACKEND"

#: Valid selector spellings (CLI choices and env values).
BACKEND_CHOICES = ("auto", "python", "gmpy2")

#: Gauge family naming the active backend in metric expositions.
BACKEND_INFO_METRIC = "repro_crypto_backend_info"


class CryptoBackend:
    """Interface every bigint backend implements.

    All operands and results are plain Python ``int`` — backends may
    use their own representation internally (:meth:`wrap`) but must
    never leak it, so values entering transcripts serialize identically
    under every backend.
    """

    name: str = "abstract"

    # -- scalar operations --------------------------------------------------

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        raise NotImplementedError

    def invert(self, a: int, m: int) -> int:
        """``a^-1 mod m``; raises :class:`ParameterError` if not coprime."""
        raise NotImplementedError

    def gcd(self, a: int, b: int) -> int:
        raise NotImplementedError

    def jacobi(self, a: int, n: int) -> int:
        """Jacobi symbol for odd positive ``n`` (validated by callers)."""
        raise NotImplementedError

    def is_probable_prime(self, n: int, rounds: int) -> bool:
        raise NotImplementedError

    # -- batched operations -------------------------------------------------

    def powmod_base_list(
        self, bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """Shared-exponent batch: ``[b^exponent mod modulus for b]``.

        The shape of SRA commutative encryption (one key exponent over
        many tags) and the Paillier nonce term ``r^n`` (one public
        exponent over many nonces).  Backends hoist the loop-invariant
        operands out of the per-item path.
        """
        raise NotImplementedError

    def powmod_exp_list(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        """Shared-base batch: ``[base^e mod modulus for e]``.

        The shape of ElGamal encryption (``g^r``, ``h^r``) and of any
        fixed-generator workload; pairs with the engine's fixed-window
        precomputation tables.
        """
        raise NotImplementedError

    # -- representation -----------------------------------------------------

    def wrap(self, value: int) -> Any:
        """Backend-internal number type (identity for pure Python)."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PythonBackend(CryptoBackend):
    """The always-available standard-library implementation.

    Holds the reference algorithms (Miller-Rabin, the iterative Jacobi
    loop) the native backend is property-tested against.
    """

    name = "python"

    #: Small primes for cheap trial division ahead of Miller-Rabin.
    _SMALL_PRIMES: tuple[int, ...] = (
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
        67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
        139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
        211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
        281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    )

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def invert(self, a: int, m: int) -> int:
        try:
            return pow(a, -1, m)
        except ValueError as exc:
            raise ParameterError(f"{a} is not invertible modulo {m}") from exc

    def gcd(self, a: int, b: int) -> int:
        return math.gcd(a, b)

    def jacobi(self, a: int, n: int) -> int:
        a %= n
        result = 1
        while a:
            while a % 2 == 0:
                a //= 2
                if n % 8 in (3, 5):
                    result = -result
            a, n = n, a
            if a % 4 == 3 and n % 4 == 3:
                result = -result
            a %= n
        return result if n == 1 else 0

    def is_probable_prime(self, n: int, rounds: int) -> bool:
        if n < 2:
            return False
        for p in self._SMALL_PRIMES:
            if n % p == 0:
                return n == p
        if n < self._SMALL_PRIMES[-1] ** 2:
            return True
        d = n - 1
        r = 0
        while d % 2 == 0:
            d //= 2
            r += 1
        for _ in range(rounds):
            a = 2 + secrets.randbelow(n - 3)
            x = pow(a, d, n)
            if x in (1, n - 1):
                continue
            for _ in range(r - 1):
                x = x * x % n
                if x == n - 1:
                    break
            else:
                return False
        return True

    def powmod_base_list(
        self, bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        return [pow(base, exponent, modulus) for base in bases]

    def powmod_exp_list(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        return [pow(base, exponent, modulus) for exponent in exponents]


class NativeBackend(CryptoBackend):
    """GMP-backed arithmetic through gmpy2.

    Every result is converted back to ``int`` at the boundary, so the
    backend is invisible to serialization and transcripts.  Batched
    entry points pre-cast the loop-invariant operands to ``mpz`` once
    (and use gmpy2's own list forms when the installed version has
    them), which is where shared-exponent workloads gain beyond the
    scalar ``powmod`` win.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        if _gmpy2 is None:
            raise ParameterError(
                "the gmpy2 backend was requested but gmpy2 is not "
                "importable; install gmpy2 or select --crypto-backend "
                "python/auto"
            )
        self._g = _gmpy2
        # gmpy2 >= 2.2 ships C-level list forms; older versions fall
        # back to a Python loop over pre-cast mpz operands.
        self._base_list = getattr(_gmpy2, "powmod_base_list", None)
        self._exp_list = getattr(_gmpy2, "powmod_exp_list", None)

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._g.powmod(base, exponent, modulus))

    def invert(self, a: int, m: int) -> int:
        try:
            inverse = self._g.invert(a, m)
        except ZeroDivisionError as exc:
            raise ParameterError(f"{a} is not invertible modulo {m}") from exc
        # Pre-2.2 gmpy2 returns 0 instead of raising for non-units.
        if inverse == 0 and m != 1:
            raise ParameterError(f"{a} is not invertible modulo {m}")
        return int(inverse)

    def gcd(self, a: int, b: int) -> int:
        return int(self._g.gcd(a, b))

    def jacobi(self, a: int, n: int) -> int:
        return int(self._g.jacobi(a, n))

    def is_probable_prime(self, n: int, rounds: int) -> bool:
        if n < 2:
            return False
        # BPSW + configurable extra Miller-Rabin rounds; agrees with the
        # reference Miller-Rabin with overwhelming probability (no BPSW
        # pseudoprime is known).
        return bool(self._g.is_prime(self._g.mpz(n), max(rounds, 25)))

    def powmod_base_list(
        self, bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        if self._base_list is not None:
            return [int(v) for v in self._base_list(list(bases), exponent, modulus)]
        powmod, e, m = self._g.powmod, self._g.mpz(exponent), self._g.mpz(modulus)
        return [int(powmod(base, e, m)) for base in bases]

    def powmod_exp_list(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        if self._exp_list is not None:
            return [int(v) for v in self._exp_list(base, list(exponents), modulus)]
        powmod, b, m = self._g.powmod, self._g.mpz(base), self._g.mpz(modulus)
        return [int(powmod(b, exponent, m)) for exponent in exponents]

    def wrap(self, value: int) -> Any:
        return self._g.mpz(value)


# ---------------------------------------------------------------------------
# Selection and process-wide installation.
# ---------------------------------------------------------------------------


def native_available() -> bool:
    """True when the gmpy2 backend can be constructed on this host."""
    return _gmpy2 is not None


def available_backends() -> tuple[str, ...]:
    """Names of the backends constructible on this host."""
    return ("python", "gmpy2") if native_available() else ("python",)


def resolve_backend(spec: "str | CryptoBackend | None") -> CryptoBackend:
    """Selector -> backend instance.

    ``None`` reads ``REPRO_CRYPTO_BACKEND`` (default ``auto``).
    ``auto`` prefers the native backend and silently falls back to pure
    Python; naming ``gmpy2`` explicitly on a host without it is an
    error, so a benchmark or CI job that *means* native can never
    quietly measure the fallback.
    """
    if isinstance(spec, CryptoBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV, "").strip() or "auto"
    spec = spec.lower()
    if spec == "auto":
        return NativeBackend() if native_available() else PythonBackend()
    if spec == "python":
        return PythonBackend()
    if spec == "gmpy2":
        return NativeBackend()
    raise ParameterError(
        f"unknown crypto backend {spec!r}; choose from {BACKEND_CHOICES}"
    )


_installed_backend: CryptoBackend | None = None


def active_backend() -> CryptoBackend:
    """The installed backend, creating the environment default lazily."""
    global _installed_backend
    if _installed_backend is None:
        _installed_backend = resolve_backend(None)
    return _installed_backend


def set_backend(backend: "CryptoBackend | str | None") -> CryptoBackend | None:
    """Install a backend process-wide; returns the previous one.

    Accepts an instance, a selector string, or ``None`` (drop back to
    lazy environment-based resolution).
    """
    global _installed_backend
    previous = _installed_backend
    _installed_backend = (
        None if backend is None else resolve_backend(backend)
    )
    return previous


@contextmanager
def use_backend(backend: "CryptoBackend | str") -> Iterator[CryptoBackend]:
    """Temporarily install a backend (tests and benchmarks)."""
    resolved = resolve_backend(backend)
    global _installed_backend
    previous, _installed_backend = _installed_backend, resolved
    try:
        yield resolved
    finally:
        _installed_backend = previous


def record_backend_info() -> None:
    """Publish the active backend into the installed metrics registry.

    Emits the ``repro_crypto_backend_info`` gauge (value 1, labelled
    with the backend name) — the Prometheus info-metric idiom — so any
    exposition or JSON snapshot names the arithmetic that produced its
    numbers.  No-op without an installed registry.
    """
    from repro.telemetry import metrics as _metrics

    registry = _metrics.get_registry()
    if registry is not None:
        registry.gauge(
            BACKEND_INFO_METRIC,
            {"backend": active_backend().name},
            help_text="Active bigint backend (1 = in use)",
        ).set(1)
