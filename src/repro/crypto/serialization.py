"""JSON serialization of key material and credentials.

Long-lived federations need to persist the preparatory phase: client key
pairs, credentials, and the CA's verification key.  This module defines
a compact JSON representation for each — integers as decimal strings
(JSON numbers lose precision beyond 2^53), bytes as hex — with strict
type tags so a blob cannot be deserialized as the wrong kind of key.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto import paillier, rsa
from repro.errors import EncodingError
from repro.mediation.credentials import Credential


def _require_kind(payload: dict[str, Any], kind: str) -> None:
    if payload.get("kind") != kind:
        raise EncodingError(
            f"expected serialized {kind!r}, found {payload.get('kind')!r}"
        )


# -- RSA ---------------------------------------------------------------------

def rsa_public_to_dict(key: rsa.RSAPublicKey) -> dict[str, Any]:
    return {"kind": "rsa-public", "n": str(key.n), "e": str(key.e)}


def rsa_public_from_dict(payload: dict[str, Any]) -> rsa.RSAPublicKey:
    _require_kind(payload, "rsa-public")
    return rsa.RSAPublicKey(n=int(payload["n"]), e=int(payload["e"]))


def rsa_private_to_dict(key: rsa.RSAPrivateKey) -> dict[str, Any]:
    return {
        "kind": "rsa-private",
        "n": str(key.n),
        "e": str(key.e),
        "d": str(key.d),
        "p": str(key.p),
        "q": str(key.q),
    }


def rsa_private_from_dict(payload: dict[str, Any]) -> rsa.RSAPrivateKey:
    _require_kind(payload, "rsa-private")
    key = rsa.RSAPrivateKey(
        n=int(payload["n"]),
        e=int(payload["e"]),
        d=int(payload["d"]),
        p=int(payload["p"]),
        q=int(payload["q"]),
    )
    if key.p * key.q != key.n:
        raise EncodingError("inconsistent RSA private key material")
    return key


# -- Paillier -----------------------------------------------------------------

def paillier_public_to_dict(key: paillier.PaillierPublicKey) -> dict[str, Any]:
    return {"kind": "paillier-public", "n": str(key.n)}


def paillier_public_from_dict(
    payload: dict[str, Any]
) -> paillier.PaillierPublicKey:
    _require_kind(payload, "paillier-public")
    return paillier.PaillierPublicKey(n=int(payload["n"]))


def paillier_private_to_dict(
    key: paillier.PaillierPrivateKey,
) -> dict[str, Any]:
    return {
        "kind": "paillier-private",
        "n": str(key.public_key.n),
        "lam": str(key.lam),
        "mu": str(key.mu),
    }


def paillier_private_from_dict(
    payload: dict[str, Any]
) -> paillier.PaillierPrivateKey:
    _require_kind(payload, "paillier-private")
    public = paillier.PaillierPublicKey(n=int(payload["n"]))
    return paillier.PaillierPrivateKey(
        public_key=public, lam=int(payload["lam"]), mu=int(payload["mu"])
    )


# -- Credentials ----------------------------------------------------------------

def credential_to_dict(credential: Credential) -> dict[str, Any]:
    return {
        "kind": "credential",
        "issuer": credential.issuer,
        "properties": sorted(
            [name, value] for name, value in credential.properties
        ),
        "public_key": rsa_public_to_dict(credential.public_key),
        "signature": credential.signature.hex(),
    }


def credential_from_dict(payload: dict[str, Any]) -> Credential:
    _require_kind(payload, "credential")
    return Credential(
        properties=frozenset(
            (name, value) for name, value in payload["properties"]
        ),
        public_key=rsa_public_from_dict(payload["public_key"]),
        issuer=payload["issuer"],
        signature=bytes.fromhex(payload["signature"]),
    )


# -- JSON convenience -------------------------------------------------------------

def dumps(payload: dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EncodingError(f"invalid key JSON: {exc}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise EncodingError("serialized key material must carry a 'kind'")
    return payload
