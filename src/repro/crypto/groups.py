"""Precomputed cryptographic domain parameters.

Safe-prime generation is the slowest step of setting up the commutative
cipher and ElGamal, so the library ships verified safe primes at several
sizes.  All values were produced by :func:`repro.crypto.numtheory.
generate_safe_prime` and are re-verified (probabilistically) by the test
suite; :func:`safe_prime` falls back to fresh generation for sizes not in
the table.

Security guidance: 64- and 128-bit groups exist purely to keep unit tests
fast; protocol deployments should use >= 1024 bits (2048 recommended).
"""

from __future__ import annotations

from repro.crypto.commutative import CommutativeGroup
from repro.crypto.numtheory import generate_safe_prime
from repro.errors import ParameterError

#: bit size -> safe prime p = 2q + 1 (q prime).
KNOWN_SAFE_PRIMES: dict[int, int] = {
    64: 18261568781297835779,
    128: 278997584469130276002310604683966369823,
    256: 79653520569013649381516987830908260182753756239914302901834367082522885701383,
    512: 12218817247742266966139882544877065215956409069603028820769513094000471168947573498255370604296927209866216643978782386087241792496350736038763382160173599,
    768: 1026793900340461341091891706558543549917432161008223175762444789858317767933115653979776317403268228036468035861346982288750104219566654655476024593124128314539718345976286615498891904562290573835483767753321214972843717113147595883,
    1024: 141288358136600827276382842896037549513887910577760616190496897877629038938783558536656842307746996530762160900583125332410730656189736994063782034341918061044960661090265595925298105564831336159817686127407335399766477562303334060675589878956751381764645862078843135350092257640944954227702630866843376683519,
}

#: Default group size for tests (fast) and protocols (overridable).
TEST_GROUP_BITS = 128
DEFAULT_GROUP_BITS = 512


def safe_prime(bits: int) -> int:
    """A safe prime of the requested size (precomputed when available)."""
    if bits in KNOWN_SAFE_PRIMES:
        return KNOWN_SAFE_PRIMES[bits]
    if bits < 16:
        raise ParameterError(f"no safe prime available at {bits} bits")
    return generate_safe_prime(bits)


def commutative_group(bits: int = DEFAULT_GROUP_BITS) -> CommutativeGroup:
    """A :class:`CommutativeGroup` over a safe prime of ``bits`` bits."""
    return CommutativeGroup(safe_prime(bits))
