"""RSA with OAEP encryption and PSS signatures, from scratch.

Used as a substrate in two places:

* the certification authority signs credentials (RSA-PSS),
* the hybrid scheme wraps session keys under the client's public
  encryption keys (RSA-OAEP), matching the paper's "public keys in the
  credentials can be used ... to send information securely via the
  mediator to the client".

Implementation follows PKCS#1 v2.2 (RFC 8017): MGF1 with SHA-256, OAEP
with a zero label, PSS with a salt as long as the digest.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto import instrumentation
from repro.crypto.numtheory import (
    bytes_to_int,
    generate_prime,
    int_to_bytes,
    modinv,
    powmod,
)
from repro.errors import DecryptionError, EncryptionError, ParameterError

_HASH = hashlib.sha256
_HASH_LEN = 32


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def max_message_bytes(self) -> int:
        """Longest plaintext OAEP can wrap under this key."""
        return self.modulus_bytes - 2 * _HASH_LEN - 2


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key; keeps the factorisation for CRT acceleration."""

    n: int
    e: int
    d: int
    p: int
    q: int

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(self.n, self.e)


@lru_cache(maxsize=128)
def _crt_exponents(d: int, p: int, q: int) -> tuple[int, int, int]:
    """``(d mod p-1, d mod q-1, q^-1 mod p)`` for Garner recombination."""
    return d % (p - 1), d % (q - 1), modinv(q, p)


def private_pow(private_key: RSAPrivateKey, value: int, use_crt: bool = True) -> int:
    """The private-key operation ``value^d mod n``.

    By default runs in CRT form — two half-size exponentiations mod
    ``p`` and ``q`` plus a Garner step, a 3-4x speedup over the direct
    route.  ``use_crt=False`` forces the direct exponentiation (the
    pre-engine behaviour, kept for the legacy benchmark baseline and as
    an equivalence reference in tests).
    """
    if not use_crt:
        return powmod(value, private_key.d, private_key.n)
    d_p, d_q, q_inv = _crt_exponents(private_key.d, private_key.p, private_key.q)
    m_p = powmod(value % private_key.p, d_p, private_key.p)
    m_q = powmod(value % private_key.q, d_q, private_key.q)
    return m_q + (m_p - m_q) * q_inv % private_key.p * private_key.q


def generate_keypair(bits: int = 2048, e: int = 65537) -> RSAPrivateKey:
    """Generate an RSA key pair with an ``bits``-bit modulus."""
    if bits < 512:
        raise ParameterError("RSA modulus below 512 bits is not supported")
    instrumentation.record("rsa.keygen")
    while True:
        p = generate_prime(bits // 2)
        q = generate_prime(bits - bits // 2)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = modinv(e, phi)
        return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)


def _mgf1(seed: bytes, length: int) -> bytes:
    output = b""
    counter = 0
    while len(output) < length:
        output += _HASH(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return output[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def oaep_encrypt(public_key: RSAPublicKey, message: bytes) -> bytes:
    """RSAES-OAEP encryption of ``message``; returns ``k``-byte ciphertext."""
    instrumentation.record("rsa.encrypt")
    k = public_key.modulus_bytes
    if len(message) > public_key.max_message_bytes():
        raise EncryptionError(
            f"message of {len(message)} bytes exceeds OAEP capacity "
            f"of {public_key.max_message_bytes()} bytes"
        )
    label_hash = _HASH(b"").digest()
    padding = b"\x00" * (k - len(message) - 2 * _HASH_LEN - 2)
    data_block = label_hash + padding + b"\x01" + message
    seed = secrets.token_bytes(_HASH_LEN)
    masked_db = _xor(data_block, _mgf1(seed, k - _HASH_LEN - 1))
    masked_seed = _xor(seed, _mgf1(masked_db, _HASH_LEN))
    encoded = b"\x00" + masked_seed + masked_db
    return int_to_bytes(powmod(bytes_to_int(encoded), public_key.e, public_key.n), k)


def oaep_decrypt(
    private_key: RSAPrivateKey, ciphertext: bytes, use_crt: bool = True
) -> bytes:
    """RSAES-OAEP decryption; raises :class:`DecryptionError` on failure."""
    instrumentation.record("rsa.decrypt")
    k = (private_key.n.bit_length() + 7) // 8
    if len(ciphertext) != k:
        raise DecryptionError("ciphertext has wrong length")
    value = bytes_to_int(ciphertext)
    if value >= private_key.n:
        raise DecryptionError("ciphertext out of range")
    encoded = int_to_bytes(private_pow(private_key, value, use_crt), k)
    first_byte, masked_seed = encoded[0], encoded[1:1 + _HASH_LEN]
    masked_db = encoded[1 + _HASH_LEN:]
    seed = _xor(masked_seed, _mgf1(masked_db, _HASH_LEN))
    data_block = _xor(masked_db, _mgf1(seed, k - _HASH_LEN - 1))
    label_hash = data_block[:_HASH_LEN]
    # Constant-time-ish validity accumulation, then a single failure path.
    valid = first_byte == 0
    valid &= hmac.compare_digest(label_hash, _HASH(b"").digest())
    rest = data_block[_HASH_LEN:]
    separator = rest.find(b"\x01")
    valid &= separator >= 0 and not any(rest[:max(separator, 0)])
    if not valid:
        raise DecryptionError("OAEP decoding failed")
    return rest[separator + 1:]


def pss_sign(
    private_key: RSAPrivateKey, message: bytes, use_crt: bool = True
) -> bytes:
    """RSASSA-PSS signature over ``message`` with SHA-256."""
    instrumentation.record("rsa.sign")
    k = (private_key.n.bit_length() + 7) // 8
    em_bits = private_key.n.bit_length() - 1
    em_len = (em_bits + 7) // 8
    message_hash = _HASH(message).digest()
    salt = secrets.token_bytes(_HASH_LEN)
    m_prime = b"\x00" * 8 + message_hash + salt
    h = _HASH(m_prime).digest()
    padding = b"\x00" * (em_len - 2 * _HASH_LEN - 2)
    data_block = padding + b"\x01" + salt
    masked_db = _xor(data_block, _mgf1(h, em_len - _HASH_LEN - 1))
    # Clear the leftmost bits so the encoding fits in em_bits bits.
    clear_bits = 8 * em_len - em_bits
    masked_db = bytes([masked_db[0] & (0xFF >> clear_bits)]) + masked_db[1:]
    encoded = masked_db + h + b"\xbc"
    return int_to_bytes(private_pow(private_key, bytes_to_int(encoded), use_crt), k)


def pss_verify(public_key: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an RSASSA-PSS signature; returns a boolean, never raises."""
    instrumentation.record("rsa.verify")
    k = public_key.modulus_bytes
    if len(signature) != k:
        return False
    value = bytes_to_int(signature)
    if value >= public_key.n:
        return False
    em_bits = public_key.n.bit_length() - 1
    em_len = (em_bits + 7) // 8
    encoded = int_to_bytes(powmod(value, public_key.e, public_key.n), em_len)
    if encoded[-1] != 0xBC:
        return False
    masked_db = encoded[:em_len - _HASH_LEN - 1]
    h = encoded[em_len - _HASH_LEN - 1:-1]
    clear_bits = 8 * em_len - em_bits
    if masked_db[0] >> (8 - clear_bits) if clear_bits else 0:
        return False
    data_block = _xor(masked_db, _mgf1(h, em_len - _HASH_LEN - 1))
    data_block = bytes([data_block[0] & (0xFF >> clear_bits)]) + data_block[1:]
    separator = data_block.find(b"\x01")
    if separator < 0 or any(data_block[:separator]):
        return False
    salt = data_block[separator + 1:]
    if len(salt) != _HASH_LEN:
        return False
    message_hash = _HASH(message).digest()
    m_prime = b"\x00" * 8 + message_hash + salt
    return hmac.compare_digest(h, _HASH(m_prime).digest())
