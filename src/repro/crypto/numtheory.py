"""Number-theoretic building blocks.

Everything in this module is deterministic given its inputs, with the
exception of :func:`generate_prime` / :func:`generate_safe_prime`, which
draw candidates from the system CSPRNG.  These functions underpin every
cryptosystem in :mod:`repro.crypto`:

* Miller-Rabin probabilistic primality testing,
* prime and *safe prime* generation (p = 2q + 1 with q prime),
* modular inverses, CRT recombination, Jacobi symbols,
* Tonelli-Shanks square roots modulo a prime.

The arithmetic itself (modular exponentiation, inversion, Jacobi
symbols, primality) routes through the installed bigint backend
(:mod:`repro.crypto.backend`), so every caller of :func:`powmod`,
:func:`modinv`, :func:`jacobi`, or :func:`is_probable_prime` gains
native-speed GMP arithmetic when the ``gmpy2`` backend is active —
without changing results: backends are proven bit-identical.
"""

from __future__ import annotations

import math
import secrets

from repro.crypto import backend as _backend
from repro.errors import ParameterError

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
)

#: Default number of Miller-Rabin rounds; error probability <= 4^-40.
DEFAULT_MR_ROUNDS = 40


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` via the installed bigint backend.

    The single hot-path entry point for the whole crypto package —
    commutative, Paillier, RSA, and ElGamal all exponentiate through
    here, so selecting the gmpy2 backend accelerates every protocol at
    once.
    """
    return _backend.active_backend().powmod(base, exponent, modulus)


def is_probable_prime(n: int, rounds: int = DEFAULT_MR_ROUNDS) -> bool:
    """Return True if ``n`` is prime with overwhelming probability.

    The Python backend uses trial division by small primes followed by
    ``rounds`` iterations of Miller-Rabin with random bases (exact for
    ``n`` below the largest small prime squared); the native backend
    uses gmpy2's BPSW + Miller-Rabin test.
    """
    return _backend.active_backend().is_probable_prime(n, rounds)


def generate_prime(bits: int, rounds: int = DEFAULT_MR_ROUNDS) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The two top bits are forced to 1 so that products of two such primes
    have full length (needed by RSA and Paillier moduli).
    """
    if bits < 8:
        raise ParameterError(f"prime size too small: {bits} bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rounds):
            return candidate


def generate_safe_prime(bits: int, rounds: int = DEFAULT_MR_ROUNDS) -> int:
    """Generate a *safe prime* ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Safe primes are required by the SRA commutative cipher: the quadratic
    residues modulo a safe prime form a group of prime order ``q``, in
    which exponentiation keys are invertible whenever they are coprime
    to ``q``.  Generation is slow (two nested primality conditions), so
    tests and benchmarks normally use the precomputed parameters in
    :mod:`repro.crypto.groups`.
    """
    if bits < 8:
        raise ParameterError(f"safe prime size too small: {bits} bits")
    while True:
        q = secrets.randbits(bits - 1)
        q |= (1 << (bits - 2)) | 1
        # Cheap screen on q first; full confidence only once p also passes.
        if not is_probable_prime(q, 8):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rounds) and is_probable_prime(q, rounds):
            return p


def is_safe_prime(p: int, rounds: int = DEFAULT_MR_ROUNDS) -> bool:
    """Return True if ``p`` and ``(p - 1) / 2`` are both (probable) primes."""
    if p < 7 or p % 2 == 0:
        return False
    q, rem = divmod(p - 1, 2)
    if rem:
        return False
    return is_probable_prime(p, rounds) and is_probable_prime(q, rounds)


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` when ``gcd(a, m) != 1``.
    """
    return _backend.active_backend().invert(a, m)


def lcm(a: int, b: int) -> int:
    """Least common multiple (kept explicit for readability at call sites)."""
    return math.lcm(a, b)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x = r1 (mod m1), x = r2 (mod m2)`` for coprime moduli.

    Returns the unique solution in ``[0, m1 * m2)``.
    """
    g = math.gcd(m1, m2)
    if g != 1:
        raise ParameterError("CRT moduli must be coprime")
    n = m1 * m2
    return (r1 * m2 * modinv(m2, m1) + r2 * m1 * modinv(m1, m2)) % n


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a / n) for odd ``n > 0``; returns -1, 0, or 1."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol requires odd positive n")
    return _backend.active_backend().jacobi(a, n)


def is_quadratic_residue(a: int, p: int) -> bool:
    """True when ``a`` is a nonzero quadratic residue modulo prime ``p``."""
    a %= p
    if a == 0:
        return False
    return powmod(a, (p - 1) // 2, p) == 1


def sqrt_mod_prime(a: int, p: int) -> int:
    """Tonelli-Shanks: a square root of ``a`` modulo prime ``p``.

    Returns the root ``r`` with ``r**2 = a (mod p)``; the other root is
    ``p - r``.  Raises :class:`ParameterError` when ``a`` is a
    non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if not is_quadratic_residue(a, p):
        raise ParameterError(f"{a} is not a quadratic residue mod {p}")
    if p % 4 == 3:
        return powmod(a, (p + 1) // 4, p)

    # Write p - 1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while is_quadratic_residue(z, p):
        z += 1
    m, c, t, r = s, powmod(z, q, p), powmod(a, q, p), powmod(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) = 1.
        i, t2 = 0, t
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
        b = powmod(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Big-endian encoding of a non-negative integer.

    When ``length`` is None the minimal number of bytes is used (at least
    one, so that 0 encodes as ``b"\\x00"``).
    """
    if value < 0:
        raise ParameterError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def random_below(n: int) -> int:
    """Uniform random integer in ``[0, n)`` from the system CSPRNG."""
    if n <= 0:
        raise ParameterError("random_below requires a positive bound")
    return secrets.randbelow(n)


def random_in_range(low: int, high: int) -> int:
    """Uniform random integer in ``[low, high)``."""
    if high <= low:
        raise ParameterError("empty range for random_in_range")
    return low + secrets.randbelow(high - low)


def random_coprime(n: int) -> int:
    """Uniform random integer in ``[1, n)`` that is coprime to ``n``."""
    if n <= 1:
        raise ParameterError("random_coprime requires n > 1")
    while True:
        r = 1 + secrets.randbelow(n - 1)
        if math.gcd(r, n) == 1:
            return r
