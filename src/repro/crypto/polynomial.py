"""Polynomials over Z_n and their oblivious (encrypted) evaluation.

The private-matching protocol (Section 5, after Freedman-Nissim-Pinkas
[12]) has the chooser encode its input set A = {a_1, ..., a_n} as the
monic-up-to-sign polynomial

    P(x) = (a_1 - x)(a_2 - x)...(a_n - x) = sum_k c_k x^k,

encrypt the coefficients c_k under an additively homomorphic scheme, and
let the sender compute E(r * P(a') + payload) for each of its own values
a' — without ever seeing P in the clear.  This module provides:

* :func:`from_roots` — expand the product form into coefficients mod n,
* :func:`evaluate` — plaintext Horner evaluation (for tests),
* :class:`EncryptedPolynomial` — coefficient-wise encryption plus the
  homomorphic Horner evaluation used by the datasources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto import instrumentation
from repro.crypto.homomorphic import AdditiveHomomorphicScheme
from repro.errors import ParameterError


def from_roots(roots: Sequence[int], modulus: int) -> list[int]:
    """Coefficients (ascending powers) of prod_i (root_i - x) mod modulus.

    The expansion follows the paper's sign convention: each factor is
    ``(a_i - x)``, so the leading coefficient is ``(-1)^n``.  An empty
    root set yields the constant polynomial 1 (the empty product), which
    has *no* roots — evaluating it never matches, the correct behaviour
    for a datasource with an empty active domain.
    """
    if modulus <= 1:
        raise ParameterError("polynomial modulus must exceed 1")
    coefficients = [1]
    for root in roots:
        root %= modulus
        # Multiply current polynomial by (root - x).
        next_coefficients = [0] * (len(coefficients) + 1)
        for power, coefficient in enumerate(coefficients):
            next_coefficients[power] += root * coefficient
            next_coefficients[power + 1] -= coefficient
        coefficients = [c % modulus for c in next_coefficients]
    return coefficients


def evaluate(coefficients: Sequence[int], x: int, modulus: int) -> int:
    """Horner evaluation of the coefficient vector at ``x`` mod modulus."""
    if not coefficients:
        raise ParameterError("cannot evaluate an empty polynomial")
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % modulus
    return result


def degree(coefficients: Sequence[int]) -> int:
    """Degree of the coefficient vector (index of last entry)."""
    return len(coefficients) - 1


@dataclass(frozen=True)
class EncryptedPolynomial:
    """Homomorphic encryptions of a polynomial's coefficients.

    ``coefficients[k]`` is ``E(c_k)``; the plaintext modulus is
    ``scheme.plaintext_bound(public_key)``.  The *degree is public* —
    the paper's Table 1 records precisely this leakage: the mediator
    learns |domactive(R_i.A_join)| from the number of coefficients.
    """

    scheme: AdditiveHomomorphicScheme
    public_key: Any
    coefficients: tuple[Any, ...]

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def evaluate(self, x: int) -> Any:
        """Homomorphic Horner: returns ``E(P(x))`` for plaintext ``x``.

        acc = E(c_d); acc = x * acc (+) E(c_{k}) going down — only the
        two homomorphic operations the paper demands are used.
        """
        instrumentation.record("homomorphic.poly_evaluate")
        modulus = self.scheme.plaintext_bound(self.public_key)
        x %= modulus
        iterator = reversed(self.coefficients)
        accumulator = next(iterator)
        for encrypted_coefficient in iterator:
            accumulator = self.scheme.scalar_multiply(accumulator, x)
            accumulator = self.scheme.add(accumulator, encrypted_coefficient)
        return accumulator

    def masked_evaluate(self, x: int, mask: int, payload: int) -> Any:
        """Compute ``E(mask * P(x) + payload)`` — Equation (1) of the paper.

        ``mask`` is the sender's fresh random value r; ``payload`` the
        value-and-tuple-set encoding (a' || py).  When ``P(x) = 0`` the
        mask vanishes and the payload survives decryption; otherwise the
        result is (statistically close to) a random plaintext.
        """
        instrumentation.record("homomorphic.masked_evaluate")
        evaluated = self.evaluate(x)
        masked = self.scheme.scalar_multiply(evaluated, mask)
        return self.scheme.add_plain(masked, payload)


def encrypt_polynomial(
    scheme: AdditiveHomomorphicScheme,
    public_key: Any,
    coefficients: Sequence[int],
    engine: Any = None,
) -> EncryptedPolynomial:
    """Encrypt each coefficient of a plaintext polynomial.

    ``engine`` is an optional :class:`repro.crypto.engine.CryptoEngine`;
    when given, the coefficients encrypt as one (possibly parallel)
    batch instead of a scalar loop.
    """
    instrumentation.record("homomorphic.encrypt_polynomial")
    if engine is None:
        encrypted = tuple(
            scheme.encrypt(public_key, coefficient)
            for coefficient in coefficients
        )
    else:
        encrypted = tuple(
            engine.batch_scheme_encrypt(scheme, public_key, coefficients)
        )
    return EncryptedPolynomial(scheme, public_key, encrypted)
