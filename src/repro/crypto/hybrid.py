"""Hybrid encryption — the paper's ``encrypt(...)`` / ``decrypt(...)``.

Section 2: *"This information is best encrypted with a hybrid encryption
scheme; that is, the information is encrypted with a newly generated
symmetric session key and the session key is encrypted with the public
keys of the client."*

The construction here is KEM/DEM: a fresh 64-byte session key encrypts the
payload with ChaCha20+HMAC (:mod:`repro.crypto.symmetric`) and is wrapped
under each client public key with RSA-OAEP.  A credential may present
several public keys; the session key is wrapped once per key, keyed by key
fingerprint, so the client can unwrap with whichever private key matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.crypto import instrumentation, rsa, symmetric
from repro.crypto.hashes import fingerprint
from repro.crypto.numtheory import int_to_bytes
from repro.errors import DecryptionError


def key_fingerprint(public_key: rsa.RSAPublicKey) -> bytes:
    """Stable 16-byte identifier of an RSA public key."""
    material = int_to_bytes(public_key.n) + b"/" + int_to_bytes(public_key.e)
    return fingerprint(material)


@dataclass(frozen=True)
class HybridCiphertext:
    """Session key wrapped per recipient key, plus the DEM body."""

    wrapped_keys: Mapping[bytes, bytes]  # key fingerprint -> OAEP blob
    body: bytes

    def size_bytes(self) -> int:
        """Total serialized size (what travels over the message bus)."""
        wrapped = sum(len(k) + len(v) for k, v in self.wrapped_keys.items())
        return wrapped + len(self.body)


def encrypt(
    public_keys: Iterable[rsa.RSAPublicKey],
    plaintext: bytes,
    associated_data: bytes = b"",
) -> HybridCiphertext:
    """Hybrid-encrypt ``plaintext`` to the holder of any listed key."""
    keys = list(public_keys)
    if not keys:
        raise DecryptionError("hybrid encryption requires at least one key")
    instrumentation.record("hybrid.encrypt")
    session_key = symmetric.generate_key()
    body = symmetric.encrypt(session_key, plaintext, associated_data)
    wrapped = {
        key_fingerprint(key): rsa.oaep_encrypt(key, session_key) for key in keys
    }
    return HybridCiphertext(wrapped_keys=wrapped, body=body)


def decrypt(
    private_key: rsa.RSAPrivateKey,
    ciphertext: HybridCiphertext,
    associated_data: bytes = b"",
    use_crt: bool = True,
) -> bytes:
    """Unwrap the session key with ``private_key`` and decrypt the body."""
    instrumentation.record("hybrid.decrypt")
    fp = key_fingerprint(private_key.public_key())
    wrapped = ciphertext.wrapped_keys.get(fp)
    if wrapped is None:
        raise DecryptionError("no session key wrapped for this private key")
    session_key = rsa.oaep_decrypt(private_key, wrapped, use_crt)
    return symmetric.decrypt(session_key, ciphertext.body, associated_data)


def session_encrypt(session_key: bytes, plaintext: bytes) -> bytes:
    """DEM-only encryption under an explicit session key.

    Used by the footnote-2 variant of the private-matching protocol: the
    session key itself travels inside the homomorphic payload while the
    (possibly large) tuple set is encrypted symmetrically and shipped in
    a side table.
    """
    instrumentation.record("hybrid.session_encrypt")
    return symmetric.encrypt(session_key, plaintext)


def session_decrypt(session_key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`session_encrypt`."""
    instrumentation.record("hybrid.session_decrypt")
    return symmetric.decrypt(session_key, ciphertext)


def wrapped_key_size(public_key: rsa.RSAPublicKey) -> int:
    """Size in bytes of one wrapped session key under ``public_key``."""
    return public_key.modulus_bytes
