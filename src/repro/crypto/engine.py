"""Batched and parallel execution engine for the crypto substrate.

Every delivery protocol of the paper bottlenecks on big-integer modular
exponentiation — SRA double encryption (Listing 3), Paillier coefficient
encryption and oblivious polynomial evaluation (Listing 4), hybrid key
wrapping for DAS (Listing 2).  The protocol drivers originally executed
those primitives one tuple at a time in Python loops; this module turns
the loops into *batch* calls with three independent layers of speedup:

1. **Algorithmic** (always on, also in serial mode): CRT-accelerated
   Paillier decryption and RSA private-key operations, Jacobi-symbol QR
   membership tests, fixed-base windowed exponentiation tables
   (:class:`FixedBaseTable`) and precomputed Paillier nonce powers
   (:class:`PaillierNonceCache`).
2. **Parallelism**: a chunked :class:`~concurrent.futures.
   ProcessPoolExecutor` fans a batch out over ``workers`` processes once
   it reaches ``threshold`` items.  Workers count their primitive
   invocations with a fresh :class:`~repro.crypto.instrumentation.
   PrimitiveCounter` and the parent replays the totals into its own
   installed counters, so the Table 2 conformance analyses observe
   exactly the same counts with and without the pool.
3. **Batching**: even in serial mode, batch calls hoist loop-invariant
   work (key inversion, CRT parameter derivation, validation policy) out
   of the per-item path.

The engine is selected per run: explicitly via the ``workers`` argument
(wired to the CLI ``--workers`` flag), or via the environment variables
``REPRO_CRYPTO_WORKERS`` / ``REPRO_CRYPTO_THRESHOLD``.  ``workers <= 1``
means strictly serial execution in the calling process.  ``legacy=True``
reproduces the pre-engine primitive choices (Euler-criterion membership,
Carmichael decryption, full-exponent RSA, scalar loops) and exists as
the faithful baseline of ``benchmarks/bench_parallel_crypto.py``.

Batch results are defined to be *exactly* what mapping the scalar
primitive over the inputs produces — byte-identical values and identical
primitive counts — regardless of the execution mode; the equivalence
tests in ``tests/crypto/test_engine.py`` enforce this contract.
"""

from __future__ import annotations

import math
import os
import secrets
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.crypto import backend as _backend
from repro.crypto import commutative, hybrid, instrumentation, paillier
from repro.crypto.homomorphic import AdditiveHomomorphicScheme, PaillierScheme
from repro.crypto.polynomial import EncryptedPolynomial
from repro.errors import ParameterError
from repro.telemetry import tracing
from repro.telemetry.tracing import Span, SpanContext, Tracer

#: Batches below this size never engage the process pool: the fork/IPC
#: overhead only amortises over a handful of big exponentiations.
DEFAULT_THRESHOLD = 8

#: Chunks submitted per worker; >1 smooths imbalance between chunks.
_CHUNKS_PER_WORKER = 4

#: Shared-base batches at least this large amortise building a
#: per-batch :class:`FixedBaseTable` on the pure-Python backend.
_FIXED_BASE_MIN_BATCH = 8

_WORKERS_ENV = "REPRO_CRYPTO_WORKERS"
_THRESHOLD_ENV = "REPRO_CRYPTO_THRESHOLD"

#: Memory budget for fixed-base precomputation tables, in MiB.
FIXED_BASE_BUDGET_ENV = "REPRO_FIXED_BASE_MAX_MB"

#: Default fixed-base budget: generous for per-key tables (~200 KiB at
#: 2048 bits) while refusing pathological window/bit combinations.
DEFAULT_FIXED_BASE_MAX_MB = 64


def fixed_base_budget_bytes() -> int:
    """The fixed-base table budget from ``REPRO_FIXED_BASE_MAX_MB``."""
    raw = os.environ.get(FIXED_BASE_BUDGET_ENV, "").strip()
    if not raw:
        return DEFAULT_FIXED_BASE_MAX_MB * 1024 * 1024
    try:
        megabytes = float(raw)
    except ValueError:
        raise ParameterError(
            f"{FIXED_BASE_BUDGET_ENV} must be a number, got {raw!r}"
        ) from None
    if megabytes < 0:
        raise ParameterError(f"{FIXED_BASE_BUDGET_ENV} must be non-negative")
    return int(megabytes * 1024 * 1024)


# ---------------------------------------------------------------------------
# Worker-side units.  Each is a module-level function (picklable by
# qualified name) of the form ``unit(shared, item) -> result`` where
# ``shared`` carries the loop-invariant state.
# ---------------------------------------------------------------------------


def _run_chunk(
    unit: Callable[[Any, Any], Any],
    shared: Any,
    chunk: list,
    trace: dict | None = None,
    backend_name: str | None = None,
    chunk_fn: "Callable[[Any, list], list] | None" = None,
) -> tuple[list, dict[str, int], list[dict]]:
    """Execute ``unit`` over ``chunk`` in a worker, counting primitives.

    ``trace`` (``{"trace_id", "span_id", "party"}``) is the driver-side
    batch span's context; when present the worker records its own chunk
    span under that parent and ships it back for the driver's tracer to
    adopt — pool workers thereby appear in the distributed trace exactly
    like remote endpoints do.

    ``backend_name`` pins the worker's bigint backend to the driver's
    (fresh pool processes would otherwise re-resolve from the
    environment, which can disagree with a programmatically installed
    backend).  ``chunk_fn`` is an optional whole-chunk fast path
    ``(shared, chunk) -> results`` that replaces the per-item loop —
    used for batched exponentiation where the backend has list forms.
    """

    def _execute() -> list:
        if chunk_fn is not None:
            return chunk_fn(shared, chunk)
        return [unit(shared, item) for item in chunk]

    spans: list[dict] = []
    previous_backend = (
        None if backend_name is None else _backend.set_backend(backend_name)
    )
    try:
        with instrumentation.count_primitives() as counter:
            if trace is None:
                results = _execute()
            else:
                worker_tracer = Tracer(trace_id=trace["trace_id"])
                parent = SpanContext(
                    trace_id=trace["trace_id"], span_id=trace["span_id"]
                )
                with worker_tracer.span(
                    "crypto:chunk",
                    trace["party"],
                    parent=parent,
                    attributes={
                        "kind": "crypto",
                        "items": len(chunk),
                        "pid": os.getpid(),
                        "backend": _backend.active_backend().name,
                    },
                ):
                    results = _execute()
                spans = [span.to_dict() for span in worker_tracer.spans]
    finally:
        if backend_name is not None:
            _backend.set_backend(previous_backend)
    return results, dict(counter.counts), spans


def _unit_call(func: Callable, item: tuple) -> Any:
    return func(*item)


def _unit_pow(shared: tuple[int, int], base: int) -> int:
    exponent, modulus = shared
    return _backend.active_backend().powmod(base, exponent, modulus)


def _chunk_pow(shared: tuple[int, int], chunk: list) -> list[int]:
    """Whole-chunk shared-exponent batch via the backend's list form."""
    exponent, modulus = shared
    return _backend.active_backend().powmod_base_list(chunk, exponent, modulus)


def _unit_pow_shared_base(shared: tuple[int, int, int], exponent: int) -> int:
    base, modulus, _ = shared
    return _backend.active_backend().powmod(base, exponent, modulus)


def _chunk_pow_shared_base(shared: tuple[int, int, int], chunk: list) -> list[int]:
    """Whole-chunk shared-base batch.

    The native backend exponentiates through its list form (pre-cast
    ``mpz`` base/modulus, or gmpy2's C-level ``powmod_exp_list``); the
    Python backend amortises a windowed :class:`FixedBaseTable` over the
    chunk once it is large enough, subject to the fixed-base memory
    budget (over-budget tables degrade to the plain ladder, counted as
    a skip by :meth:`FixedBaseTable.build`).
    """
    base, modulus, max_exponent_bits = shared
    backend = _backend.active_backend()
    if backend.name != "python":
        return backend.powmod_exp_list(base, chunk, modulus)
    if len(chunk) >= _FIXED_BASE_MIN_BATCH:
        table = FixedBaseTable.build(base, modulus, max_exponent_bits)
        if table is not None:
            return [table.pow(exponent) for exponent in chunk]
    return [pow(base, exponent, modulus) for exponent in chunk]


def _unit_commutative(shared: tuple, value: int) -> int:
    exponent, group, record_op, check = shared
    if check == "euler":
        member = commutative.euler_contains(group, value)
    elif check == "none":
        member = 0 < value < group.p
    else:
        member = group.contains(value)
    if not member:
        raise ParameterError("input is not in the quadratic-residue domain")
    instrumentation.record(record_op)
    return _backend.active_backend().powmod(value, exponent, group.p)


def _unit_paillier_encrypt(shared: Any, item: tuple) -> Any:
    plaintext, randomness = item
    return paillier.encrypt(shared, plaintext, randomness)


def _unit_paillier_encrypt_nonce(shared: Any, item: tuple) -> Any:
    plaintext, nonce_power = item
    return paillier.encrypt_with_nonce_power(shared, plaintext, nonce_power)


def _unit_paillier_decrypt(shared: tuple, ciphertext: Any) -> int:
    private_key, flavour = shared
    if flavour == "carmichael":
        return paillier.decrypt_carmichael(private_key, ciphertext)
    if flavour == "crt":
        return paillier.decrypt_crt(private_key, ciphertext)
    return paillier.decrypt(private_key, ciphertext)


def _unit_scheme_encrypt(shared: tuple, plaintext: int) -> Any:
    scheme, public_key = shared
    return scheme.encrypt(public_key, plaintext)


def _unit_scheme_decrypt(shared: tuple, ciphertext: Any) -> int:
    scheme, private_key, flavour = shared
    if flavour == "carmichael" and isinstance(scheme, PaillierScheme):
        return paillier.decrypt_carmichael(private_key, ciphertext)
    return scheme.decrypt(private_key, ciphertext)


def _unit_poly_eval(shared: EncryptedPolynomial, job: tuple) -> Any:
    x, mask, payload = job
    return shared.masked_evaluate(x, mask, payload)


def _unit_hybrid_encrypt(shared: tuple, plaintext: bytes) -> Any:
    public_keys, associated_data = shared
    return hybrid.encrypt(public_keys, plaintext, associated_data)


def _unit_hybrid_decrypt(shared: tuple, ciphertext: Any) -> bytes:
    private_key, associated_data, use_crt = shared
    return hybrid.decrypt(private_key, ciphertext, associated_data, use_crt)


# ---------------------------------------------------------------------------
# Precomputation helpers (algorithmic speedups independent of the pool).
# ---------------------------------------------------------------------------


class FixedBaseTable:
    """Windowed precomputation for repeated exponentiations of one base.

    Stores ``rows[i][j] = base^(j * 2^(window * i)) mod modulus`` for
    every window position ``i`` and digit ``j``; :meth:`pow` then costs
    one modular multiplication per non-zero window digit instead of a
    full square-and-multiply ladder — a 5-10x win at 2048-bit sizes once
    the table cost (``ceil(bits/window) * 2^window`` multiplications,
    ~``2^window * bits / window * |modulus|/8`` bytes of memory) has
    amortised over a few exponentiations.

    Memory is bounded: construction refuses tables whose
    :meth:`estimate_size_bytes` exceeds the ``REPRO_FIXED_BASE_MAX_MB``
    budget (default 64 MiB).  Callers that can degrade gracefully use
    :meth:`build`, which turns the refusal into a counted skip and a
    ``None`` table instead of an exception.
    """

    __slots__ = ("base", "modulus", "window", "max_exponent_bits", "_rows")

    @staticmethod
    def estimate_size_bytes(
        modulus: int, max_exponent_bits: int, window: int = 5
    ) -> int:
        """Predicted :meth:`size_bytes` without building the table."""
        entry = (modulus.bit_length() + 7) // 8
        rows = math.ceil(max(1, max_exponent_bits) / max(1, window))
        return rows * (1 << window) * entry

    @classmethod
    def build(
        cls,
        base: int,
        modulus: int,
        max_exponent_bits: int,
        window: int = 5,
    ) -> "FixedBaseTable | None":
        """Budget-checked construction: ``None`` when over budget.

        The skip is counted (``fixedbase.skip`` via the primitive
        instrumentation, surfacing in
        ``repro_crypto_primitive_ops_total``) so sizing problems are
        observable instead of silent slowdowns.
        """
        estimate = cls.estimate_size_bytes(modulus, max_exponent_bits, window)
        if estimate > fixed_base_budget_bytes():
            instrumentation.record("fixedbase.skip")
            return None
        return cls(base, modulus, max_exponent_bits, window)

    def __init__(
        self,
        base: int,
        modulus: int,
        max_exponent_bits: int,
        window: int = 5,
    ) -> None:
        if modulus <= 1:
            raise ParameterError("fixed-base modulus must exceed 1")
        if not 1 <= window <= 16:
            raise ParameterError("fixed-base window must be in [1, 16]")
        if max_exponent_bits < 1:
            raise ParameterError("max_exponent_bits must be positive")
        estimate = self.estimate_size_bytes(modulus, max_exponent_bits, window)
        budget = fixed_base_budget_bytes()
        if estimate > budget:
            raise ParameterError(
                f"fixed-base table would need ~{estimate} bytes, over the "
                f"{FIXED_BASE_BUDGET_ENV} budget of {budget} bytes"
            )
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.max_exponent_bits = max_exponent_bits
        radix = 1 << window
        rows = []
        running = self.base
        for _ in range(math.ceil(max_exponent_bits / window)):
            row = [1] * radix
            for digit in range(1, radix):
                row[digit] = row[digit - 1] * running % modulus
            rows.append(row)
            running = row[radix - 1] * running % modulus
        self._rows = rows

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` via the precomputed table."""
        if exponent < 0:
            raise ParameterError("fixed-base exponent must be non-negative")
        if exponent.bit_length() > self.max_exponent_bits:
            # Out-of-range exponents fall back to the generic ladder so
            # the table stays a drop-in replacement for pow().
            return pow(self.base, exponent, self.modulus)
        result = 1
        mask = (1 << self.window) - 1
        position = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * self._rows[position][digit] % self.modulus
            exponent >>= self.window
            position += 1
        return result

    def size_bytes(self) -> int:
        """Approximate memory footprint of the table."""
        entry = (self.modulus.bit_length() + 7) // 8
        return sum(len(row) for row in self._rows) * entry


class PaillierNonceCache:
    """Precomputed Paillier nonce powers ``r^n mod n^2`` (BPV-style).

    The exponentiation ``r^n`` dominates Paillier encryption.  Following
    Boyko-Peinado-Venkatesan, this cache draws a pool of random units
    ``r_1..r_k`` once, precomputes their ``n``-th powers, and serves each
    fresh nonce as the product of a random ``subset_size``-element
    subset: ``r = prod r_i`` is again a unit and ``r^n = prod r_i^n``
    costs ``subset_size - 1`` multiplications instead of a full
    exponentiation.  The subset-product distribution is not uniform over
    ``Z_n*`` (its entropy is ``log2 C(pool_size, subset_size)`` bits),
    which is why the cache is *opt-in* — callers trade a quantified
    randomness bound for throughput, as the performance docs discuss.
    """

    def __init__(
        self,
        public_key: paillier.PaillierPublicKey,
        pool_size: int = 64,
        subset_size: int = 8,
    ) -> None:
        if not 2 <= subset_size <= pool_size:
            raise ParameterError("need 2 <= subset_size <= pool_size")
        self.public_key = public_key
        self.pool_size = pool_size
        self.subset_size = subset_size
        n = public_key.n
        n_sq = public_key.n_squared
        active = _backend.active_backend()
        self._powers = [
            active.powmod(paillier.random_unit(n), n, n_sq)
            for _ in range(pool_size)
        ]
        self._sampler = secrets.SystemRandom()

    def nonce_power(self) -> int:
        """A fresh ``r^n mod n^2`` for an implicit random unit ``r``."""
        instrumentation.record("random.paillier_nonce")
        n_sq = self.public_key.n_squared
        product = 1
        for index in self._sampler.sample(range(self.pool_size), self.subset_size):
            product = product * self._powers[index] % n_sq
        return product


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


def workers_from_env() -> int:
    """Worker count from ``REPRO_CRYPTO_WORKERS`` (0 = serial)."""
    raw = os.environ.get(_WORKERS_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        raise ParameterError(
            f"{_WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None


def _threshold_from_env() -> int:
    raw = os.environ.get(_THRESHOLD_ENV, "").strip()
    if not raw:
        return DEFAULT_THRESHOLD
    try:
        return max(1, int(raw))
    except ValueError:
        raise ParameterError(
            f"{_THRESHOLD_ENV} must be an integer, got {raw!r}"
        ) from None


class CryptoEngine:
    """Dispatches crypto batches to a serial loop or a process pool.

    ``workers``: process count; ``None`` reads ``REPRO_CRYPTO_WORKERS``,
    and values ``<= 1`` stay serial.  ``threshold``: minimum batch size
    before the pool engages.  ``legacy``: reproduce the pre-engine
    primitive choices (serial loops, Euler-criterion membership,
    Carmichael Paillier decryption, full-exponent RSA) — the baseline
    leg of the parallel-crypto benchmark.  ``backend``: a bigint backend
    (instance or ``auto``/``python``/``gmpy2`` selector) pinned for
    every batch this engine runs, in the driver process and in pool
    workers alike; ``None`` follows the process-wide installed backend
    (:func:`repro.crypto.backend.active_backend`).
    """

    def __init__(
        self,
        workers: int | None = None,
        threshold: int | None = None,
        legacy: bool = False,
        backend: "_backend.CryptoBackend | str | None" = None,
    ) -> None:
        self.workers = workers_from_env() if workers is None else max(0, workers)
        self.threshold = (
            _threshold_from_env() if threshold is None else max(1, threshold)
        )
        self.legacy = legacy
        self._backend = None if backend is None else _backend.resolve_backend(backend)
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def mode(self) -> str:
        if self.legacy:
            return "legacy"
        return "pooled" if self.workers >= 2 else "serial"

    @property
    def backend(self) -> _backend.CryptoBackend:
        """The bigint backend this engine's batches run under."""
        return self._backend if self._backend is not None else _backend.active_backend()

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # -- dispatch -----------------------------------------------------------

    def _use_pool(self, size: int) -> bool:
        return not self.legacy and self.workers >= 2 and size >= self.threshold

    def _run(
        self,
        unit: Callable[[Any, Any], Any],
        shared: Any,
        items: Sequence,
        chunk_fn: "Callable[[Any, list], list] | None" = None,
    ) -> list:
        items = list(items)
        name = unit.__name__.replace("_unit_", "", 1)
        party = self._ambient_party()
        backend = self.backend
        with tracing.span(
            f"crypto:{name}", party,
            kind="crypto", items=len(items), mode=self.mode,
            backend=backend.name,
        ) as batch_span:
            if not self._use_pool(len(items)):
                with _backend.use_backend(backend):
                    if chunk_fn is not None and not self.legacy:
                        return chunk_fn(shared, items)
                    return [unit(shared, item) for item in items]
            trace = None
            if batch_span is not None:
                trace = {
                    "trace_id": batch_span.trace_id,
                    "span_id": batch_span.span_id,
                    "party": party,
                }
            pool = self._ensure_pool()
            chunk = max(
                1, math.ceil(len(items) / (self.workers * _CHUNKS_PER_WORKER))
            )
            futures = [
                pool.submit(
                    _run_chunk, unit, shared, items[start:start + chunk],
                    trace, backend.name, chunk_fn,
                )
                for start in range(0, len(items), chunk)
            ]
            results: list = []
            tracer = tracing.get_tracer()
            for future in futures:
                part, counts, span_records = future.result()
                results.extend(part)
                # Replay the workers' primitive counts into the counters
                # installed in this process: Table 2 analyses must see the
                # same totals whether or not the pool ran.
                for operation, amount in counts.items():
                    instrumentation.record(operation, amount)
                # Likewise adopt the workers' spans: the pool is invisible
                # to protocol semantics but visible in the trace.
                if tracer is not None and span_records:
                    tracer.adopt(
                        Span.from_dict(record) for record in span_records
                    )
            return results

    @staticmethod
    def _ambient_party() -> str:
        """The party the enclosing step span runs at, for batch spans."""
        current = tracing.current_span()
        return current.party if current is not None else "engine"

    # -- batch APIs ---------------------------------------------------------

    def batch_pow(
        self, bases: Sequence[int], exponent: int, modulus: int
    ) -> list[int]:
        """``[pow(b, exponent, modulus) for b in bases]``, possibly pooled.

        Shared-exponent batches run through the backend's list form
        (:meth:`~repro.crypto.backend.CryptoBackend.powmod_base_list`),
        which hoists the exponent/modulus casts out of the loop on the
        native backend.
        """
        return self._run(_unit_pow, (exponent, modulus), bases, _chunk_pow)

    def batch_pow_shared_base(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        """``[pow(base, e, modulus) for e in exponents]``, possibly pooled.

        The shared-base dual of :meth:`batch_pow` — the shape of
        fixed-generator workloads (``g^r`` floods).  The native backend
        uses its list form; the Python backend amortises a windowed
        fixed-base table over each chunk (within the
        ``REPRO_FIXED_BASE_MAX_MB`` budget).
        """
        exponents = list(exponents)
        max_bits = max((e.bit_length() for e in exponents), default=1)
        shared = (base, modulus, max(1, max_bits))
        return self._run(
            _unit_pow_shared_base, shared, exponents, _chunk_pow_shared_base
        )

    def batch_commutative_encrypt(
        self,
        key: commutative.CommutativeKey,
        values: Sequence[int],
        validate: bool = True,
    ) -> list[int]:
        """Batch of ``f_e(x)`` applications (Listing 3 tagging rounds).

        ``validate=False`` skips the QR membership test for inputs whose
        membership is guaranteed by construction (ideal-hash outputs,
        tags from a previous round).
        """
        check = "euler" if self.legacy else ("jacobi" if validate else "none")
        shared = (key.exponent, key.group, "commutative.encrypt", check)
        return self._run(_unit_commutative, shared, values)

    def batch_commutative_decrypt(
        self,
        key: commutative.CommutativeKey,
        values: Sequence[int],
        validate: bool = True,
    ) -> list[int]:
        """Batch of ``f_e^{-1}(y)``; the key inversion happens once."""
        check = "euler" if self.legacy else ("jacobi" if validate else "none")
        shared = (key.inverse().exponent, key.group, "commutative.decrypt", check)
        return self._run(_unit_commutative, shared, values)

    def batch_paillier_encrypt(
        self,
        public_key: paillier.PaillierPublicKey,
        plaintexts: Sequence[int],
        randomness: Sequence[int] | None = None,
        nonce_cache: PaillierNonceCache | None = None,
    ) -> list[paillier.PaillierCiphertext]:
        """Batch Paillier encryption.

        ``randomness`` fixes the per-item nonces (deterministic output,
        used by the equivalence tests); ``nonce_cache`` trades uniform
        nonces for precomputed ``r^n`` powers.  With neither, workers
        draw fresh uniform nonces.
        """
        if randomness is not None and nonce_cache is not None:
            raise ParameterError("pass either randomness or nonce_cache, not both")
        if nonce_cache is not None:
            if nonce_cache.public_key != public_key:
                raise ParameterError("nonce cache built for a different key")
            jobs = [(m, nonce_cache.nonce_power()) for m in plaintexts]
            return self._run(_unit_paillier_encrypt_nonce, public_key, jobs)
        if randomness is None:
            jobs = [(m, None) for m in plaintexts]
        else:
            if len(randomness) != len(plaintexts):
                raise ParameterError("randomness length must match plaintexts")
            jobs = list(zip(plaintexts, randomness))
        return self._run(_unit_paillier_encrypt, public_key, jobs)

    def batch_paillier_decrypt(
        self,
        private_key: paillier.PaillierPrivateKey,
        ciphertexts: Sequence[paillier.PaillierCiphertext],
        flavour: str | None = None,
    ) -> list[int]:
        """Batch Paillier decryption (CRT when the key allows it)."""
        if flavour is None:
            flavour = "carmichael" if self.legacy else "auto"
        if flavour not in ("auto", "crt", "carmichael"):
            raise ParameterError(f"unknown decryption flavour {flavour!r}")
        return self._run(_unit_paillier_decrypt, (private_key, flavour), ciphertexts)

    def batch_scheme_encrypt(
        self,
        scheme: AdditiveHomomorphicScheme,
        public_key: Any,
        plaintexts: Sequence[int],
    ) -> list[Any]:
        """Batch encryption through a homomorphic scheme adapter."""
        return self._run(_unit_scheme_encrypt, (scheme, public_key), plaintexts)

    def batch_scheme_decrypt(
        self,
        scheme: AdditiveHomomorphicScheme,
        private_key: Any,
        ciphertexts: Sequence[Any],
    ) -> list[int]:
        """Batch decryption through a homomorphic scheme adapter."""
        flavour = "carmichael" if self.legacy else "auto"
        shared = (scheme, private_key, flavour)
        return self._run(_unit_scheme_decrypt, shared, ciphertexts)

    def batch_poly_eval(
        self,
        encrypted_polynomial: EncryptedPolynomial,
        jobs: Sequence[tuple[int, int, int]],
    ) -> list[Any]:
        """Batch of oblivious ``E(mask * P(x) + payload)`` evaluations.

        ``jobs`` are ``(x, mask, payload)`` triples; masks are drawn by
        the caller so randomness stays in the protocol driver.
        """
        return self._run(_unit_poly_eval, encrypted_polynomial, jobs)

    def batch_hybrid_encrypt(
        self,
        public_keys: Sequence,
        plaintexts: Sequence[bytes],
        associated_data: bytes = b"",
    ) -> list[hybrid.HybridCiphertext]:
        """Batch hybrid (KEM/DEM) encryption of independent payloads."""
        shared = (tuple(public_keys), associated_data)
        return self._run(_unit_hybrid_encrypt, shared, plaintexts)

    def batch_hybrid_decrypt(
        self,
        private_key: Any,
        ciphertexts: Sequence[hybrid.HybridCiphertext],
        associated_data: bytes = b"",
    ) -> list[bytes]:
        """Batch hybrid decryption under one private key."""
        shared = (private_key, associated_data, not self.legacy)
        return self._run(_unit_hybrid_decrypt, shared, ciphertexts)

    def map_batch(self, func: Callable, argument_tuples: Sequence[tuple]) -> list:
        """Generic batch: ``[func(*args) for args in argument_tuples]``.

        ``func`` must be a module-level (picklable) callable; used e.g.
        for batched credential signature verification.
        """
        return self._run(_unit_call, func, argument_tuples)


# ---------------------------------------------------------------------------
# Process-wide engine installation (CLI and protocol drivers).
# ---------------------------------------------------------------------------

_installed_engine: CryptoEngine | None = None


def get_engine() -> CryptoEngine:
    """The installed engine, creating an environment-configured default."""
    global _installed_engine
    if _installed_engine is None:
        _installed_engine = CryptoEngine()
    return _installed_engine


def set_engine(engine: CryptoEngine | None) -> CryptoEngine | None:
    """Install ``engine`` process-wide; returns the previous one."""
    global _installed_engine
    previous, _installed_engine = _installed_engine, engine
    return previous


@contextmanager
def use_engine(engine: CryptoEngine) -> Iterator[CryptoEngine]:
    """Temporarily install ``engine`` (tests and benchmarks)."""
    previous = set_engine(engine)
    try:
        yield engine
    finally:
        set_engine(previous)
