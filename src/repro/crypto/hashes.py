"""Hash constructions used by the mediation protocols.

Two distinct hash roles appear in the paper:

* **Section 3 (DAS)** needs a *collision-free* hash to derive index values
  (partition identifiers) from partition properties.
* **Section 4 (commutative encryption)** needs an *ideal* hash, modelled
  as a random oracle, mapping join-attribute values into the domain of the
  commutative encryption function — here the group of quadratic residues
  modulo a safe prime.

Both are instantiated from SHA-256 with domain-separation tags, the
standard way of deriving independent random oracles from one hash
function.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto import instrumentation
from repro.crypto.numtheory import bytes_to_int
from repro.errors import ParameterError

#: Domain-separation tags.  Distinct tags make the derived functions
#: behave as independent oracles even though they share SHA-256.
TAG_IDEAL = b"repro/ideal-hash/v1"
TAG_INDEX = b"repro/partition-index/v1"
TAG_KDF = b"repro/kdf/v1"
TAG_FINGERPRINT = b"repro/key-fingerprint/v1"


def _sha256(tag: bytes, *parts: bytes) -> bytes:
    digest = hashlib.sha256()
    digest.update(tag)
    for part in parts:
        # Length-prefix every part so that concatenation is unambiguous.
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.digest()


def collision_free_hash(data: bytes, tag: bytes = TAG_INDEX) -> bytes:
    """Collision-resistant hash used for DAS partition identifiers."""
    instrumentation.record("hash.collision_free")
    return _sha256(tag, data)


def expand(seed: bytes, length: int, tag: bytes = TAG_KDF) -> bytes:
    """Expand ``seed`` into ``length`` pseudorandom bytes (HKDF-like).

    Counter-mode expansion with HMAC-SHA256; used both as a KDF for
    hybrid encryption session keys and to hash values into large integer
    ranges.
    """
    if length < 0:
        raise ParameterError("expand length must be non-negative")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        counter_bytes = counter.to_bytes(4, "big")
        blocks.append(hmac.new(seed, tag + counter_bytes, hashlib.sha256).digest())
        counter += 1
    return b"".join(blocks)[:length]


def hash_to_range(data: bytes, n: int, tag: bytes = TAG_IDEAL) -> int:
    """Hash ``data`` to an integer in ``[0, n)`` with negligible bias.

    Expands the digest to ``len(n) + 16`` bytes before reduction so the
    modular bias is below 2^-128.
    """
    if n <= 0:
        raise ParameterError("hash_to_range requires a positive modulus")
    seed = _sha256(tag, data)
    width = (n.bit_length() + 7) // 8 + 16
    return bytes_to_int(expand(seed, width, tag)) % n


class IdealHash:
    """Random-oracle hash into the quadratic residues modulo a safe prime.

    The SRA commutative cipher operates on the subgroup QR_p of order
    ``q = (p - 1) / 2``.  Hashing first maps into ``[1, p)`` and then
    squares, which lands in QR_p; squaring is 2-to-1 on Z_p* but the
    composition with a random oracle remains collision-free except with
    negligible probability (a collision would need SHA-256 outputs x, -x).

    Both datasources must use *the same* instance parameters (``p`` and
    ``tag``); the protocols ship the tag alongside the group so equal join
    values hash equally on both sides.
    """

    def __init__(self, p: int, tag: bytes = TAG_IDEAL) -> None:
        if p < 7:
            raise ParameterError("modulus too small for IdealHash")
        self.p = p
        self.tag = tag

    def __call__(self, data: bytes) -> int:
        instrumentation.record("hash.ideal")
        x = 1 + hash_to_range(data, self.p - 1, self.tag)
        return x * x % self.p

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IdealHash)
            and self.p == other.p
            and self.tag == other.tag
        )

    def __repr__(self) -> str:
        return f"IdealHash(p~2^{self.p.bit_length()}, tag={self.tag!r})"


def fingerprint(data: bytes, length: int = 16) -> bytes:
    """Short stable identifier for keys and credentials (not secret)."""
    return _sha256(TAG_FINGERPRINT, data)[:length]
