"""A uniform interface over the additively homomorphic cryptosystems.

Section 5 of the paper states its requirements abstractly — a
semantically secure public-key scheme with homomorphic addition and
scalar multiplication — and names Paillier and (EC-)ElGamal as
instantiations.  This module captures that abstraction so the
private-matching protocol is written once and runs over any conforming
scheme; the comparison benchmarks then swap schemes to measure their
relative cost.

A scheme exposes::

    key = scheme.generate_keypair()
    ct  = scheme.encrypt(public_key, m)         # m in [0, plaintext_bound)
    m   = scheme.decrypt(private_key, ct)
    ct  = scheme.add(ct1, ct2)                  # E(a) (+) E(b) = E(a + b)
    ct  = scheme.scalar_multiply(ct, gamma)     # E(gamma * a)
    ct  = scheme.add_plain(ct, m)               # E(a + m), no fresh randomness

``plaintext_bound(public_key)`` bounds the message space; callers must
encode their payloads below it (see :mod:`repro.core.payload`).
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.crypto import ecelgamal, paillier
from repro.crypto.ec import Curve
from repro.errors import DecryptionError


class AdditiveHomomorphicScheme(Protocol):
    """Structural interface implemented by the scheme adapters below."""

    name: str

    def generate_keypair(self) -> Any: ...

    def public_key(self, private_key: Any) -> Any: ...

    def plaintext_bound(self, public_key: Any) -> int: ...

    def encrypt(self, public_key: Any, plaintext: int) -> Any: ...

    def decrypt(self, private_key: Any, ciphertext: Any) -> int: ...

    def add(self, a: Any, b: Any) -> Any: ...

    def add_plain(self, a: Any, plaintext: int) -> Any: ...

    def scalar_multiply(self, a: Any, scalar: int) -> Any: ...

    def ciphertext_size_bytes(self, ciphertext: Any) -> int: ...


class PaillierScheme:
    """Paillier adapter — the paper's (and our) default instantiation."""

    name = "paillier"

    def __init__(self, key_bits: int = 2048) -> None:
        self.key_bits = key_bits

    def generate_keypair(self) -> paillier.PaillierPrivateKey:
        return paillier.generate_keypair(self.key_bits)

    def public_key(
        self, private_key: paillier.PaillierPrivateKey
    ) -> paillier.PaillierPublicKey:
        return private_key.public_key

    def plaintext_bound(self, public_key: paillier.PaillierPublicKey) -> int:
        return public_key.n

    def encrypt(
        self, public_key: paillier.PaillierPublicKey, plaintext: int
    ) -> paillier.PaillierCiphertext:
        return paillier.encrypt(public_key, plaintext)

    def decrypt(
        self,
        private_key: paillier.PaillierPrivateKey,
        ciphertext: paillier.PaillierCiphertext,
    ) -> int:
        return paillier.decrypt(private_key, ciphertext)

    def add(
        self, a: paillier.PaillierCiphertext, b: paillier.PaillierCiphertext
    ) -> paillier.PaillierCiphertext:
        return paillier.add(a, b)

    def add_plain(
        self, a: paillier.PaillierCiphertext, plaintext: int
    ) -> paillier.PaillierCiphertext:
        return paillier.add_plain(a, plaintext)

    def scalar_multiply(
        self, a: paillier.PaillierCiphertext, scalar: int
    ) -> paillier.PaillierCiphertext:
        return paillier.scalar_multiply(a, scalar)

    def ciphertext_size_bytes(self, ciphertext: paillier.PaillierCiphertext) -> int:
        return (ciphertext.public_key.n_squared.bit_length() + 7) // 8


class ECElGamalScheme:
    """EC-ElGamal adapter.

    Decryption needs a discrete-log bound, so the usable message space is
    ``[0, dlog_bound]`` — tiny compared to Paillier.  The private-matching
    protocol therefore only runs over it with the session-key payload
    *disabled* and small join domains; exactly the limitation the paper's
    choice of Paillier avoids, and what bench A4 demonstrates.
    """

    name = "ec-elgamal"

    def __init__(self, curve: Curve, dlog_bound: int = 1 << 20) -> None:
        self.curve = curve
        self.dlog_bound = min(dlog_bound, curve.n - 1)

    def generate_keypair(self) -> ecelgamal.ECElGamalPrivateKey:
        return ecelgamal.generate_keypair(self.curve)

    def public_key(
        self, private_key: ecelgamal.ECElGamalPrivateKey
    ) -> ecelgamal.ECElGamalPublicKey:
        return private_key.public_key

    def plaintext_bound(self, public_key: ecelgamal.ECElGamalPublicKey) -> int:
        return self.dlog_bound + 1

    def encrypt(
        self, public_key: ecelgamal.ECElGamalPublicKey, plaintext: int
    ) -> ecelgamal.ECElGamalCiphertext:
        return ecelgamal.encrypt(public_key, plaintext)

    def decrypt(
        self,
        private_key: ecelgamal.ECElGamalPrivateKey,
        ciphertext: ecelgamal.ECElGamalCiphertext,
    ) -> int:
        try:
            return ecelgamal.decrypt(private_key, ciphertext, self.dlog_bound)
        except DecryptionError:
            # The private-matching protocol relies on "decryption of a
            # masked non-match yields a random value"; for EC-ElGamal a
            # random plaintext usually exceeds the discrete-log bound.
            # Surface it as an out-of-space sentinel the matcher rejects.
            return self.dlog_bound + 1

    def add(
        self,
        a: ecelgamal.ECElGamalCiphertext,
        b: ecelgamal.ECElGamalCiphertext,
    ) -> ecelgamal.ECElGamalCiphertext:
        return ecelgamal.add(a, b)

    def add_plain(
        self, a: ecelgamal.ECElGamalCiphertext, plaintext: int
    ) -> ecelgamal.ECElGamalCiphertext:
        encrypted = ecelgamal.encrypt(a.public_key, plaintext)
        return ecelgamal.add(a, encrypted)

    def scalar_multiply(
        self, a: ecelgamal.ECElGamalCiphertext, scalar: int
    ) -> ecelgamal.ECElGamalCiphertext:
        return ecelgamal.scalar_multiply(a, scalar)

    def ciphertext_size_bytes(
        self, ciphertext: ecelgamal.ECElGamalCiphertext
    ) -> int:
        coordinate = (self.curve.p.bit_length() + 7) // 8
        return 4 * coordinate  # two affine points
