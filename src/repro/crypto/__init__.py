"""Cryptographic substrate for the secure mediation protocols.

Every primitive the three delivery-phase protocols rely on, implemented
from scratch on top of the Python standard library:

* :mod:`~repro.crypto.numtheory` — primality, safe primes, modular math
* :mod:`~repro.crypto.hashes` — collision-free and random-oracle hashes
* :mod:`~repro.crypto.symmetric` — ChaCha20 + HMAC authenticated encryption
* :mod:`~repro.crypto.rsa` — RSA-OAEP encryption and RSA-PSS signatures
* :mod:`~repro.crypto.hybrid` — the paper's hybrid encrypt/decrypt
* :mod:`~repro.crypto.paillier` — additively homomorphic Paillier
* :mod:`~repro.crypto.elgamal` — multiplicative/exponential ElGamal
* :mod:`~repro.crypto.ec` / :mod:`~repro.crypto.ecelgamal` — EC variant
* :mod:`~repro.crypto.commutative` — SRA commutative encryption over QR_p
* :mod:`~repro.crypto.polynomial` — oblivious polynomial evaluation
* :mod:`~repro.crypto.homomorphic` — scheme-agnostic homomorphic interface
* :mod:`~repro.crypto.instrumentation` — primitive-usage audit (Table 2)
* :mod:`~repro.crypto.groups` — precomputed safe-prime parameters
"""

from repro.crypto.instrumentation import PrimitiveCounter, count_primitives

__all__ = ["PrimitiveCounter", "count_primitives"]
