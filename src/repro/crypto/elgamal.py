"""ElGamal encryption over QR_p: multiplicative and exponential variants.

The paper names two homomorphic candidates for the private-matching
protocol: Paillier [20] and the (elliptic-curve) ElGamal variant of [10].
We provide classic ElGamal over the quadratic-residue subgroup of a safe
prime in both flavours:

* **multiplicative** — ``E(m) = (g^r, m * h^r)``, homomorphic under
  multiplication of plaintexts;
* **exponential (additive)** — ``E(m) = (g^r, g^m * h^r)``, homomorphic
  under addition, with decryption requiring a discrete logarithm of the
  (small) plaintext, solved by baby-step/giant-step.

The exponential variant is what [10] uses for ballots; it is only
practical for small message spaces, which is precisely why our default
instantiation of private matching uses Paillier while ElGamal backs the
comparison benchmarks.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from repro.crypto import instrumentation
from repro.crypto.commutative import CommutativeGroup
from repro.crypto.numtheory import modinv, powmod
from repro.errors import DecryptionError, EncryptionError, KeyError_


@dataclass(frozen=True)
class ElGamalPublicKey:
    """Group, generator ``g`` of QR_p, and public element ``h = g^x``."""

    group: CommutativeGroup
    g: int
    h: int


@dataclass(frozen=True)
class ElGamalPrivateKey:
    public_key: ElGamalPublicKey
    x: int


@dataclass(frozen=True)
class ElGamalCiphertext:
    c1: int
    c2: int
    public_key: ElGamalPublicKey


def generate_keypair(group: CommutativeGroup) -> ElGamalPrivateKey:
    """Key pair over QR_p; ``g`` is a random group element (order q)."""
    instrumentation.record("elgamal.keygen")
    q = group.q
    g = group.random_element()
    while g == 1:
        g = group.random_element()
    x = 1 + secrets.randbelow(q - 1)
    h = powmod(g, x, group.p)
    return ElGamalPrivateKey(ElGamalPublicKey(group, g, h), x)


def _fresh_nonce(q: int) -> int:
    instrumentation.record("random.elgamal_nonce")
    return 1 + secrets.randbelow(q - 1)


@dataclass(frozen=True)
class ElGamalPrecomputation:
    """Fixed-base tables for the two per-encryption exponentiations.

    Every ElGamal encryption computes ``g^r`` and ``h^r`` for the *same*
    ``g`` and ``h``; :func:`precompute` builds windowed tables (see
    :class:`repro.crypto.engine.FixedBaseTable`) that replace both full
    ladders with a handful of modular multiplications.  The trade-off is
    memory — roughly ``2 * 2^window * |p|^2 / (8 * window)`` bytes per
    key — which is why tables are built explicitly, not on first use,
    and why each build is checked against the ``REPRO_FIXED_BASE_MAX_MB``
    budget: an over-budget table comes back as ``None`` (a counted
    skip) and :func:`encrypt` falls back to the plain ladder.
    """

    public_key: ElGamalPublicKey
    g_table: object
    h_table: object


def precompute(public_key: ElGamalPublicKey, window: int = 5) -> ElGamalPrecomputation:
    """Build fixed-base tables for ``public_key``'s ``g`` and ``h``.

    Tables that would exceed the fixed-base memory budget are skipped
    (left as ``None``); the precomputation stays usable and encryption
    silently degrades to plain exponentiation for the skipped base.
    """
    from repro.crypto.engine import FixedBaseTable

    group = public_key.group
    bits = group.q.bit_length()
    return ElGamalPrecomputation(
        public_key=public_key,
        g_table=FixedBaseTable.build(public_key.g, group.p, bits, window),
        h_table=FixedBaseTable.build(public_key.h, group.p, bits, window),
    )


def encrypt(
    public_key: ElGamalPublicKey,
    message: int,
    precomputation: ElGamalPrecomputation | None = None,
) -> ElGamalCiphertext:
    """Multiplicative ElGamal; ``message`` must be an element of QR_p."""
    group = public_key.group
    if not group.contains(message):
        raise EncryptionError("message is not in the QR_p message space")
    if precomputation is not None and precomputation.public_key != public_key:
        raise KeyError_("precomputation tables built for a different key")
    instrumentation.record("elgamal.encrypt")
    r = _fresh_nonce(group.q)
    g_table = None if precomputation is None else precomputation.g_table
    h_table = None if precomputation is None else precomputation.h_table
    if g_table is None:
        c1 = powmod(public_key.g, r, group.p)
    else:
        c1 = g_table.pow(r)
    if h_table is None:
        c2 = message * powmod(public_key.h, r, group.p) % group.p
    else:
        c2 = message * h_table.pow(r) % group.p
    return ElGamalCiphertext(c1, c2, public_key)


def decrypt(private_key: ElGamalPrivateKey, ciphertext: ElGamalCiphertext) -> int:
    """Inverse of :func:`encrypt`."""
    if ciphertext.public_key != private_key.public_key:
        raise KeyError_("ciphertext was produced under a different key")
    instrumentation.record("elgamal.decrypt")
    p = private_key.public_key.group.p
    shared = powmod(ciphertext.c1, private_key.x, p)
    return ciphertext.c2 * modinv(shared, p) % p


def multiply(a: ElGamalCiphertext, b: ElGamalCiphertext) -> ElGamalCiphertext:
    """Homomorphic multiplication: ``E(x) * E(y) = E(x * y)``."""
    if a.public_key != b.public_key:
        raise KeyError_("cannot combine ciphertexts under different keys")
    instrumentation.record("elgamal.multiply")
    p = a.public_key.group.p
    return ElGamalCiphertext(a.c1 * b.c1 % p, a.c2 * b.c2 % p, a.public_key)


def encrypt_exponential(
    public_key: ElGamalPublicKey, message: int
) -> ElGamalCiphertext:
    """Exponential (additively homomorphic) ElGamal: encrypts ``g^m``."""
    group = public_key.group
    if not 0 <= message < group.q:
        raise EncryptionError("exponential ElGamal message out of range")
    instrumentation.record("elgamal.encrypt_exponential")
    r = _fresh_nonce(group.q)
    c1 = powmod(public_key.g, r, group.p)
    c2 = powmod(public_key.g, message, group.p) * powmod(public_key.h, r, group.p)
    return ElGamalCiphertext(c1, c2 % group.p, public_key)


def add(a: ElGamalCiphertext, b: ElGamalCiphertext) -> ElGamalCiphertext:
    """Homomorphic addition for the exponential variant."""
    return multiply(a, b)


def scalar_multiply(a: ElGamalCiphertext, scalar: int) -> ElGamalCiphertext:
    """Homomorphic scalar multiplication for the exponential variant."""
    instrumentation.record("elgamal.scalar_multiply")
    group = a.public_key.group
    scalar %= group.q
    return ElGamalCiphertext(
        powmod(a.c1, scalar, group.p), powmod(a.c2, scalar, group.p), a.public_key
    )


def decrypt_exponential(
    private_key: ElGamalPrivateKey,
    ciphertext: ElGamalCiphertext,
    max_message: int,
) -> int:
    """Decrypt an exponential ciphertext with plaintext in [0, max_message].

    Recovers ``g^m`` and solves the discrete log with baby-step/giant-step
    in ``O(sqrt(max_message))`` group operations.
    """
    instrumentation.record("elgamal.decrypt_exponential")
    p = private_key.public_key.group.p
    g = private_key.public_key.g
    shared = powmod(ciphertext.c1, private_key.x, p)
    target = ciphertext.c2 * modinv(shared, p) % p
    m = _baby_step_giant_step(g, target, p, max_message)
    if m is None:
        raise DecryptionError(
            f"plaintext exceeds the discrete-log bound {max_message}"
        )
    return m


def _baby_step_giant_step(g: int, target: int, p: int, bound: int) -> int | None:
    """Solve ``g^m = target (mod p)`` for ``0 <= m <= bound``."""
    if target == 1:
        return 0
    step = math.isqrt(bound) + 1
    baby: dict[int, int] = {}
    value = 1
    for j in range(step):
        baby.setdefault(value, j)
        value = value * g % p
    giant_stride = modinv(powmod(g, step, p), p)
    gamma = target
    for i in range(step + 1):
        if gamma in baby:
            m = i * step + baby[gamma]
            if m <= bound:
                return m
        gamma = gamma * giant_stride % p
    return None
