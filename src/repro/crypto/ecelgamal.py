"""Additively homomorphic elliptic-curve ElGamal.

The elliptic-curve ElGamal variant cited by the paper ([10], the
Cramer-Gennaro-Schoenmakers election scheme) encodes a plaintext ``m`` as
the point ``m * G`` and encrypts it as

    E(m) = (r * G,  m * G + r * H),        H = x * G the public key.

Ciphertext addition is component-wise point addition, so the scheme is
additively homomorphic; decryption recovers ``m * G`` and then solves a
small discrete logarithm (baby-step/giant-step over points).  As with
exponential ElGamal this limits practical plaintexts to small ranges,
which the comparison benchmarks quantify against Paillier.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from repro.crypto import instrumentation
from repro.crypto.ec import Curve, Point
from repro.errors import DecryptionError, EncryptionError, KeyError_


@dataclass(frozen=True)
class ECElGamalPublicKey:
    curve: Curve
    h: Point  # x * G


@dataclass(frozen=True)
class ECElGamalPrivateKey:
    public_key: ECElGamalPublicKey
    x: int


@dataclass(frozen=True)
class ECElGamalCiphertext:
    c1: Point
    c2: Point
    public_key: ECElGamalPublicKey

    def __add__(self, other: "ECElGamalCiphertext") -> "ECElGamalCiphertext":
        return add(self, other)

    def __mul__(self, scalar: int) -> "ECElGamalCiphertext":
        return scalar_multiply(self, scalar)

    __rmul__ = __mul__


def generate_keypair(curve: Curve) -> ECElGamalPrivateKey:
    instrumentation.record("ecelgamal.keygen")
    x = 1 + secrets.randbelow(curve.n - 1)
    h = x * curve.generator
    return ECElGamalPrivateKey(ECElGamalPublicKey(curve, h), x)


def encrypt(public_key: ECElGamalPublicKey, message: int) -> ECElGamalCiphertext:
    """Encrypt an integer in ``[0, n)`` (encoded as ``message * G``)."""
    curve = public_key.curve
    if not 0 <= message < curve.n:
        raise EncryptionError("EC-ElGamal message out of scalar range")
    instrumentation.record("ecelgamal.encrypt")
    instrumentation.record("random.ecelgamal_nonce")
    r = 1 + secrets.randbelow(curve.n - 1)
    c1 = r * curve.generator
    c2 = message * curve.generator + r * public_key.h
    return ECElGamalCiphertext(c1, c2, public_key)


def add(a: ECElGamalCiphertext, b: ECElGamalCiphertext) -> ECElGamalCiphertext:
    """Homomorphic addition: ``E(x) + E(y) = E(x + y mod n)``."""
    if a.public_key != b.public_key:
        raise KeyError_("cannot add ciphertexts under different keys")
    instrumentation.record("ecelgamal.add")
    return ECElGamalCiphertext(a.c1 + b.c1, a.c2 + b.c2, a.public_key)


def scalar_multiply(a: ECElGamalCiphertext, scalar: int) -> ECElGamalCiphertext:
    """Homomorphic scalar multiplication: ``gamma * E(x) = E(gamma * x)``."""
    instrumentation.record("ecelgamal.scalar_multiply")
    scalar %= a.public_key.curve.n
    return ECElGamalCiphertext(scalar * a.c1, scalar * a.c2, a.public_key)


def decrypt(
    private_key: ECElGamalPrivateKey,
    ciphertext: ECElGamalCiphertext,
    max_message: int,
) -> int:
    """Decrypt with plaintext known to lie in ``[0, max_message]``."""
    if ciphertext.public_key != private_key.public_key:
        raise KeyError_("ciphertext was produced under a different key")
    instrumentation.record("ecelgamal.decrypt")
    target = ciphertext.c2 - private_key.x * ciphertext.c1
    m = _point_bsgs(private_key.public_key.curve, target, max_message)
    if m is None:
        raise DecryptionError(
            f"plaintext exceeds the discrete-log bound {max_message}"
        )
    return m


def _point_bsgs(curve: Curve, target: Point, bound: int) -> int | None:
    """Solve ``m * G = target`` for ``0 <= m <= bound``."""
    generator = curve.generator
    if target.is_infinity:
        return 0
    step = math.isqrt(bound) + 1
    baby: dict[Point, int] = {}
    value = curve.infinity
    for j in range(step):
        baby.setdefault(value, j)
        value = value + generator
    stride = -(step * generator)
    gamma = target
    for i in range(step + 1):
        if gamma in baby:
            m = i * step + baby[gamma]
            if m <= bound:
                return m
        gamma = gamma + stride
    return None
