"""Commutative encryption over quadratic residues (SRA / Pohlig-Hellman).

Section 4 of the paper requires a commutative encryption function

    f_e : dom_f -> dom_f     with     f_e1 o f_e2 = f_e2 o f_e1,

each ``f_e`` a bijection with a polynomial-time computable inverse, and a
secrecy property making ``f_e(y)`` indistinguishable from random.  The
reference construction (Agrawal et al. [1]) is exponentiation in the
group of quadratic residues modulo a *safe prime* ``p = 2q + 1``:

    f_e(x) = x^e mod p,    x in QR_p,    gcd(e, q) = 1.

* QR_p has prime order ``q``, so every exponent coprime to ``q`` is a
  bijection on it, with inverse exponent ``e^-1 mod q``.
* Commutativity: ``(x^e1)^e2 = (x^e2)^e1``.
* Secrecy rests on the Decisional Diffie-Hellman assumption in QR_p,
  which is exactly why inputs are first hashed into the group by the
  ideal hash of :class:`repro.crypto.hashes.IdealHash`.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass

from repro.crypto import instrumentation
from repro.crypto.numtheory import is_safe_prime, jacobi, modinv, powmod
from repro.errors import KeyError_, ParameterError


@dataclass(frozen=True)
class CommutativeGroup:
    """The shared domain of the commutative cipher: QR_p for safe prime p.

    Both datasources must agree on the same group (the mediator
    distributes it with the join-attribute announcement); keys are
    per-source and secret.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 23:
            raise ParameterError("commutative group modulus too small")
        if self.p % 4 != 3:
            # Safe primes > 5 are always = 3 (mod 4); this cheap check
            # rejects obviously wrong moduli without a primality test.
            raise ParameterError("modulus of a safe prime group must be 3 mod 4")

    @property
    def q(self) -> int:
        """Order of the QR subgroup."""
        return (self.p - 1) // 2

    def contains(self, x: int) -> bool:
        """Membership test for QR_p via the Jacobi symbol.

        For a prime modulus the Jacobi symbol equals the Legendre
        symbol, so this is exact — and it costs a binary-GCD-style loop
        instead of the full Euler-criterion exponentiation (an order of
        magnitude cheaper at production group sizes; see
        :func:`euler_contains` for the exponentiation-based reference).
        """
        return 0 < x < self.p and jacobi(x, self.p) == 1

    def random_element(self) -> int:
        """Uniform random element of QR_p (square of a random unit)."""
        x = 1 + secrets.randbelow(self.p - 1)
        return x * x % self.p

    def verify(self) -> bool:
        """Full (probabilistic) check that ``p`` really is a safe prime."""
        return is_safe_prime(self.p)


@dataclass(frozen=True)
class CommutativeKey:
    """A secret exponent for one party, bound to its group."""

    group: CommutativeGroup
    exponent: int

    def __post_init__(self) -> None:
        q = self.group.q
        if not 1 <= self.exponent < q:
            raise KeyError_("commutative key exponent out of range")
        if math.gcd(self.exponent, q) != 1:
            raise KeyError_("commutative key exponent must be coprime to q")

    def inverse(self) -> "CommutativeKey":
        """Key whose application undoes this one (d = e^-1 mod q)."""
        return CommutativeKey(self.group, modinv(self.exponent, self.group.q))


def generate_key(group: CommutativeGroup) -> CommutativeKey:
    """Fresh uniformly random key for ``group``."""
    instrumentation.record("commutative.keygen")
    instrumentation.record("random.commutative_key")
    q = group.q
    while True:
        e = 1 + secrets.randbelow(q - 1)
        if math.gcd(e, q) == 1:
            return CommutativeKey(group, e)


def euler_contains(group: CommutativeGroup, x: int) -> bool:
    """QR_p membership by the Euler criterion: ``x^q = 1 (mod p)``.

    The pre-engine implementation of :meth:`CommutativeGroup.contains`,
    kept as the independent reference the Jacobi-based test is
    property-checked against, and as the faithful cost model for the
    legacy benchmark baseline (one full exponentiation per test).
    """
    return 0 < x < group.p and powmod(x, group.q, group.p) == 1


def apply(key: CommutativeKey, x: int) -> int:
    """Compute ``f_e(x) = x^e mod p`` for ``x`` in QR_p."""
    group = key.group
    if not group.contains(x):
        raise ParameterError("input is not in the quadratic-residue domain")
    instrumentation.record("commutative.encrypt")
    return powmod(x, key.exponent, group.p)


def invert(key: CommutativeKey, y: int) -> int:
    """Compute ``f_e^{-1}(y)``, i.e. recover ``x`` with ``f_e(x) = y``."""
    group = key.group
    if not group.contains(y):
        raise ParameterError("input is not in the quadratic-residue domain")
    instrumentation.record("commutative.decrypt")
    return powmod(y, key.inverse().exponent, group.p)
