"""Elliptic-curve arithmetic over prime fields.

Backs the elliptic-curve ElGamal variant the paper cites ([10]) as an
alternative homomorphic scheme for private matching.  Implemented from
scratch: short Weierstrass curves ``y^2 = x^3 + a*x + b`` over ``F_p``
with affine point addition and double-and-add scalar multiplication.

Two named curves ship with the library:

* ``P256`` — the NIST P-256 parameters, for realistic key sizes;
* ``TINY`` — a small curve of prime order used by fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.numtheory import modinv, is_quadratic_residue, sqrt_mod_prime
from repro.errors import ParameterError


@dataclass(frozen=True)
class Curve:
    """Short Weierstrass curve with a base point of prime order ``n``."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int

    def __post_init__(self) -> None:
        if (4 * self.a ** 3 + 27 * self.b ** 2) % self.p == 0:
            raise ParameterError(f"curve {self.name} is singular")

    @property
    def generator(self) -> "Point":
        return Point(self, self.gx, self.gy)

    @property
    def infinity(self) -> "Point":
        return Point(self, None, None)

    def contains(self, x: int, y: int) -> bool:
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def lift_x(self, x: int) -> "Point | None":
        """Return a point with the given x-coordinate, if one exists."""
        rhs = (x * x * x + self.a * x + self.b) % self.p
        if rhs == 0:
            return Point(self, x, 0)
        if not is_quadratic_residue(rhs, self.p):
            return None
        return Point(self, x, sqrt_mod_prime(rhs, self.p))


class Point:
    """An affine curve point; ``x is None`` encodes the point at infinity."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: Curve, x: int | None, y: int | None) -> None:
        if (x is None) != (y is None):
            raise ParameterError("both coordinates must be None for infinity")
        if x is not None and not curve.contains(x, y):
            raise ParameterError(f"({x}, {y}) is not on curve {curve.name}")
        self.curve = curve
        self.x = x
        self.y = y

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Point)
            and self.curve == other.curve
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "Point") -> "Point":
        if self.curve != other.curve:
            raise ParameterError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.p
        if self.x == other.x and (self.y + other.y) % p == 0:
            return self.curve.infinity
        if self == other:
            slope = (3 * self.x * self.x + self.curve.a) * modinv(2 * self.y, p) % p
        else:
            slope = (other.y - self.y) * modinv(other.x - self.x, p) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        """Double-and-add scalar multiplication."""
        scalar %= self.curve.n
        result = self.curve.infinity
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    __rmul__ = __mul__

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"Point({self.curve.name}, infinity)"
        return f"Point({self.curve.name}, {self.x}, {self.y})"


#: NIST P-256 (secp256r1) domain parameters.
P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3 % 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

#: A small prime-order curve for fast unit tests:
#: y^2 = x^3 + x + 28 over F_10007 has exactly 9851 points (prime), so
#: every point generates the full group.  Parameters were found by an
#: exhaustive offline scan and are re-verified by the test suite.
TINY = Curve(
    name="tiny",
    p=10007,
    a=1,
    b=28,
    gx=2,
    gy=4582,
    n=9851,
)


def brute_force_order(point: Point) -> int:
    """Order of ``point`` by repeated addition (small test curves only)."""
    accumulator = point
    order = 1
    while not accumulator.is_infinity:
        accumulator = accumulator + point
        order += 1
        if order > point.curve.p * 2:
            raise ParameterError("failed to find point order")
    return order
