"""Concurrent load generation: N client sessions against one serve trio.

The sessionised stack claims that one set of endpoints can serve many
interleaved join queries (see ``docs/transport.md``).  This module is
the instrument that demonstrates it: :func:`run_load` drives ``N``
client workers — each with its own :class:`~repro.transport.TcpTransport`
and its own :func:`~repro.session.session_scope` — against a single
mediator/S1/S2 endpoint trio, and reports throughput, tail latency, and
per-session trace stitching.

Two topologies:

* **in-process trio** (the default): :func:`run_load` hosts the three
  endpoints itself on ephemeral loopback ports, so one command measures
  the whole stack.  ``ack_delay`` simulates a link round-trip at the
  endpoints — the latency concurrent sessions are expected to overlap.
* **remote trio**: pass ``endpoints`` pointing at ``repro serve``
  processes and the generator only runs the client side.

Setup (key generation, TCP handshakes, federation wiring) happens
*before* the clock starts; the measured window covers query execution
only, so sequential (``concurrency=1``) and concurrent runs of the same
config are directly comparable — their ratio is the concurrency
speedup ``benchmarks/bench_concurrent_sessions.py`` gates on.

Used by the ``repro loadgen`` CLI command and the concurrency
benchmark; the JSON form (:meth:`LoadReport.to_dict`) feeds the CI
perf-regression gate (``scripts/check_perf_regression.py``).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.cluster import LocalCluster

from repro.core.federation import Federation
from repro.core.runner import PROTOCOLS, crypto_context, run_join_query
from repro.errors import ProtocolError, ReproError
from repro.mediation.access_control import allow_all
from repro.mediation.ca import CertificationAuthority
from repro.mediation.client import default_homomorphic_scheme, setup_client
from repro.relational.datagen import WorkloadSpec, generate
from repro.storage import storage_from_spec
from repro.telemetry.tracing import Tracer, use_tracer
from repro.transport import RetryPolicy, TcpTransport
from repro.transport.server import DEFAULT_MAX_SESSIONS

#: The parties a serve trio consists of.
TRIO = ("mediator", "S1", "S2")

#: The global query every load session runs.
QUERY = "select * from R1 natural join R2"


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load run (workload, concurrency, endpoint knobs)."""

    #: Number of client sessions (each gets its own transport and
    #: session id).
    sessions: int = 8
    #: Queries each session runs back to back.
    queries_per_session: int = 1
    #: Worker threads running sessions; ``None`` means fully concurrent
    #: (= ``sessions``), ``1`` is the sequential baseline.
    concurrency: int | None = None
    protocol: str = "commutative"
    #: Simulated link round-trip applied per message at locally hosted
    #: endpoints — the latency concurrent sessions overlap.  Ignored
    #: for a remote trio.
    ack_delay: float = 0.0
    #: Session capacity of locally hosted endpoints (BUSY above it).
    max_sessions: int = DEFAULT_MAX_SESSIONS
    #: Synthetic workload shape (see :mod:`repro.relational.datagen`).
    domain: int = 8
    overlap: int = 4
    rows_per_value: int = 1
    seed: int = 2007
    rsa_bits: int = 1024
    paillier_bits: int = 1024
    #: Acknowledgement budget per message.  Concurrent sessions queue
    #: behind each other's ``ack_delay`` at the endpoint, so this must
    #: cover ``sessions * ack_delay`` with headroom.
    io_timeout: float = 60.0
    #: Storage backend spec (``"memory"`` or ``"sqlite:PATH"``); one
    #: backend is shared by all sessions, so a series of queries over
    #: the same relations amortizes its encrypted indexes across the
    #: whole load run.  ``None`` disables storage (the legacy shape).
    storage_spec: str | None = None
    #: Cluster mode: host ``shards`` mediator shard endpoints behind a
    #: session-affine :class:`~repro.cluster.router.ShardRouter` instead
    #: of a single mediator endpoint (``docs/cluster.md``).  With
    #: ``endpoints`` given, the mediator endpoint is assumed to *be* a
    #: router and per-shard stats are fetched from it (STATS frame).
    cluster: bool = False
    shards: int = 2
    #: Worker slots per mediator shard in cluster mode (``None`` keeps
    #: the server default); the knob the scaling benchmark uses to
    #: model per-shard service capacity.
    shard_max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ProtocolError("loadgen needs at least one session")
        if self.queries_per_session < 1:
            raise ProtocolError("loadgen needs at least one query per session")
        if self.concurrency is not None and self.concurrency < 1:
            raise ProtocolError("loadgen concurrency must be >= 1")
        if self.shards < 1:
            raise ProtocolError("loadgen needs at least one shard")
        if self.protocol not in PROTOCOLS:
            raise ProtocolError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOLS)}"
            )

    @property
    def effective_concurrency(self) -> int:
        return self.concurrency if self.concurrency is not None else self.sessions


@dataclass(frozen=True)
class QueryOutcome:
    """One query of one session: latency, result size, success."""

    session: str
    query_index: int
    seconds: float
    rows: int
    ok: bool
    error: str | None = None


@dataclass
class LoadReport:
    """The measured outcome of one :func:`run_load` invocation."""

    protocol: str
    sessions: int
    queries_per_session: int
    concurrency: int
    ack_delay: float
    #: Wall-clock of the measured window (setup excluded).
    wall_seconds: float
    outcomes: list[QueryOutcome] = field(default_factory=list)
    #: session id -> {"spans": client spans, "traces": distinct trace
    #: ids, "endpoint_spans": recv spans at the trio} — the stitching
    #: evidence: every session's activity is separable from the rest.
    stitching: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Aggregated index-cache statistics when the load ran over a
    #: storage backend (None otherwise).
    storage: dict[str, Any] | None = None
    #: Crypto self-description: bigint backend, engine mode, workers —
    #: makes the JSON report comparable across hosts and backends.
    crypto: dict[str, Any] | None = None
    #: Cluster evidence when the load ran against a sharded mediator
    #: fleet (None otherwise): shard count, the router's
    #: ``repro-router/1`` stats document, and — for an in-process
    #: fleet — data messages recorded per shard.
    cluster: dict[str, Any] | None = None

    # -- derived metrics ---------------------------------------------------

    @property
    def completed(self) -> list[QueryOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failed(self) -> list[QueryOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def throughput(self) -> float:
        """Completed queries per second of wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.completed) / self.wall_seconds

    def latency(self, fraction: float) -> float:
        """The ``fraction`` latency quantile (0.5 = median) in seconds."""
        values = sorted(outcome.seconds for outcome in self.completed)
        if not values:
            return 0.0
        rank = max(1, math.ceil(fraction * len(values)))
        return values[min(rank, len(values)) - 1]

    @property
    def consistent(self) -> bool:
        """All completed queries produced the same number of rows."""
        return len({outcome.rows for outcome in self.completed}) <= 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-loadgen/1",
            "protocol": self.protocol,
            "sessions": self.sessions,
            "queries_per_session": self.queries_per_session,
            "concurrency": self.concurrency,
            "ack_delay": self.ack_delay,
            "wall_seconds": self.wall_seconds,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "throughput": self.throughput,
            "latency_p50": self.latency(0.50),
            "latency_p95": self.latency(0.95),
            "latency_max": self.latency(1.0),
            "consistent_results": self.consistent,
            "stitching": self.stitching,
            "storage": self.storage,
            "crypto": self.crypto,
            "cluster": self.cluster,
            "outcomes": [
                {
                    "session": outcome.session,
                    "query_index": outcome.query_index,
                    "seconds": outcome.seconds,
                    "rows": outcome.rows,
                    "ok": outcome.ok,
                    "error": outcome.error,
                }
                for outcome in self.outcomes
            ],
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"loadgen: {self.sessions} sessions x "
            f"{self.queries_per_session} queries, protocol "
            f"{self.protocol}, concurrency {self.concurrency}, "
            f"ack_delay {self.ack_delay * 1000:.0f}ms",
            f"  wall       {self.wall_seconds:8.3f} s",
            f"  completed  {len(self.completed):5d}   failed {len(self.failed)}",
            f"  throughput {self.throughput:8.2f} queries/s",
            f"  latency    p50 {self.latency(0.50):.3f}s   "
            f"p95 {self.latency(0.95):.3f}s   max {self.latency(1.0):.3f}s",
        ]
        if self.stitching:
            spans = sum(entry["spans"] for entry in self.stitching.values())
            endpoint = sum(
                entry.get("endpoint_spans", 0)
                for entry in self.stitching.values()
            )
            lines.append(
                f"  stitching  {len(self.stitching)} sessions, "
                f"{spans} client spans, {endpoint} endpoint spans"
            )
        if self.cluster is not None:
            router = self.cluster.get("router") or {}
            shard_bits = ", ".join(
                f"{shard['label']}={shard['sessions']}s/{shard['frames']}f"
                f"{'+' + str(shard['busy_redirects']) + 'busy' if shard['busy_redirects'] else ''}"
                for shard in router.get("shards", [])
            )
            lines.append(
                f"  cluster    {self.cluster['shards']} shards"
                + (f": {shard_bits}" if shard_bits else "")
            )
        if self.crypto is not None:
            lines.append(
                f"  crypto     backend={self.crypto['backend']} "
                f"mode={self.crypto['engine_mode']} "
                f"workers={self.crypto['workers']}"
            )
        if self.storage is not None:
            lines.append(
                f"  storage    [{self.storage['backend']}] "
                f"hits={self.storage['hits']} "
                f"misses={self.storage['misses']} "
                f"puts={self.storage['puts']} "
                f"errors={self.storage['errors']}"
            )
        for outcome in self.failed:
            lines.append(
                f"  FAILED {outcome.session}[{outcome.query_index}]: "
                f"{outcome.error}"
            )
        return "\n".join(lines)


@dataclass
class _Worker:
    """One prepared client session (built before the clock starts)."""

    session_id: str
    transport: TcpTransport
    federation: Federation


def run_load(
    config: LoadgenConfig,
    endpoints: Mapping[str, tuple[str, int]] | None = None,
) -> LoadReport:
    """Drive the configured load and measure it.

    With ``endpoints=None`` the serve trio is hosted in-process (with
    ``config.ack_delay`` and ``config.max_sessions`` applied); otherwise
    the mapping must name listening ``mediator``/``S1``/``S2``
    endpoints, typically ``repro serve`` processes.
    """
    workload = generate(
        WorkloadSpec(
            domain_1=config.domain,
            domain_2=config.domain,
            overlap=config.overlap,
            rows_per_value_1=config.rows_per_value,
            rows_per_value_2=config.rows_per_value,
            payload_attributes=1,
            seed=config.seed,
        )
    )
    ca = CertificationAuthority(key_bits=config.rsa_bits)
    client = setup_client(
        ca,
        "loadgen-client",
        {("role", "analyst")},
        rsa_bits=config.rsa_bits,
        homomorphic_scheme=default_homomorphic_scheme(config.paillier_bits),
    )
    retry = RetryPolicy(io_timeout=config.io_timeout)
    hub: TcpTransport | None = None
    cluster: "LocalCluster | None" = None
    remote_router = config.cluster and endpoints is not None
    workers: list[_Worker] = []
    tracer = Tracer(service="loadgen")
    storage = storage_from_spec(config.storage_spec)
    try:
        if endpoints is None and config.cluster:
            from repro.cluster import LocalCluster

            shard_options: dict[str, Any] = {
                "ack_delay": config.ack_delay,
                "max_sessions": config.max_sessions,
            }
            if config.shard_max_workers is not None:
                shard_options["max_workers"] = config.shard_max_workers
            cluster = LocalCluster(
                config.shards,
                sources=TRIO[1:],
                shard_options=shard_options,
                source_options={"max_sessions": config.max_sessions},
            )
            endpoints = dict(cluster.endpoints)
        elif endpoints is None:
            hub = TcpTransport(
                retry=retry,
                server_options={
                    "ack_delay": config.ack_delay,
                    "max_sessions": config.max_sessions,
                },
            )
            for party in TRIO:
                hub.register(party)
            endpoints = {party: hub.endpoint_of(party) for party in TRIO}
        for index in range(config.sessions):
            transport = TcpTransport(endpoints=dict(endpoints), retry=retry)
            federation = Federation(ca=ca, network=transport, storage=storage)
            federation.add_source("S1", [(workload.relation_1, allow_all())])
            federation.add_source("S2", [(workload.relation_2, allow_all())])
            federation.attach_client(client)
            workers.append(
                _Worker(
                    session_id=f"load-{index:04d}",
                    transport=transport,
                    federation=federation,
                )
            )

        with use_tracer(tracer):
            started = time.perf_counter()
            with ThreadPoolExecutor(
                max_workers=config.effective_concurrency,
                thread_name_prefix="loadgen",
            ) as pool:
                per_worker = list(
                    pool.map(
                        lambda worker: _run_worker(worker, config), workers
                    )
                )
            wall_seconds = time.perf_counter() - started

        report = LoadReport(
            protocol=config.protocol,
            sessions=config.sessions,
            queries_per_session=config.queries_per_session,
            concurrency=config.effective_concurrency,
            ack_delay=config.ack_delay,
            wall_seconds=wall_seconds,
            outcomes=[outcome for outcomes in per_worker for outcome in outcomes],
        )
        report.stitching = _stitch(tracer, workers, hub, cluster)
        report.crypto = crypto_context()
        if cluster is not None:
            report.cluster = {
                "shards": config.shards,
                "router": cluster.stats(),
                "per_shard_records": cluster.shard_records(),
            }
        elif remote_router:
            report.cluster = _remote_cluster_stats(endpoints)
        if storage is not None:
            totals = {"hits": 0, "misses": 0, "puts": 0, "errors": 0}
            for worker in workers:
                for source in worker.federation.sources.values():
                    cache = source.index_cache()
                    if cache is None:
                        continue
                    stats = cache.stats.as_dict()
                    for key in totals:
                        totals[key] += stats[key]
            report.storage = {"backend": storage.describe(), **totals}
        return report
    finally:
        for worker in workers:
            worker.transport.close()
        if hub is not None:
            hub.close()
        if cluster is not None:
            cluster.close()
        if storage is not None:
            storage.close()


def _run_worker(worker: _Worker, config: LoadgenConfig) -> list[QueryOutcome]:
    """Execute one session's query sequence, catching per-query failures."""
    outcomes = []
    for query_index in range(config.queries_per_session):
        started = time.perf_counter()
        try:
            result = run_join_query(
                worker.federation,
                QUERY,
                protocol=config.protocol,
                session_id=worker.session_id,
            )
            outcomes.append(
                QueryOutcome(
                    session=worker.session_id,
                    query_index=query_index,
                    seconds=time.perf_counter() - started,
                    rows=len(result.global_result),
                    ok=True,
                )
            )
        except ReproError as exc:
            outcomes.append(
                QueryOutcome(
                    session=worker.session_id,
                    query_index=query_index,
                    seconds=time.perf_counter() - started,
                    rows=0,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return outcomes


def _remote_cluster_stats(
    endpoints: Mapping[str, tuple[str, int]],
) -> dict[str, Any] | None:
    """Per-shard stats from a remote router's STATS frame, if it is one."""
    from repro.cluster import fetch_router_stats
    from repro.errors import NetworkError

    host, port = endpoints[TRIO[0]]
    try:
        stats = fetch_router_stats(host, port)
    except NetworkError:
        # The mediator endpoint is a plain (unsharded) serve process.
        return None
    return {"shards": len(stats.get("shards", [])), "router": stats}


def _stitch(
    tracer: Tracer,
    workers: list[_Worker],
    hub: TcpTransport | None,
    cluster: "LocalCluster | None" = None,
) -> dict[str, dict[str, int]]:
    """Per-session trace evidence: client spans, distinct traces, and —
    for an in-process trio or cluster — the ``recv:`` spans each
    endpoint (every shard included) keyed under the same session id."""
    stitching: dict[str, dict[str, int]] = {}
    snapshots = []
    if hub is not None:
        for party in TRIO:
            server = hub.local_server(party)
            if server is not None:
                snapshots.append(server.telemetry_snapshot())
    if cluster is not None:
        snapshots.extend(cluster.telemetry_snapshots())
    for worker in workers:
        session_id = worker.session_id
        spans = [
            span
            for span in tracer.spans
            if span.attributes.get("session") == session_id
        ]
        endpoint_spans = sum(
            1
            for snapshot in snapshots
            for span in snapshot.get("spans", [])
            if span.get("attributes", {}).get("session") == session_id
        )
        stitching[session_id] = {
            "spans": len(spans),
            "traces": len({span.trace_id for span in spans}),
            "endpoint_spans": endpoint_spans,
        }
    return stitching
