"""Length-prefixed binary codec for protocol messages.

Everything the three delivery protocols put on the bus — ciphertexts,
index tables, tagged message sets, encrypted polynomial coefficients,
credentials — must survive a real wire.  This module defines:

* a **value codec**: a recursive, type-tagged binary encoding of the
  payload trees the protocols exchange (primitives, containers, and a
  registry of domain extension types),
* an **envelope codec**: the ``(sequence, sender, receiver, kind, body)``
  tuple every transmitted message is wrapped in, optionally extended
  with a sixth ``(trace_id, span_id)`` element carrying distributed
  trace context (see ``docs/observability.md``), a seventh
  ``request_id`` string that endpoints deduplicate re-deliveries on
  (see ``docs/robustness.md``), and an eighth ``session_id`` string
  that endpoints key per-session protocol state by (see
  ``docs/transport.md``),
* **framing**: an 8-byte frame header (magic, version, frame type,
  payload length) plus asyncio stream helpers.

Wire format (all integers big-endian)::

    frame   := magic(2) version(1) type(1) length(4) payload(length)
    payload := value                      -- one encoded value tree
    value   := tag(1) tag-specific-body

Value tags::

    0x00 None            0x01 False           0x02 True
    0x03 int    u32 length + signed big-endian two's complement
    0x04 float  IEEE-754 double (8 bytes)
    0x05 bytes  u32 length + raw
    0x06 str    u32 length + UTF-8
    0x07 list   u32 count + values       0x08 tuple  (same body)
    0x09 dict   u32 count + key/value value pairs
    0x0A set    u32 count + values       0x0B frozenset (same body)
    0x0C ext    u8 name length + ASCII name + packed value
    0x0D ref    u32 index into the stream's interning table

**Extensions** cover the domain types (hybrid/Paillier/ElGamal/EC
ciphertexts, index tables, DAS relations, credentials, ...).  Public
keys, groups, and curves are **interned**: the first occurrence in a
stream is encoded in full and appended to an interning table that both
encoder and decoder maintain in stream order; later occurrences encode
as a 5-byte ``ref``.  A message carrying a thousand Paillier ciphertexts
therefore ships the public modulus once, not a thousand times — this is
what keeps actual wire bytes close to the structural estimates of
:func:`repro.mediation.sizing.estimate_size`.

The registry is populated lazily on first use so that importing the
codec does not drag in the whole protocol stack.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable

from repro.errors import CodecError, FrameCodecError, ValueCodecError

# -- framing constants --------------------------------------------------------

MAGIC = b"SM"
VERSION = 1
#: magic(2) + version(1) + frame type(1) + payload length(4).
FRAME_HEADER_BYTES = 8
#: Refuse frames above this size instead of exhausting memory.
MAX_FRAME_BYTES = 1 << 30
#: Refuse value trees nested deeper than this instead of recursing into
#: a RecursionError on adversarial input.  Protocol payloads nest a
#: handful of levels; 64 leaves a wide margin.
MAX_VALUE_DEPTH = 64

# Frame types.
DATA = 0x01    # one protocol message envelope
ACK = 0x02     # receipt acknowledgement for a DATA frame
HELLO = 0x03   # endpoint handshake request
OK = 0x04      # handshake / control success
FETCH = 0x05   # request the endpoint's recorded view
VIEW = 0x06    # response to FETCH
TELEMETRY = 0x07       # request the endpoint's spans and metrics
TELEMETRY_DATA = 0x08  # response to TELEMETRY
SESSION = 0x09         # session lifecycle control (open / close)
BUSY = 0x0A    # endpoint at session capacity: back off and retry
STATS = 0x0B           # request a shard router's routing statistics
STATS_DATA = 0x0C      # response to STATS
ERROR = 0x7F   # remote failure report

_FRAME_TYPES = {
    DATA, ACK, HELLO, OK, FETCH, VIEW,
    TELEMETRY, TELEMETRY_DATA, SESSION, BUSY, STATS, STATS_DATA, ERROR,
}

# -- value tags ---------------------------------------------------------------

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_EXT = 0x0C
_T_REF = 0x0D

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


class _Extension:
    """One registered domain type: how to take it apart and rebuild it."""

    __slots__ = ("name", "cls", "pack", "unpack", "shareable")

    def __init__(
        self,
        name: str,
        cls: type,
        pack: Callable[[Any], Any],
        unpack: Callable[[Any], Any],
        shareable: bool = False,
    ) -> None:
        self.name = name
        self.cls = cls
        self.pack = pack
        self.unpack = unpack
        self.shareable = shareable


_BY_NAME: dict[str, _Extension] = {}
_BY_CLS: dict[type, _Extension] = {}
_BOOTSTRAPPED = False


def _register(
    name: str,
    cls: type,
    pack: Callable[[Any], Any],
    unpack: Callable[[Any], Any],
    shareable: bool = False,
) -> None:
    extension = _Extension(name, cls, pack, unpack, shareable)
    _BY_NAME[name] = extension
    _BY_CLS[cls] = extension


def _bootstrap() -> None:
    """Register every domain type the protocols put on the wire.

    Imports happen here, not at module load, so the codec stays cheap to
    import and free of circular-import hazards.
    """
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True

    from repro.core.commutative import TaggedMessage
    from repro.core.das import (
        EncryptedRelation,
        EncryptedTuple,
        ServerQuery,
        ServerResult,
    )
    from repro.crypto.commutative import CommutativeGroup
    from repro.crypto.ec import Curve, Point
    from repro.crypto.ecelgamal import ECElGamalCiphertext, ECElGamalPublicKey
    from repro.crypto.elgamal import ElGamalCiphertext, ElGamalPublicKey
    from repro.crypto.hybrid import HybridCiphertext
    from repro.crypto.paillier import PaillierCiphertext, PaillierPublicKey
    from repro.crypto.rsa import RSAPublicKey
    from repro.mediation.credentials import Credential
    from repro.relational.encoding import decode_relation, encode_relation
    from repro.relational.partition import IndexTable, Partition
    from repro.relational.relation import Relation

    _register(
        "hybrid-ct",
        HybridCiphertext,
        lambda c: (dict(c.wrapped_keys), c.body),
        lambda t: HybridCiphertext(wrapped_keys=t[0], body=t[1]),
    )
    _register(
        "rsa-pub",
        RSAPublicKey,
        lambda k: (k.n, k.e),
        lambda t: RSAPublicKey(n=t[0], e=t[1]),
        shareable=True,
    )
    _register(
        "paillier-pub",
        PaillierPublicKey,
        lambda k: (k.n,),
        lambda t: PaillierPublicKey(n=t[0]),
        shareable=True,
    )
    _register(
        "paillier-ct",
        PaillierCiphertext,
        lambda c: (c.value, c.public_key),
        lambda t: PaillierCiphertext(value=t[0], public_key=t[1]),
    )
    _register(
        "qr-group",
        CommutativeGroup,
        lambda g: (g.p,),
        lambda t: CommutativeGroup(p=t[0]),
        shareable=True,
    )
    _register(
        "elgamal-pub",
        ElGamalPublicKey,
        lambda k: (k.group, k.g, k.h),
        lambda t: ElGamalPublicKey(group=t[0], g=t[1], h=t[2]),
        shareable=True,
    )
    _register(
        "elgamal-ct",
        ElGamalCiphertext,
        lambda c: (c.c1, c.c2, c.public_key),
        lambda t: ElGamalCiphertext(c1=t[0], c2=t[1], public_key=t[2]),
    )
    _register(
        "curve",
        Curve,
        lambda c: (c.name, c.p, c.a, c.b, c.gx, c.gy, c.n),
        lambda t: Curve(
            name=t[0], p=t[1], a=t[2], b=t[3], gx=t[4], gy=t[5], n=t[6]
        ),
        shareable=True,
    )
    _register(
        "ec-point",
        Point,
        lambda p: (p.curve, p.x, p.y),
        lambda t: Point(t[0], t[1], t[2]),
    )
    _register(
        "ecelgamal-pub",
        ECElGamalPublicKey,
        lambda k: (k.curve, k.h),
        lambda t: ECElGamalPublicKey(curve=t[0], h=t[1]),
        shareable=True,
    )
    _register(
        "ecelgamal-ct",
        ECElGamalCiphertext,
        lambda c: (c.c1, c.c2, c.public_key),
        lambda t: ECElGamalCiphertext(c1=t[0], c2=t[1], public_key=t[2]),
    )
    _register(
        "credential",
        Credential,
        lambda c: (c.properties, c.public_key, c.issuer, c.signature),
        lambda t: Credential(
            properties=t[0], public_key=t[1], issuer=t[2], signature=t[3]
        ),
    )
    _register(
        "partition",
        Partition,
        lambda p: (p.values, p.bounds),
        lambda t: Partition(values=t[0], bounds=t[1]),
    )
    _register(
        "index-table",
        IndexTable,
        lambda i: (i.attribute, i.entries, i.salt),
        lambda t: IndexTable(attribute=t[0], entries=t[1], salt=t[2]),
    )
    _register(
        "das-tuple",
        EncryptedTuple,
        lambda e: (e.etuple, e.index_value, e.plain_values),
        lambda t: EncryptedTuple(
            etuple=t[0], index_value=t[1], plain_values=t[2]
        ),
    )
    _register(
        "das-relation",
        EncryptedRelation,
        lambda r: (r.source, r.relation_name, r.rows),
        lambda t: EncryptedRelation(
            source=t[0], relation_name=t[1], rows=t[2]
        ),
    )
    _register(
        "das-server-query",
        ServerQuery,
        lambda q: (q.pairs,),
        lambda t: ServerQuery(pairs=t[0]),
    )
    _register(
        "das-server-result",
        ServerResult,
        lambda r: (r.pairs,),
        lambda t: ServerResult(pairs=t[0]),
    )
    _register(
        "tagged-message",
        TaggedMessage,
        lambda m: (m.tag, m.payload),
        lambda t: TaggedMessage(tag=t[0], payload=t[1]),
    )
    _register(
        "relation",
        Relation,
        lambda r: encode_relation(r),
        lambda data: decode_relation(data),
    )


class _Encoder:
    """One encoding pass; owns the stream's interning table."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._interned: dict[int, int] = {}  # id(obj) -> table index
        self._keepalive: list[Any] = []      # ids stay valid while we run
        self._next_index = 0

    def encode(self, value: Any) -> bytes:
        self._value(value)
        return b"".join(self._chunks)

    # -- emit helpers -----------------------------------------------------

    def _tag(self, tag: int) -> None:
        self._chunks.append(bytes((tag,)))

    def _u32(self, value: int) -> None:
        self._chunks.append(_U32.pack(value))

    def _sized(self, tag: int, data: bytes) -> None:
        self._tag(tag)
        self._u32(len(data))
        self._chunks.append(data)

    def _items(self, tag: int, items: Any, count: int) -> None:
        self._tag(tag)
        self._u32(count)
        for item in items:
            self._value(item)

    # -- dispatch ---------------------------------------------------------

    def _value(self, value: Any) -> None:
        if value is None:
            self._tag(_T_NONE)
        elif value is True:
            self._tag(_T_TRUE)
        elif value is False:
            self._tag(_T_FALSE)
        elif type(value) is int:
            length = (value.bit_length() + 8) // 8  # room for the sign bit
            self._sized(_T_INT, value.to_bytes(max(1, length), "big", signed=True))
        elif type(value) is float:
            self._tag(_T_FLOAT)
            self._chunks.append(_F64.pack(value))
        elif isinstance(value, (bytes, bytearray)):
            self._sized(_T_BYTES, bytes(value))
        elif type(value) is str:
            self._sized(_T_STR, value.encode("utf-8"))
        elif type(value) is list:
            self._items(_T_LIST, value, len(value))
        elif type(value) is tuple:
            self._items(_T_TUPLE, value, len(value))
        elif type(value) is dict:
            self._tag(_T_DICT)
            self._u32(len(value))
            for key, item in value.items():
                self._value(key)
                self._value(item)
        elif type(value) is set:
            self._items(_T_SET, _canonical(value), len(value))
        elif type(value) is frozenset:
            self._items(_T_FROZENSET, _canonical(value), len(value))
        else:
            self._extension(value)

    def _extension(self, value: Any) -> None:
        _bootstrap()
        extension = _BY_CLS.get(type(value))
        if extension is None:
            raise ValueCodecError(
                f"no wire encoding registered for {type(value).__name__}"
            )
        if extension.shareable:
            index = self._interned.get(id(value))
            if index is not None:
                self._tag(_T_REF)
                self._u32(index)
                return
            self._interned[id(value)] = self._next_index
            self._keepalive.append(value)
            self._next_index += 1
        name = extension.name.encode("ascii")
        self._tag(_T_EXT)
        self._chunks.append(bytes((len(name),)))
        self._chunks.append(name)
        self._value(extension.pack(value))


def _canonical(items: Any) -> list:
    """Deterministic set ordering, so equal sets encode identically."""
    return sorted(items, key=lambda item: (type(item).__name__, repr(item)))


class _Decoder:
    """One decoding pass over a complete buffer.

    Hardened against adversarial input: every structural implausibility
    (truncation, impossible container counts, over-deep nesting, a
    domain constructor choking on a malformed payload) raises
    :class:`~repro.errors.ValueCodecError` — never a hang, an
    ``assert``, or a raw :class:`RecursionError`.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0
        self._depth = 0
        self._interned: list[Any] = []

    def decode(self) -> Any:
        value = self._value()
        if self._offset != len(self._data):
            raise ValueCodecError(
                f"{len(self._data) - self._offset} trailing bytes after value"
            )
        return value

    # -- read helpers -----------------------------------------------------

    def _take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise ValueCodecError("truncated value encoding")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def _u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def _count(self, per_item_bytes: int = 1) -> int:
        """A container count, sanity-checked against the bytes left.

        Every encoded element costs at least one tag byte, so a count
        exceeding the remaining buffer is a corrupt or adversarial
        length — reject it before allocating anything.
        """
        count = self._u32()
        remaining = len(self._data) - self._offset
        if count * per_item_bytes > remaining:
            raise ValueCodecError(
                f"container claims {count} elements but only {remaining} "
                f"bytes remain"
            )
        return count

    # -- dispatch ---------------------------------------------------------

    def _value(self) -> Any:
        self._depth += 1
        if self._depth > MAX_VALUE_DEPTH:
            raise ValueCodecError(
                f"value tree deeper than {MAX_VALUE_DEPTH} levels"
            )
        try:
            return self._dispatch()
        finally:
            self._depth -= 1

    def _dispatch(self) -> Any:
        tag = self._take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return int.from_bytes(self._take(self._u32()), "big", signed=True)
        if tag == _T_FLOAT:
            return _F64.unpack(self._take(8))[0]
        if tag == _T_BYTES:
            return self._take(self._u32())
        if tag == _T_STR:
            try:
                return self._take(self._u32()).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ValueCodecError(f"malformed UTF-8 string: {exc}") from exc
        if tag == _T_LIST:
            return [self._value() for _ in range(self._count())]
        if tag == _T_TUPLE:
            return tuple(self._value() for _ in range(self._count()))
        if tag == _T_DICT:
            count = self._count(per_item_bytes=2)
            result = {}
            try:
                for _ in range(count):
                    key = self._value()
                    result[key] = self._value()
            except TypeError as exc:  # unhashable decoded key
                raise ValueCodecError(f"unhashable dict key: {exc}") from exc
            return result
        if tag == _T_SET:
            try:
                return {self._value() for _ in range(self._count())}
            except TypeError as exc:
                raise ValueCodecError(f"unhashable set element: {exc}") from exc
        if tag == _T_FROZENSET:
            try:
                return frozenset(
                    self._value() for _ in range(self._count())
                )
            except TypeError as exc:
                raise ValueCodecError(f"unhashable set element: {exc}") from exc
        if tag == _T_EXT:
            return self._ext()
        if tag == _T_REF:
            index = self._u32()
            if index >= len(self._interned):
                raise ValueCodecError(f"dangling interning reference {index}")
            return self._interned[index]
        raise ValueCodecError(f"unknown value tag 0x{tag:02x}")

    def _ext(self) -> Any:
        _bootstrap()
        name_length = self._take(1)[0]
        try:
            name = self._take(name_length).decode("ascii")
        except UnicodeDecodeError as exc:
            raise ValueCodecError(f"malformed extension name: {exc}") from exc
        extension = _BY_NAME.get(name)
        if extension is None:
            raise ValueCodecError(f"unknown wire extension {name!r}")
        packed = self._value()
        try:
            value = extension.unpack(packed)
        except CodecError:
            raise
        except Exception as exc:
            # A domain constructor rejecting a malformed payload is a
            # codec failure at this boundary, not a caller bug.
            raise ValueCodecError(
                f"malformed {name!r} extension payload: {exc}"
            ) from exc
        if extension.shareable:
            self._interned.append(value)
        return value


# -- public value/envelope API -----------------------------------------------

def encode_value(value: Any) -> bytes:
    """Encode one payload tree to bytes."""
    return _Encoder().encode(value)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`.

    Total on arbitrary input: any failure to decode — including
    surprises escaping domain-type constructors — surfaces as a
    :class:`~repro.errors.CodecError` subclass.
    """
    try:
        return _Decoder(data).decode()
    except CodecError:
        raise
    except Exception as exc:
        raise ValueCodecError(f"undecodable value stream: {exc}") from exc


def encoded_size(value: Any) -> int:
    """Actual number of payload bytes :func:`encode_value` produces."""
    return len(encode_value(value))


def encode_envelope(
    sequence: int,
    sender: str,
    receiver: str,
    kind: str,
    body: Any,
    trace: tuple[str, str] | None = None,
    request_id: str | None = None,
    session_id: str | None = None,
) -> bytes:
    """Encode one message envelope (the payload of a DATA frame).

    ``trace`` is an optional ``(trace_id, span_id)`` pair identifying
    the sender-side span this message belongs to.  ``request_id`` is an
    optional globally unique delivery token: endpoints deduplicate DATA
    frames on it, which is what makes sender-side re-delivery after an
    ambiguous failure safe (see ``docs/robustness.md``).  ``session_id``
    names the client session the message belongs to; endpoints key all
    per-session protocol state (views, dedupe windows, telemetry) by it
    (see ``docs/transport.md``).  Envelopes carrying none of the three
    keep the historical 5-tuple wire shape byte-for-byte; each later
    element forces the shape that includes it, with the skipped slots
    explicitly ``None``.
    """
    if session_id is not None:
        return encode_value(
            (sequence, sender, receiver, kind, body, trace, request_id,
             session_id)
        )
    if request_id is not None:
        return encode_value(
            (sequence, sender, receiver, kind, body, trace, request_id)
        )
    if trace is None:
        return encode_value((sequence, sender, receiver, kind, body))
    return encode_value((sequence, sender, receiver, kind, body, trace))


def decode_envelope(
    data: bytes,
) -> tuple[
    int, str, str, str, Any,
    tuple[str, str] | None, str | None, str | None,
]:
    """Inverse of :func:`encode_envelope`, with shape validation.

    Always returns an 8-tuple ``(sequence, sender, receiver, kind,
    body, trace, request_id, session_id)``; the trace context, request
    id, and session id are ``None`` when the envelope did not carry
    them.
    """
    return _validated_envelope(decode_value(data))


def _validated_envelope(
    envelope: Any,
) -> tuple[
    int, str, str, str, Any,
    tuple[str, str] | None, str | None, str | None,
]:
    """Shape-validate a decoded envelope tuple into the 8-tuple form."""
    if (
        not isinstance(envelope, tuple)
        or len(envelope) not in (5, 6, 7, 8)
        or not isinstance(envelope[0], int)
        or not all(isinstance(part, str) for part in envelope[1:4])
    ):
        raise ValueCodecError("malformed message envelope")
    if len(envelope) == 5:
        return (*envelope, None, None, None)
    trace = envelope[5]
    if trace is not None and (
        not isinstance(trace, tuple)
        or len(trace) != 2
        or not all(isinstance(part, str) for part in trace)
    ):
        raise ValueCodecError("malformed envelope trace context")
    if len(envelope) == 6:
        if trace is None:
            # The 6-element shape always carries a real trace context.
            raise ValueCodecError("malformed envelope trace context")
        return (*envelope, None, None)
    request_id = envelope[6]
    if len(envelope) == 7:
        # The 7-element shape always carries a real request id.
        if not isinstance(request_id, str) or not request_id:
            raise ValueCodecError("malformed envelope request id")
        return (*envelope, None)
    # 8-element shape: the request-id slot may be None, the session id
    # is always a real identifier (it is what forced this shape).
    if request_id is not None and (
        not isinstance(request_id, str) or not request_id
    ):
        raise ValueCodecError("malformed envelope request id")
    session_id = envelope[7]
    if not isinstance(session_id, str) or not session_id:
        raise ValueCodecError("malformed envelope session id")
    return envelope


class _Skimmer:
    """Structural skim of an encoded envelope: routing fields only.

    The shard router must read an envelope's addressing slots —
    sequence, sender, receiver, kind, trace, request id, session id —
    without paying for (or depending on) the body: protocol bodies are
    the expensive part of a frame and decoding them would drag the
    whole extension registry (and thus the crypto stack) into the
    router process.  The skimmer decodes only scalar slots and *skips*
    everything else by walking tags and lengths; it never touches the
    extension registry.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0
        self._depth = 0

    # -- read helpers (mirrors _Decoder) ----------------------------------

    def _take(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise ValueCodecError("truncated value encoding")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def _u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def _count(self, per_item_bytes: int = 1) -> int:
        count = self._u32()
        remaining = len(self._data) - self._offset
        if count * per_item_bytes > remaining:
            raise ValueCodecError(
                f"container claims {count} elements but only {remaining} "
                f"bytes remain"
            )
        return count

    def _skip(self) -> None:
        """Skip one encoded value without materializing it."""
        self._depth += 1
        if self._depth > MAX_VALUE_DEPTH:
            raise ValueCodecError(
                f"value tree deeper than {MAX_VALUE_DEPTH} levels"
            )
        try:
            tag = self._take(1)[0]
            if tag in (_T_NONE, _T_TRUE, _T_FALSE):
                return
            if tag in (_T_INT, _T_BYTES, _T_STR):
                self._take(self._u32())
            elif tag == _T_FLOAT:
                self._take(8)
            elif tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
                for _ in range(self._count()):
                    self._skip()
            elif tag == _T_DICT:
                for _ in range(self._count(per_item_bytes=2)):
                    self._skip()
                    self._skip()
            elif tag == _T_EXT:
                self._take(self._take(1)[0])  # extension name
                self._skip()                  # packed payload
            elif tag == _T_REF:
                self._take(4)
            else:
                raise ValueCodecError(f"unknown value tag 0x{tag:02x}")
        finally:
            self._depth -= 1

    def _scalar(self) -> Any:
        """Decode one routing-slot value: None, int, str, or a tuple of
        those (the trace pair).  Anything else is a malformed slot."""
        tag = self._take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_INT:
            return int.from_bytes(self._take(self._u32()), "big", signed=True)
        if tag == _T_STR:
            try:
                return self._take(self._u32()).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ValueCodecError(f"malformed UTF-8 string: {exc}") from exc
        if tag == _T_TUPLE:
            return tuple(self._scalar() for _ in range(self._count()))
        raise ValueCodecError(
            f"unexpected tag 0x{tag:02x} in an envelope routing slot"
        )

    def peek(self) -> tuple:
        """The envelope tuple with the body slot replaced by ``None``."""
        tag = self._take(1)[0]
        if tag != _T_TUPLE:
            raise ValueCodecError("malformed message envelope")
        count = self._count()
        if count not in (5, 6, 7, 8):
            raise ValueCodecError("malformed message envelope")
        slots: list[Any] = []
        for index in range(count):
            if index == 4:
                self._skip()       # the body — never decoded
                slots.append(None)
            else:
                slots.append(self._scalar())
        if self._offset != len(self._data):
            raise ValueCodecError(
                f"{len(self._data) - self._offset} trailing bytes after value"
            )
        return tuple(slots)


def peek_envelope(
    data: bytes,
) -> tuple[
    int, str, str, str, None,
    tuple[str, str] | None, str | None, str | None,
]:
    """Routing fields of an encoded envelope, without decoding the body.

    Same 8-tuple as :func:`decode_envelope` — ``(sequence, sender,
    receiver, kind, body, trace, request_id, session_id)`` — except the
    body slot is always ``None``.  The body bytes are length-skipped,
    never decoded, so peeking is cheap on arbitrarily large protocol
    payloads and works without the domain extension registry (the shard
    router routes frames it cannot — and must not — interpret).
    """
    try:
        envelope = _Skimmer(data).peek()
    except CodecError:
        raise
    except Exception as exc:
        raise ValueCodecError(f"undecodable value stream: {exc}") from exc
    return _validated_envelope(envelope)


# -- framing ------------------------------------------------------------------

def build_frame(frame_type: int, payload: bytes) -> bytes:
    """Prepend the 8-byte frame header to an encoded payload."""
    if frame_type not in _FRAME_TYPES:
        raise FrameCodecError(f"unknown frame type 0x{frame_type:02x}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameCodecError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return MAGIC + bytes((VERSION, frame_type)) + _U32.pack(len(payload)) + payload


def parse_frame_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header; returns ``(frame_type, payload_length)``."""
    if len(header) != FRAME_HEADER_BYTES:
        raise FrameCodecError("short frame header")
    if header[:2] != MAGIC:
        raise FrameCodecError(f"bad frame magic {header[:2]!r}")
    if header[2] != VERSION:
        raise FrameCodecError(f"unsupported wire version {header[2]}")
    frame_type = header[3]
    if frame_type not in _FRAME_TYPES:
        raise FrameCodecError(f"unknown frame type 0x{frame_type:02x}")
    length = _U32.unpack(header[4:8])[0]
    if length > MAX_FRAME_BYTES:
        raise FrameCodecError(f"frame of {length} bytes exceeds the size limit")
    return frame_type, length


async def read_frame(
    reader: asyncio.StreamReader, timeout: float | None = None
) -> tuple[int, bytes]:
    """Read one complete frame; raises :class:`FrameCodecError` on EOF/garbage.

    ``timeout`` bounds each of the two reads; ``asyncio.TimeoutError``
    propagates to the caller, which maps it onto the failure being
    diagnosed (ack timeout, dead peer, ...).
    """
    try:
        header = await asyncio.wait_for(
            reader.readexactly(FRAME_HEADER_BYTES), timeout
        )
        frame_type, length = parse_frame_header(header)
        payload = await asyncio.wait_for(reader.readexactly(length), timeout)
    except asyncio.IncompleteReadError as exc:
        raise FrameCodecError("connection closed mid-frame") from exc
    return frame_type, payload


async def write_frame(
    writer: asyncio.StreamWriter, frame_type: int, payload: bytes
) -> None:
    """Write one frame and flush."""
    writer.write(build_frame(frame_type, payload))
    await writer.drain()
