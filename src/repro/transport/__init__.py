"""Real wire transport for the mediation protocols.

The reproduction's protocols were born on an in-process message bus
(:class:`repro.mediation.network.Network`); this package makes them run
over real sockets without changing a line of protocol code:

* :mod:`repro.transport.base` — the :class:`Transport` contract both
  carriers implement, plus the shared transcript/view bookkeeping,
* :mod:`repro.transport.codec` — the length-prefixed binary wire format
  for every message the three delivery protocols produce,
* :mod:`repro.transport.server` — the asyncio endpoint a party listens
  on (``repro serve``),
* :mod:`repro.transport.tcp` — the synchronous-facing TCP transport
  with timeouts, bounded retry, and backoff.

See ``docs/transport.md`` for the wire format and failure semantics.
"""

from repro.transport.base import Message, PartyView, Transport
from repro.transport.server import PartyServer, RemoteRecord
from repro.transport.tcp import RetryPolicy, TcpTransport

__all__ = [
    "Message",
    "PartyView",
    "PartyServer",
    "RemoteRecord",
    "RetryPolicy",
    "TcpTransport",
    "Transport",
]
