"""The asyncio TCP endpoint one party listens on.

A :class:`PartyServer` is the network face of one party (mediator,
datasource, or client): it accepts framed connections, decodes every
protocol message addressed to its party, records the party's **view** of
the traffic (sequence, sender, kind, actual wire bytes — the same
observables the leakage analysis consumes), and acknowledges receipt so
the sender can account actual bytes and detect dead peers.

Endpoints speak a tiny control protocol next to DATA frames:

* ``HELLO {party}``  -> ``OK {party}`` — handshake; the connecting
  transport verifies it reached the party it thinks it did.
* ``FETCH {}``       -> ``VIEW [record, ...]`` — the endpoint's recorded
  view, for reconciling remote observations against the sender-side
  transcript; ``FETCH {session}`` narrows it to one session's records.
* ``TELEMETRY {}``   -> ``TELEMETRY_DATA {spans, metrics, exposition}`` —
  the endpoint's collected telemetry: ``recv:`` spans (stitched into the
  sender's trace via the envelope's trace context), a metrics snapshot,
  and a rendered Prometheus text exposition; ``TELEMETRY {session}``
  narrows the span list to one session.
* ``SESSION {op, session}`` -> ``OK`` — explicit session lifecycle
  (``op`` is ``"open"`` or ``"close"``); opens are idempotent, and an
  open refused for capacity is answered with ``BUSY`` instead.
* misdelivered or malformed frames -> ``ERROR {error}``.

**Sessions.**  Every envelope may carry a ``session_id`` (the 8th
element); the endpoint keys all per-session protocol state — the
session's view of the traffic, its request-id dedupe window, its
``recv:`` span attribution — in a :class:`~repro.session.SessionRegistry`
with LRU + TTL eviction, so one client's queries are invisible to
another's and abandoned sessions cannot leak memory.  Distinct sessions
execute in parallel on the endpoint's worker pool (``max_workers``
slots) while a per-session lock serializes steps *within* each session.
When ``max_sessions`` live sessions exist, the first message of any new
session is answered with a ``BUSY`` frame — the client transport backs
off under its retry policy and surfaces
:class:`~repro.errors.ServerBusy` when the budget runs out.  Legacy
session-less traffic shares one ``"legacy"`` state slot and is never
refused, preserving the pre-session wire behaviour exactly.

Every endpoint owns a private span collector and metrics registry —
independent of the process-wide installed telemetry — so a ``repro
serve`` process accumulates its party's observations and hands them to
whichever querying process asks.

Delivery is **effectively-once**: envelopes that carry a ``request_id``
are deduplicated — a re-delivered frame (sender retry after a lost
acknowledgement, or a chaos proxy duplicating traffic) is answered with
the original ACK and recorded exactly once.  This is the receiver half
of the idempotent re-delivery contract in ``docs/robustness.md``.

Fault injection for tests: ``max_messages=N`` makes the endpoint drop
the connection *without acknowledging* the (N+1)-th data message and
stop listening — the deterministic "datasource dies mid-protocol".
The richer, seeded fault model lives in :mod:`repro.faults`.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from dataclasses import asdict, dataclass

from repro.errors import NetworkError
from repro.session import (
    DEFAULT_SESSION_TTL,
    LEGACY_SESSION,
    Session,
    SessionRegistry,
)
from repro.telemetry.exporters import prometheus_exposition
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import SpanContext, Tracer
from repro.transport import codec

#: Counter of data messages received at an endpoint.
ENDPOINT_MESSAGES_METRIC = "repro_endpoint_messages_total"
#: Counter of wire bytes received at an endpoint.
ENDPOINT_BYTES_METRIC = "repro_endpoint_bytes_total"
#: Counter of duplicate deliveries absorbed by request-id dedupe.
ENDPOINT_DUPLICATES_METRIC = "repro_endpoint_duplicates_total"
#: Counter of session lifecycle events (opened/closed/ttl/lru).
ENDPOINT_SESSIONS_METRIC = "repro_endpoint_sessions_total"
#: Counter of new sessions refused for capacity (BUSY answers).
ENDPOINT_BUSY_METRIC = "repro_endpoint_busy_total"

#: Acknowledgements remembered for request-id deduplication, **per
#: session**.  Bounds memory on very long-lived ``serve`` processes; a
#: duplicate older than the window is re-recorded, which only ever
#: happens after the sender has long given up on the original delivery.
DEDUPE_WINDOW = 4096

#: Live sessions an endpoint admits before answering BUSY.
DEFAULT_MAX_SESSIONS = 64
#: Data messages processed concurrently across sessions.
DEFAULT_MAX_WORKERS = 8


@dataclass(frozen=True)
class RemoteRecord:
    """One data message as observed by the receiving endpoint."""

    sequence: int
    sender: str
    receiver: str
    kind: str
    wire_bytes: int


class PartyServer:
    """One party's listening endpoint.

    All coroutines must run on the same event loop; the synchronous
    :class:`~repro.transport.tcp.TcpTransport` drives them from its
    background loop, the ``repro serve`` CLI from ``asyncio.run``.
    """

    def __init__(
        self,
        party: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_messages: int | None = None,
        on_message: Callable[[RemoteRecord], None] | None = None,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        session_ttl: float | None = DEFAULT_SESSION_TTL,
        max_workers: int = DEFAULT_MAX_WORKERS,
        ack_delay: float = 0.0,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if ack_delay < 0:
            raise ValueError(f"ack_delay must be >= 0, got {ack_delay}")
        self.party = party
        self.host = host
        self.port = port
        self.records: list[RemoteRecord] = []
        #: Endpoint-local telemetry collectors, harvested via TELEMETRY.
        self.tracer = Tracer(service=f"repro.endpoint.{party}")
        self.registry = MetricsRegistry()
        self._max_messages = max_messages
        self._on_message = on_message
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self.max_sessions = max_sessions
        #: Per-session protocol state: each session's ``state`` dict
        #: holds its view (``"records"``) and its dedupe window
        #: (``"acked"``: request_id -> acknowledgement payload,
        #: insertion-ordered, oldest evicted first).  Locks are asyncio
        #: locks — all session steps run on the server's event loop.
        self.sessions = SessionRegistry(
            capacity=max_sessions,
            ttl=session_ttl,
            lock_factory=asyncio.Lock,
            on_evict=self._session_ended,
        )
        #: Bounds concurrent DATA processing across sessions.
        self._worker_slots = asyncio.Semaphore(max_workers)
        #: Draining endpoints finish in-flight sessions but answer BUSY
        #: to any *new* session — the graceful half of shard removal.
        self._draining = False
        #: Simulated per-message service latency (models the link RTT a
        #: distributed deployment would pay); concurrent sessions
        #: overlap it, sequential clients pay it serially.
        self.ack_delay = ack_delay

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; resolves the actual port when ``port=0``."""
        if self._server is not None:
            raise NetworkError(f"endpoint for {self.party!r} already started")
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            raise NetworkError(
                f"cannot bind endpoint for {self.party!r} on "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and drop every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self.sessions.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- draining ----------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting new sessions; in-flight sessions finish.

        The graceful half of shard removal (see ``docs/cluster.md``):
        a draining endpoint answers the first message of any *new*
        session with BUSY — upstream routers fail the session over to a
        live shard — while known live sessions (and legacy session-less
        traffic) proceed untouched.  Once :meth:`active_sessions`
        reaches zero the process can exit without failing anyone.
        """
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def active_sessions(self) -> int:
        """Live sessions excluding the legacy slot — what a draining
        endpoint waits on before shutting down."""
        return sum(
            1 for session_id in self.sessions.ids()
            if session_id != LEGACY_SESSION
        )

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame_type, payload = await codec.read_frame(reader)
                except (NetworkError, ConnectionError, asyncio.TimeoutError):
                    return  # peer went away or sent garbage; drop quietly
                try:
                    done = await self._dispatch(frame_type, payload, writer)
                except ConnectionError:
                    return
                if done:
                    return
        except asyncio.CancelledError:
            return  # loop shutdown cancelled this connection mid-read
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(
        self, frame_type: int, payload: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one frame; returns True when the connection must close."""
        if frame_type == codec.DATA:
            return await self._data(payload, writer)
        if frame_type == codec.HELLO:
            await codec.write_frame(
                writer, codec.OK, codec.encode_value({"party": self.party})
            )
            return False
        if frame_type == codec.FETCH:
            session_id = self._requested_session(payload)
            if session_id is None:
                view = [asdict(record) for record in self.records]
            else:
                view = [
                    asdict(record) for record in self.session_records(session_id)
                ]
            await codec.write_frame(writer, codec.VIEW, codec.encode_value(view))
            return False
        if frame_type == codec.TELEMETRY:
            session_id = self._requested_session(payload)
            await codec.write_frame(
                writer,
                codec.TELEMETRY_DATA,
                codec.encode_value(self.telemetry_snapshot(session=session_id)),
            )
            return False
        if frame_type == codec.SESSION:
            return await self._session_control(payload, writer)
        await codec.write_frame(
            writer,
            codec.ERROR,
            codec.encode_value(
                {"error": f"unexpected frame type 0x{frame_type:02x}"}
            ),
        )
        return False

    async def _data(self, payload: bytes, writer: asyncio.StreamWriter) -> bool:
        if (
            self._max_messages is not None
            and len(self.records) >= self._max_messages
        ):
            # Injected fault: die without acknowledging, refuse reconnects.
            if self._server is not None:
                self._server.close()
                self._server = None
            writer.transport.abort()
            return True
        try:
            sequence, sender, receiver, kind, _body, trace, request_id, \
                session_id = codec.decode_envelope(payload)
        except Exception as exc:  # malformed payload: report, keep serving
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value({"error": f"undecodable envelope: {exc}"}),
            )
            return False
        session = self._admit(session_id)
        if session is None:
            await self._busy(writer)
            return False
        # Session lock first, worker slot second: a queued same-session
        # message waits on its session without pinning a worker slot.
        async with session.lock, self._worker_slots:
            acked: dict[str, dict] = session.state.setdefault("acked", {})
            if request_id is not None and request_id in acked:
                # Idempotent re-delivery: the sender retried a message
                # we already recorded (its copy of our ACK was lost, or
                # a chaos proxy duplicated the frame).  Re-acknowledge
                # with the original payload; record and observe nothing.
                self.registry.counter(
                    ENDPOINT_DUPLICATES_METRIC,
                    {"party": self.party, "sender": sender, "kind": kind},
                    help_text=(
                        "Duplicate deliveries absorbed by request-id dedupe"
                    ),
                ).inc()
                await codec.write_frame(
                    writer, codec.ACK, codec.encode_value(acked[request_id])
                )
                return False
            if receiver != self.party:
                await codec.write_frame(
                    writer,
                    codec.ERROR,
                    codec.encode_value(
                        {
                            "error": (
                                f"misdelivered message for {receiver!r} at "
                                f"endpoint {self.party!r}"
                            )
                        }
                    ),
                )
                return False
            if self.ack_delay:
                # Simulated link/service latency: sessions overlap it.
                await asyncio.sleep(self.ack_delay)
            record = RemoteRecord(
                sequence=sequence,
                sender=sender,
                receiver=receiver,
                kind=kind,
                wire_bytes=codec.FRAME_HEADER_BYTES + len(payload),
            )
            self._observe(record, SpanContext.from_wire(trace), session_id)
            self.records.append(record)
            session.state.setdefault("records", []).append(record)
            if self._on_message is not None:
                self._on_message(record)
            acknowledgement = {
                "sequence": sequence, "wire_bytes": record.wire_bytes,
            }
            if request_id is not None:
                acked[request_id] = acknowledgement
                while len(acked) > DEDUPE_WINDOW:
                    acked.pop(next(iter(acked)))
            await codec.write_frame(
                writer, codec.ACK, codec.encode_value(acknowledgement)
            )
            return False

    # -- sessions ----------------------------------------------------------

    def _admit(self, session_id: str | None) -> Session | None:
        """The session a message belongs to, or ``None`` for BUSY.

        Legacy session-less traffic shares the ``"legacy"`` slot and is
        always admitted — the pre-session contract.  A *new* session id
        arriving while ``max_sessions`` are live is refused; known live
        sessions are never refused.
        """
        if session_id is None:
            session_id = LEGACY_SESSION
        elif session_id not in self.sessions and (
            self._draining or len(self.sessions) >= self.max_sessions
        ):
            return None
        opened = session_id not in self.sessions
        session = self.sessions.get(session_id)
        if opened:
            self.registry.counter(
                ENDPOINT_SESSIONS_METRIC,
                {"party": self.party, "event": "opened"},
                help_text="Session lifecycle events at a party endpoint",
            ).inc()
        return session

    async def _busy(self, writer: asyncio.StreamWriter) -> None:
        """Refuse a new session: answer BUSY, keep the connection."""
        self.registry.counter(
            ENDPOINT_BUSY_METRIC,
            {"party": self.party},
            help_text="New sessions refused for capacity",
        ).inc()
        await codec.write_frame(
            writer,
            codec.BUSY,
            codec.encode_value(
                {
                    "party": self.party,
                    "sessions": len(self.sessions),
                    "max_sessions": self.max_sessions,
                    "draining": self._draining,
                }
            ),
        )

    async def _session_control(
        self, payload: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle an explicit SESSION open/close frame."""
        try:
            request = codec.decode_value(payload)
            operation = request["op"]
            session_id = request["session"]
            if operation not in ("open", "close") or not isinstance(
                session_id, str
            ) or not session_id:
                raise ValueError(f"malformed session request {request!r}")
        except Exception as exc:
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value({"error": f"bad SESSION frame: {exc}"}),
            )
            return False
        if operation == "open":
            session = self._admit(session_id)
            if session is None:
                await self._busy(writer)
                return False
        else:
            self.sessions.close(session_id)
        await codec.write_frame(
            writer,
            codec.OK,
            codec.encode_value(
                {"party": self.party, "op": operation, "session": session_id}
            ),
        )
        return False

    def _session_ended(self, session: Session, reason: str) -> None:
        """Registry eviction hook: count how each session ended."""
        event = "closed" if reason == "closed" else reason
        self.registry.counter(
            ENDPOINT_SESSIONS_METRIC,
            {"party": self.party, "event": event},
            help_text="Session lifecycle events at a party endpoint",
        ).inc()

    def session_records(self, session_id: str) -> list[RemoteRecord]:
        """One session's view of the traffic (empty if unknown)."""
        session = self.sessions.peek(session_id)
        if session is None:
            return []
        return list(session.state.get("records", []))

    @staticmethod
    def _requested_session(payload: bytes) -> str | None:
        """The ``session`` filter of a FETCH/TELEMETRY payload, if any."""
        try:
            request = codec.decode_value(payload)
        except Exception:
            return None
        if isinstance(request, dict):
            session_id = request.get("session")
            if isinstance(session_id, str) and session_id:
                return session_id
        return None

    # -- telemetry ---------------------------------------------------------

    def _observe(
        self,
        record: RemoteRecord,
        parent: SpanContext | None,
        session_id: str | None = None,
    ) -> None:
        """Record one received message into the endpoint collectors.

        When the envelope carried trace context, the ``recv:`` span is
        parented on the sender's ``send:`` span — that edge is what
        stitches per-process traces into one distributed trace.  When it
        carried a session id, the span is tagged with it, so one
        session's spans can be harvested (and stitched) independently
        of every other session's.
        """
        if parent is not None:
            attributes = {
                "kind": "message",
                "sender": record.sender,
                "sequence": record.sequence,
                "wire_bytes": record.wire_bytes,
            }
            if session_id is not None:
                attributes["session"] = session_id
            span = self.tracer.start_span(
                f"recv:{record.kind}",
                self.party,
                parent=parent,
                attributes=attributes,
            )
            self.tracer.end_span(span)
        labels = {
            "party": self.party,
            "sender": record.sender,
            "kind": record.kind,
        }
        self.registry.counter(
            ENDPOINT_MESSAGES_METRIC, labels,
            help_text="Data messages received at a party endpoint",
        ).inc()
        self.registry.counter(
            ENDPOINT_BYTES_METRIC, labels,
            help_text="Wire bytes received at a party endpoint",
        ).inc(record.wire_bytes)

    def telemetry_snapshot(self, session: str | None = None) -> dict:
        """Spans, metrics snapshot, and exposition for TELEMETRY_DATA.

        ``session`` narrows the span list to one session's ``recv:``
        spans; the metrics snapshot stays endpoint-wide (counters
        aggregate across sessions by design).
        """
        spans = [span.to_dict() for span in self.tracer.spans]
        if session is not None:
            spans = [
                span
                for span in spans
                if span.get("attributes", {}).get("session") == session
            ]
        return {
            "party": self.party,
            "spans": spans,
            "metrics": self.registry.snapshot(),
            "exposition": prometheus_exposition(self.registry),
        }
