"""The asyncio TCP endpoint one party listens on.

A :class:`PartyServer` is the network face of one party (mediator,
datasource, or client): it accepts framed connections, decodes every
protocol message addressed to its party, records the party's **view** of
the traffic (sequence, sender, kind, actual wire bytes — the same
observables the leakage analysis consumes), and acknowledges receipt so
the sender can account actual bytes and detect dead peers.

Endpoints speak a tiny control protocol next to DATA frames:

* ``HELLO {party}``  -> ``OK {party}`` — handshake; the connecting
  transport verifies it reached the party it thinks it did.
* ``FETCH {}``       -> ``VIEW [record, ...]`` — the endpoint's recorded
  view, for reconciling remote observations against the sender-side
  transcript.
* ``TELEMETRY {}``   -> ``TELEMETRY_DATA {spans, metrics, exposition}`` —
  the endpoint's collected telemetry: ``recv:`` spans (stitched into the
  sender's trace via the envelope's trace context), a metrics snapshot,
  and a rendered Prometheus text exposition.
* misdelivered or malformed frames -> ``ERROR {error}``.

Every endpoint owns a private span collector and metrics registry —
independent of the process-wide installed telemetry — so a ``repro
serve`` process accumulates its party's observations and hands them to
whichever querying process asks.

Delivery is **effectively-once**: envelopes that carry a ``request_id``
are deduplicated — a re-delivered frame (sender retry after a lost
acknowledgement, or a chaos proxy duplicating traffic) is answered with
the original ACK and recorded exactly once.  This is the receiver half
of the idempotent re-delivery contract in ``docs/robustness.md``.

Fault injection for tests: ``max_messages=N`` makes the endpoint drop
the connection *without acknowledging* the (N+1)-th data message and
stop listening — the deterministic "datasource dies mid-protocol".
The richer, seeded fault model lives in :mod:`repro.faults`.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass

from repro.errors import NetworkError
from repro.telemetry.exporters import prometheus_exposition
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import SpanContext, Tracer
from repro.transport import codec

#: Counter of data messages received at an endpoint.
ENDPOINT_MESSAGES_METRIC = "repro_endpoint_messages_total"
#: Counter of wire bytes received at an endpoint.
ENDPOINT_BYTES_METRIC = "repro_endpoint_bytes_total"
#: Counter of duplicate deliveries absorbed by request-id dedupe.
ENDPOINT_DUPLICATES_METRIC = "repro_endpoint_duplicates_total"

#: Acknowledgements remembered for request-id deduplication.  Bounds
#: memory on very long-lived ``serve`` processes; a duplicate older
#: than the window is re-recorded, which only ever happens after the
#: sender has long given up on the original delivery.
DEDUPE_WINDOW = 4096


@dataclass(frozen=True)
class RemoteRecord:
    """One data message as observed by the receiving endpoint."""

    sequence: int
    sender: str
    receiver: str
    kind: str
    wire_bytes: int


class PartyServer:
    """One party's listening endpoint.

    All coroutines must run on the same event loop; the synchronous
    :class:`~repro.transport.tcp.TcpTransport` drives them from its
    background loop, the ``repro serve`` CLI from ``asyncio.run``.
    """

    def __init__(
        self,
        party: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_messages: int | None = None,
        on_message=None,
    ) -> None:
        self.party = party
        self.host = host
        self.port = port
        self.records: list[RemoteRecord] = []
        #: Endpoint-local telemetry collectors, harvested via TELEMETRY.
        self.tracer = Tracer(service=f"repro.endpoint.{party}")
        self.registry = MetricsRegistry()
        self._max_messages = max_messages
        self._on_message = on_message
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        #: request_id -> acknowledgement payload, for idempotent
        #: re-delivery (insertion-ordered; oldest evicted first).
        self._acknowledged: dict[str, dict] = {}

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; resolves the actual port when ``port=0``."""
        if self._server is not None:
            raise NetworkError(f"endpoint for {self.party!r} already started")
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            raise NetworkError(
                f"cannot bind endpoint for {self.party!r} on "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening and drop every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame_type, payload = await codec.read_frame(reader)
                except (NetworkError, ConnectionError, asyncio.TimeoutError):
                    return  # peer went away or sent garbage; drop quietly
                try:
                    done = await self._dispatch(frame_type, payload, writer)
                except ConnectionError:
                    return
                if done:
                    return
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(
        self, frame_type: int, payload: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one frame; returns True when the connection must close."""
        if frame_type == codec.DATA:
            return await self._data(payload, writer)
        if frame_type == codec.HELLO:
            await codec.write_frame(
                writer, codec.OK, codec.encode_value({"party": self.party})
            )
            return False
        if frame_type == codec.FETCH:
            view = [asdict(record) for record in self.records]
            await codec.write_frame(writer, codec.VIEW, codec.encode_value(view))
            return False
        if frame_type == codec.TELEMETRY:
            await codec.write_frame(
                writer,
                codec.TELEMETRY_DATA,
                codec.encode_value(self.telemetry_snapshot()),
            )
            return False
        await codec.write_frame(
            writer,
            codec.ERROR,
            codec.encode_value(
                {"error": f"unexpected frame type 0x{frame_type:02x}"}
            ),
        )
        return False

    async def _data(self, payload: bytes, writer: asyncio.StreamWriter) -> bool:
        if (
            self._max_messages is not None
            and len(self.records) >= self._max_messages
        ):
            # Injected fault: die without acknowledging, refuse reconnects.
            if self._server is not None:
                self._server.close()
                self._server = None
            writer.transport.abort()
            return True
        try:
            sequence, sender, receiver, kind, _body, trace, request_id = (
                codec.decode_envelope(payload)
            )
        except Exception as exc:  # malformed payload: report, keep serving
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value({"error": f"undecodable envelope: {exc}"}),
            )
            return False
        if request_id is not None and request_id in self._acknowledged:
            # Idempotent re-delivery: the sender retried a message we
            # already recorded (its copy of our ACK was lost, or a
            # chaos proxy duplicated the frame).  Re-acknowledge with
            # the original payload; record and observe nothing.
            self.registry.counter(
                ENDPOINT_DUPLICATES_METRIC,
                {"party": self.party, "sender": sender, "kind": kind},
                help_text="Duplicate deliveries absorbed by request-id dedupe",
            ).inc()
            await codec.write_frame(
                writer,
                codec.ACK,
                codec.encode_value(self._acknowledged[request_id]),
            )
            return False
        if receiver != self.party:
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value(
                    {
                        "error": (
                            f"misdelivered message for {receiver!r} at "
                            f"endpoint {self.party!r}"
                        )
                    }
                ),
            )
            return False
        record = RemoteRecord(
            sequence=sequence,
            sender=sender,
            receiver=receiver,
            kind=kind,
            wire_bytes=codec.FRAME_HEADER_BYTES + len(payload),
        )
        self._observe(record, SpanContext.from_wire(trace))
        self.records.append(record)
        if self._on_message is not None:
            self._on_message(record)
        acknowledgement = {
            "sequence": sequence, "wire_bytes": record.wire_bytes,
        }
        if request_id is not None:
            self._acknowledged[request_id] = acknowledgement
            while len(self._acknowledged) > DEDUPE_WINDOW:
                self._acknowledged.pop(next(iter(self._acknowledged)))
        await codec.write_frame(
            writer, codec.ACK, codec.encode_value(acknowledgement)
        )
        return False

    # -- telemetry ---------------------------------------------------------

    def _observe(
        self, record: RemoteRecord, parent: SpanContext | None
    ) -> None:
        """Record one received message into the endpoint collectors.

        When the envelope carried trace context, the ``recv:`` span is
        parented on the sender's ``send:`` span — that edge is what
        stitches per-process traces into one distributed trace.
        """
        if parent is not None:
            span = self.tracer.start_span(
                f"recv:{record.kind}",
                self.party,
                parent=parent,
                attributes={
                    "kind": "message",
                    "sender": record.sender,
                    "sequence": record.sequence,
                    "wire_bytes": record.wire_bytes,
                },
            )
            self.tracer.end_span(span)
        labels = {
            "party": self.party,
            "sender": record.sender,
            "kind": record.kind,
        }
        self.registry.counter(
            ENDPOINT_MESSAGES_METRIC, labels,
            help_text="Data messages received at a party endpoint",
        ).inc()
        self.registry.counter(
            ENDPOINT_BYTES_METRIC, labels,
            help_text="Wire bytes received at a party endpoint",
        ).inc(record.wire_bytes)

    def telemetry_snapshot(self) -> dict:
        """Spans, metrics snapshot, and exposition for TELEMETRY_DATA."""
        return {
            "party": self.party,
            "spans": [span.to_dict() for span in self.tracer.spans],
            "metrics": self.registry.snapshot(),
            "exposition": prometheus_exposition(self.registry),
        }
