"""The TCP transport: protocol messages over real sockets.

:class:`TcpTransport` implements the :class:`~repro.transport.base.Transport`
contract on top of asyncio TCP streams.  Every ``send`` serializes the
message with the binary codec, frames it, ships it to the *receiver's*
endpoint (a :class:`~repro.transport.server.PartyServer`), and waits for
the acknowledgement — so byte counts in the transcript are **actual wire
bytes** and a dead or silent peer surfaces as a
:class:`~repro.errors.NetworkError` instead of a hang.

The protocols in :mod:`repro.core` are synchronous, so the transport
owns a private event loop on a background thread and submits coroutines
to it; callers never touch asyncio.

Topology: parties whose endpoints are listed in ``endpoints`` are
**remote** (typically started with ``repro serve`` in another process);
any party registered without a listed endpoint gets a **locally hosted**
endpoint on an ephemeral loopback port.  Either way every message
crosses a real socket — loopback runs exercise the full codec,
framing, and acknowledgement path.

Failure semantics (hardened — see ``docs/robustness.md``):

* Every envelope carries a globally unique ``request_id`` and endpoints
  deduplicate on it, so *all* delivery failures — refused connects,
  lost acknowledgements, mid-delivery disconnects — are retried with
  jittered exponential backoff up to ``RetryPolicy.attempts``.  The
  receiver records each protocol message exactly once regardless of how
  many times the frame crossed the wire: **effectively-once** delivery.
* A deadline installed by the runner (:mod:`repro.deadline`) caps every
  wait; an expired deadline raises
  :class:`~repro.errors.DeadlineExceeded` instead of starting another
  attempt.
* Every :class:`~repro.errors.NetworkError` raised here names the
  remote host, port, and the timeout budget that governed the wait.

Concurrency (see ``docs/transport.md``):

* Connections are **pooled** per peer: a send checks a persistent
  connection out, returns it healthy, and at most
  ``RetryPolicy.pool_size`` idle sockets are kept — sequential traffic
  reuses one socket; concurrent sessions fan out without a
  connect-per-send tax.
* The caller's :func:`~repro.session.session_scope` rides every
  envelope as its ``session_id``; endpoints key per-session state by
  it.  An endpoint at capacity answers BUSY, which backs off under the
  retry policy and surfaces as :class:`~repro.errors.ServerBusy` once
  the budget is exhausted.  Sessions are closed at the endpoints on
  :meth:`TcpTransport.close`.

The message body a receiver-side protocol step consumes is the
**decoded** round-trip of the encoded frame, never the sender's live
object — a serialization gap cannot hide behind in-process object
sharing.
"""

from __future__ import annotations

import asyncio
import random
import secrets
import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.deadline import Deadline, current_deadline
from repro.errors import DeadlineExceeded, NetworkError, ServerBusy
from repro.session import current_session_id
from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.tracing import Span, Tracer
from repro.transport import codec
from repro.transport.base import Message, Transport
from repro.transport.server import PartyServer, RemoteRecord

#: Counter of delivery/control retries, labelled by party and operation.
TRANSPORT_RETRIES_METRIC = "repro_transport_retries_total"
#: Counter of TCP connections actually dialled, labelled by party.
#: Connection pooling shows up here: N sends over one persistent
#: connection increment it once.
TRANSPORT_CONNECTS_METRIC = "repro_transport_connections_total"


@dataclass(frozen=True)
class RetryPolicy:
    """Connection retry, backoff, and I/O deadline parameters."""

    #: Delivery attempts per message (>= 1).
    attempts: int = 4
    #: Backoff before retry i is ``base_delay * 2**i``, capped below.
    base_delay: float = 0.05
    max_delay: float = 1.0
    #: Seconds to wait for a TCP connect to complete.
    connect_timeout: float = 2.0
    #: Seconds to wait for an acknowledgement or control response.
    io_timeout: float = 10.0
    #: Random extra backoff as a fraction of the base delay (0.25 =
    #: up to 25% longer), decorrelating retry storms across parties.
    jitter: float = 0.25
    #: Seconds granted to the shutdown coroutine and the loop thread
    #: join during :meth:`TcpTransport.close`.
    shutdown_timeout: float = 5.0
    #: Idle persistent connections kept per peer.  Sends check a
    #: connection out of the pool and return it healthy, so sequential
    #: traffic reuses one socket and concurrent sessions fan out to at
    #: most this many.
    pool_size: int = 2

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        base = min(self.max_delay, self.base_delay * (2 ** attempt))
        if rng is not None and self.jitter > 0:
            base *= 1.0 + rng.random() * self.jitter
        return base


class TcpTransport(Transport):
    """Transport over asyncio TCP sockets (one endpoint per party)."""

    def __init__(
        self,
        endpoints: Mapping[str, tuple[str, int]] | None = None,
        *,
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
        server_options: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__()
        self.retry = retry or RetryPolicy()
        self._endpoints: dict[str, tuple[str, int]] = dict(endpoints or {})
        self._host = host
        #: Keyword arguments applied to every locally hosted
        #: :class:`PartyServer` (``max_sessions``, ``ack_delay``, ...).
        self._server_options = dict(server_options or {})
        self._servers: dict[str, PartyServer] = {}
        #: Idle persistent connections per peer, most recently used
        #: last.  All pool operations run on the transport loop, so no
        #: lock is needed; a checked-out connection is simply absent
        #: from the pool until released.
        self._pools: dict[
            str, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}
        #: Session ids this transport has put on the wire; told to every
        #: endpoint (SESSION close) at shutdown so server-side state is
        #: released eagerly instead of waiting for the TTL sweep.
        self._sessions_used: set[str] = set()
        self._closed = False
        #: Distinguishes this transport's envelopes in request ids, so
        #: endpoint dedupe never conflates two transports' sequences.
        self._origin = secrets.token_hex(4)
        #: Backoff jitter source.  Deliberately private and seeded so
        #: retries never perturb the protocols' shuffle randomness and
        #: fault-plan replays stay deterministic.
        self._jitter_rng = random.Random(0x5EED)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-tcp-transport", daemon=True
        )
        self._thread.start()

    # -- loop plumbing ----------------------------------------------------

    def _run(self, coroutine) -> Any:
        """Run one coroutine on the transport loop, from the caller thread."""
        if self._closed:
            coroutine.close()
            raise NetworkError("transport is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- registration ------------------------------------------------------

    def endpoint_of(self, party: str) -> tuple[str, int]:
        if party not in self._endpoints:
            raise NetworkError(f"no endpoint known for party {party!r}")
        return self._endpoints[party]

    def register(self, party: str) -> None:
        """Register a party and verify its endpoint answers a handshake.

        Parties without a configured endpoint get one hosted locally on
        an ephemeral loopback port.
        """
        super().register(party)
        if party not in self._endpoints:
            server = PartyServer(
                party, host=self._host, port=0, **self._server_options
            )
            self._endpoints[party] = self._run(server.start())
            self._servers[party] = server
        self._run(self._handshake(party))

    def local_server(self, party: str) -> PartyServer | None:
        """The locally hosted endpoint for ``party``, if any."""
        return self._servers.get(party)

    # -- transmission -------------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Serialize, frame, transmit, and await the acknowledgement.

        Delivery is effectively-once: the envelope's unique request id
        lets the receiving endpoint absorb re-deliveries, so every
        failure mode — not just refused connects — is retried under
        :class:`RetryPolicy`.  The caller's installed deadline (if any)
        is captured here, on the caller thread, and propagated into the
        transport loop explicitly.
        """
        self._require_parties(sender, receiver)
        session_id = current_session_id()
        if session_id is not None:
            self._sessions_used.add(session_id)
        with tracing.span(
            f"send:{kind}", sender, kind="message", receiver=receiver
        ) as span:
            sequence = self._take_sequence()
            trace = span.context().to_wire() if span is not None else None
            payload = codec.encode_envelope(
                sequence, sender, receiver, kind, body,
                trace=trace, request_id=f"{self._origin}:{sequence}",
                session_id=session_id,
            )
            frame = codec.build_frame(codec.DATA, payload)
            self._run(
                self._deliver(receiver, frame, sequence, current_deadline())
            )
            # The recorded body is the decoded wire payload: whatever the
            # receiver could reconstruct is what the transcript carries.
            decoded_body = codec.decode_envelope(payload)[4]
            message = self._record(
                sequence, sender, receiver, kind, decoded_body, len(frame)
            )
            if span is not None:
                span.attributes["size_bytes"] = message.size_bytes
                span.attributes["sequence"] = message.sequence
            return message

    def remote_view(
        self, party: str, session: str | None = None
    ) -> list[RemoteRecord]:
        """Fetch the view recorded at a party's endpoint (FETCH/VIEW).

        ``session`` narrows the view to one session's records — the
        isolation boundary: a session filter never reveals another
        session's traffic.
        """
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        body = {} if session is None else {"session": session}
        response = self._run(
            self._request(
                party, codec.FETCH, body, expect=codec.VIEW,
                deadline=current_deadline(),
            )
        )
        return [RemoteRecord(**record) for record in response]

    def open_session(self, session_id: str, parties=None) -> None:
        """Explicitly open a session at endpoints (SESSION/OK round).

        Optional — the first DATA frame of a session opens it
        implicitly — but an explicit open surfaces
        :class:`~repro.errors.ServerBusy` *before* any protocol work is
        done.  Defaults to every registered party.
        """
        self._sessions_used.add(session_id)
        for party in (parties if parties is not None else list(self._parties)):
            self._run(
                self._request(
                    party, codec.SESSION,
                    {"op": "open", "session": session_id},
                    expect=codec.OK, deadline=current_deadline(),
                )
            )

    def close_session(self, session_id: str, parties=None) -> None:
        """Explicitly close a session at endpoints, releasing its state."""
        for party in (parties if parties is not None else list(self._parties)):
            self._run(
                self._request(
                    party, codec.SESSION,
                    {"op": "close", "session": session_id},
                    expect=codec.OK, deadline=current_deadline(),
                )
            )
        self._sessions_used.discard(session_id)

    def remote_telemetry(self, party: str, session: str | None = None) -> dict:
        """Fetch the telemetry collected at a party's endpoint.

        Returns the ``TELEMETRY_DATA`` payload: ``{"party", "spans",
        "metrics", "exposition"}`` (see
        :meth:`repro.transport.server.PartyServer.telemetry_snapshot`).
        ``session`` narrows the span list to one session's spans.
        """
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        body = {} if session is None else {"session": session}
        response = self._run(
            self._request(
                party, codec.TELEMETRY, body, expect=codec.TELEMETRY_DATA,
                deadline=current_deadline(),
            )
        )
        if not isinstance(response, dict):
            raise NetworkError(
                f"endpoint {party!r} returned a malformed telemetry "
                f"snapshot: {type(response).__name__}"
            )
        return response

    def harvest_telemetry(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> dict[str, dict]:
        """Pull every endpoint's telemetry into the caller's collectors.

        Endpoint ``recv:`` spans are adopted into ``tracer`` (default:
        the installed tracer) and endpoint metric families merged into
        ``registry`` (default: the installed registry) — after this, the
        caller holds one stitched distributed trace and one combined
        registry.  Returns the raw per-party snapshots.
        """
        tracer = tracer if tracer is not None else tracing.get_tracer()
        registry = registry if registry is not None else get_registry()
        snapshots: dict[str, dict] = {}
        for party in self._parties:
            snapshot = self.remote_telemetry(party)
            snapshots[party] = snapshot
            if tracer is not None:
                tracer.adopt(
                    Span.from_dict(record)
                    for record in snapshot.get("spans", [])
                )
            if registry is not None and snapshot.get("metrics"):
                registry.merge(snapshot["metrics"])
        return snapshots

    # -- fault hooks ---------------------------------------------------------

    def crash_party(self, party: str) -> None:
        """Kill a locally hosted endpoint and sever its cached stream.

        The fault injector's ``crash`` action calls this so that a
        "dead datasource" is a real socket death: the port stops
        answering and subsequent deliveries exhaust their retries
        against a connection-refused endpoint.  Remote (non-hosted)
        endpoints cannot be crashed from here; only the cached stream
        is dropped.
        """
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        server = self._servers.get(party)

        async def _crash() -> None:
            self._drop_pool(party)
            if server is not None:
                await server.stop()

        self._run(_crash())

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Close connections, stop hosted endpoints, stop the loop.

        Shutdown is governed by ``RetryPolicy.shutdown_timeout`` and
        must not leak the loop thread even when endpoints are wedged by
        an injected fault: a shutdown coroutine that overruns its
        budget is cancelled, the loop is stopped regardless, and the
        loop is only closed once its thread has really exited.
        """
        if self._closed:
            return
        self._closed = True  # refuse new work before tearing down
        budget = self.retry.shutdown_timeout
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        try:
            future.result(timeout=budget)
        except (asyncio.TimeoutError, TimeoutError):
            future.cancel()
        except Exception:
            pass  # a wedged endpoint must not block teardown
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=budget)
            if not self._thread.is_alive():
                self._loop.close()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def _shutdown(self) -> None:
        await self._farewell_sessions()
        for party in list(self._pools):
            self._drop_pool(party)
        for server in self._servers.values():
            await server.stop()

    async def _farewell_sessions(self) -> None:
        """Best-effort SESSION close for every session this transport
        used, at every endpoint — one attempt, short timeout, failures
        ignored (the endpoint's TTL sweep is the backstop)."""
        if not self._sessions_used:
            return
        timeout = min(1.0, self.retry.io_timeout)
        for party in self._parties:
            for session_id in self._sessions_used:
                try:
                    reader, writer = await self._acquire(party)
                except Exception:
                    break  # endpoint unreachable: skip its remaining closes
                try:
                    await codec.write_frame(
                        writer,
                        codec.SESSION,
                        codec.encode_value(
                            {"op": "close", "session": session_id}
                        ),
                    )
                    await codec.read_frame(reader, timeout)
                    self._release(party, (reader, writer))
                except Exception:
                    writer.close()

    # -- connection management (runs on the transport loop) ----------------

    def _where(self, party: str) -> str:
        """The host/port/budget suffix every NetworkError must carry."""
        host, port = self.endpoint_of(party)
        return (
            f"(endpoint {party!r} at {host}:{port}, connect timeout "
            f"{self.retry.connect_timeout}s, io timeout "
            f"{self.retry.io_timeout}s)"
        )

    def _io_timeout(self, party: str, deadline: Deadline | None) -> float:
        """The I/O wait budget, capped by the propagated deadline."""
        if deadline is None:
            return self.retry.io_timeout
        remaining = deadline.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"deadline of {deadline.budget}s exhausted before I/O "
                f"{self._where(party)}"
            )
        return min(self.retry.io_timeout, remaining)

    def _count_retry(self, party: str, operation: str) -> None:
        registry = get_registry()
        if registry is not None:
            registry.counter(
                TRANSPORT_RETRIES_METRIC,
                {"party": party, "operation": operation},
                help_text="Delivery/control retries on the TCP transport",
            ).inc()

    async def _backoff(
        self, attempt: int, party: str, operation: str,
        deadline: Deadline | None,
    ) -> None:
        """Sleep the jittered backoff before retry ``attempt``."""
        if attempt == 0:
            return
        self._count_retry(party, operation)
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                f"deadline of {deadline.budget}s exhausted after "
                f"{attempt} attempts {self._where(party)}"
            )
        await asyncio.sleep(self.retry.delay(attempt - 1, self._jitter_rng))

    async def _acquire(
        self, party: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Check a pooled connection out, or dial a fresh one.

        The connection is absent from the pool while checked out —
        concurrent senders to the same peer each get their own socket
        (up to ``RetryPolicy.pool_size`` are kept idle between sends).
        """
        pool = self._pools.get(party, [])
        while pool:
            reader, writer = pool.pop()
            if writer.is_closing() or reader.at_eof():
                writer.close()  # went stale while idle
                continue
            return reader, writer
        host, port = self.endpoint_of(party)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.retry.connect_timeout
            )
        except asyncio.TimeoutError as exc:
            raise NetworkError(
                f"connect timed out after {self.retry.connect_timeout}s "
                f"{self._where(party)}"
            ) from exc
        registry = get_registry()
        if registry is not None:
            registry.counter(
                TRANSPORT_CONNECTS_METRIC,
                {"party": party},
                help_text="TCP connections dialled by the transport",
            ).inc()
        return reader, writer

    def _release(
        self,
        party: str,
        connection: tuple[asyncio.StreamReader, asyncio.StreamWriter],
    ) -> None:
        """Return a healthy connection to the peer's pool (or close it)."""
        reader, writer = connection
        pool = self._pools.setdefault(party, [])
        if (
            self._closed
            or writer.is_closing()
            or reader.at_eof()
            or len(pool) >= self.retry.pool_size
        ):
            writer.close()
            return
        pool.append(connection)

    def _drop_pool(self, party: str) -> None:
        """Close every idle connection to a peer."""
        for _, writer in self._pools.pop(party, []):
            writer.close()

    async def _await_ack(
        self,
        reader: asyncio.StreamReader,
        party: str,
        sequence: int,
        deadline: Deadline | None,
    ) -> dict:
        """Read acknowledgements until ours arrives.

        Stale ACKs — re-acknowledgements of *earlier* sequences left in
        the stream by duplicated frames — are skipped; anything else
        unexpected is an error.
        """
        while True:
            frame_type, payload = await codec.read_frame(
                reader, self._io_timeout(party, deadline)
            )
            ack = self._control_payload(party, frame_type, payload, codec.ACK)
            acked = ack.get("sequence") if isinstance(ack, dict) else None
            if acked == sequence:
                return ack
            if isinstance(acked, int) and acked < sequence:
                continue  # duplicate ACK of an already-delivered message
            raise NetworkError(
                f"wrong acknowledgement: expected #{sequence}, got {ack!r} "
                f"{self._where(party)}"
            )

    async def _deliver(
        self,
        party: str,
        frame: bytes,
        sequence: int,
        deadline: Deadline | None,
    ) -> dict:
        """Send one DATA frame; returns the matching acknowledgement.

        Because the receiving endpoint deduplicates on the envelope's
        request id, re-sending after *any* failure is safe — the frame
        is recorded at most once no matter how many copies arrive.
        """
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            await self._backoff(attempt, party, "deliver", deadline)
            try:
                reader, writer = await self._acquire(party)
            except (ConnectionError, OSError, NetworkError) as exc:
                last_error = exc
                continue
            try:
                writer.write(frame)
                await writer.drain()
                ack = await self._await_ack(reader, party, sequence, deadline)
                self._release(party, (reader, writer))
                return ack
            except ServerBusy as exc:
                # The endpoint answered, just refused the new session:
                # the connection is healthy — keep it, back off, retry.
                self._release(party, (reader, writer))
                last_error = exc
            except asyncio.TimeoutError:
                writer.close()
                last_error = NetworkError(
                    f"timed out after {self._io_timeout(party, deadline)}s "
                    f"waiting for an acknowledgement {self._where(party)}"
                )
            except DeadlineExceeded:
                writer.close()
                raise
            except (ConnectionError, OSError, NetworkError) as exc:
                # The frame may have reached the peer, but request-id
                # dedupe makes the resend idempotent: retry.
                writer.close()
                last_error = exc
        error_type = ServerBusy if isinstance(last_error, ServerBusy) \
            else NetworkError
        raise error_type(
            f"cannot deliver message #{sequence} after "
            f"{self.retry.attempts} attempts {self._where(party)}: "
            f"{last_error}"
        )

    async def _request(
        self,
        party: str,
        frame_type: int,
        body: Any,
        expect: int,
        deadline: Deadline | None = None,
    ) -> Any:
        """One idempotent control round-trip (HELLO, FETCH), with retries."""
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            await self._backoff(attempt, party, "control", deadline)
            try:
                reader, writer = await self._acquire(party)
            except (ConnectionError, OSError, NetworkError) as exc:
                last_error = exc
                continue
            try:
                await codec.write_frame(
                    writer, frame_type, codec.encode_value(body)
                )
                response_type, payload = await codec.read_frame(
                    reader, self._io_timeout(party, deadline)
                )
            except asyncio.TimeoutError as exc:
                writer.close()
                raise NetworkError(
                    f"timed out after {self._io_timeout(party, deadline)}s "
                    f"waiting for a control response {self._where(party)}"
                ) from exc
            except DeadlineExceeded:
                writer.close()
                raise
            except (ConnectionError, OSError, NetworkError) as exc:
                writer.close()
                last_error = exc
                continue
            try:
                value = self._control_payload(
                    party, response_type, payload, expect
                )
            except ServerBusy as exc:
                # Capacity refusal, healthy connection: keep it, retry.
                self._release(party, (reader, writer))
                last_error = exc
                continue
            except NetworkError:
                # An ERROR answer arrives on a healthy connection.
                self._release(party, (reader, writer))
                raise
            self._release(party, (reader, writer))
            return value
        error_type = ServerBusy if isinstance(last_error, ServerBusy) \
            else NetworkError
        raise error_type(
            f"cannot complete control request after "
            f"{self.retry.attempts} attempts {self._where(party)}: "
            f"{last_error}"
        )

    def _control_payload(
        self, party: str, frame_type: int, payload: bytes, expect: int
    ) -> Any:
        value = codec.decode_value(payload)
        if frame_type == codec.BUSY:
            sessions = value.get("sessions") if isinstance(value, dict) else "?"
            limit = value.get("max_sessions") if isinstance(value, dict) else "?"
            raise ServerBusy(
                f"endpoint refused a new session: {sessions}/{limit} "
                f"sessions live {self._where(party)}"
            )
        if frame_type == codec.ERROR:
            detail = value.get("error") if isinstance(value, dict) else value
            raise NetworkError(
                f"endpoint reported: {detail} {self._where(party)}"
            )
        if frame_type != expect:
            raise NetworkError(
                f"unexpected frame type 0x{frame_type:02x} in response "
                f"{self._where(party)}"
            )
        return value

    async def _handshake(self, party: str) -> None:
        response = await self._request(
            party, codec.HELLO, {"party": party},
            expect=codec.OK, deadline=None,
        )
        answered = response.get("party") if isinstance(response, dict) else None
        if answered != party:
            raise NetworkError(
                f"endpoint identifies as {answered!r}, expected {party!r} "
                f"{self._where(party)}"
            )


def fetch_telemetry(host: str, port: int, timeout: float = 10.0) -> dict:
    """One-shot TELEMETRY request against a running endpoint.

    Used by ``repro telemetry`` to inspect a ``serve`` process without
    constructing a full transport.
    """

    async def _fetch() -> dict:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise NetworkError(
                f"cannot reach endpoint at {host}:{port}: {exc}"
            ) from exc
        try:
            await codec.write_frame(
                writer, codec.TELEMETRY, codec.encode_value({})
            )
            frame_type, payload = await codec.read_frame(reader, timeout)
        except asyncio.TimeoutError as exc:
            raise NetworkError(
                f"timed out after {timeout}s waiting for telemetry from "
                f"{host}:{port}"
            ) from exc
        finally:
            writer.close()
        value = codec.decode_value(payload)
        if frame_type == codec.ERROR:
            detail = value.get("error") if isinstance(value, dict) else value
            raise NetworkError(f"endpoint at {host}:{port} reported: {detail}")
        if frame_type != codec.TELEMETRY_DATA or not isinstance(value, dict):
            raise NetworkError(
                f"endpoint at {host}:{port} answered with unexpected frame "
                f"type 0x{frame_type:02x}"
            )
        return value

    return asyncio.run(_fetch())
