"""The TCP transport: protocol messages over real sockets.

:class:`TcpTransport` implements the :class:`~repro.transport.base.Transport`
contract on top of asyncio TCP streams.  Every ``send`` serializes the
message with the binary codec, frames it, ships it to the *receiver's*
endpoint (a :class:`~repro.transport.server.PartyServer`), and waits for
the acknowledgement — so byte counts in the transcript are **actual wire
bytes** and a dead or silent peer surfaces as a
:class:`~repro.errors.NetworkError` instead of a hang.

The protocols in :mod:`repro.core` are synchronous, so the transport
owns a private event loop on a background thread and submits coroutines
to it; callers never touch asyncio.

Topology: parties whose endpoints are listed in ``endpoints`` are
**remote** (typically started with ``repro serve`` in another process);
any party registered without a listed endpoint gets a **locally hosted**
endpoint on an ephemeral loopback port.  Either way every message
crosses a real socket — loopback runs exercise the full codec,
framing, and acknowledgement path.

Failure semantics:

* *Connecting* is retried with exponential backoff (it is idempotent).
* Once a data frame may have reached the peer — any failure after the
  write — the send fails **without retry**: the transcript is the object
  of study, and a blind resend could record the same protocol message
  twice at the receiver.  At-most-once, surfaced loudly.
* An acknowledgement that does not arrive within ``io_timeout`` seconds
  raises :class:`~repro.errors.NetworkError` mentioning the timeout.

The message body a receiver-side protocol step consumes is the
**decoded** round-trip of the encoded frame, never the sender's live
object — a serialization gap cannot hide behind in-process object
sharing.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import NetworkError
from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.tracing import Span, Tracer
from repro.transport import codec
from repro.transport.base import Message, Transport
from repro.transport.server import PartyServer, RemoteRecord


@dataclass(frozen=True)
class RetryPolicy:
    """Connection retry and I/O deadline parameters."""

    #: Connection attempts per delivery (>= 1).
    attempts: int = 4
    #: Backoff before retry i is ``base_delay * 2**i``, capped below.
    base_delay: float = 0.05
    max_delay: float = 1.0
    #: Seconds to wait for a TCP connect to complete.
    connect_timeout: float = 2.0
    #: Seconds to wait for an acknowledgement or control response.
    io_timeout: float = 10.0

    def delay(self, attempt: int) -> float:
        return min(self.max_delay, self.base_delay * (2 ** attempt))


class TcpTransport(Transport):
    """Transport over asyncio TCP sockets (one endpoint per party)."""

    def __init__(
        self,
        endpoints: Mapping[str, tuple[str, int]] | None = None,
        *,
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__()
        self.retry = retry or RetryPolicy()
        self._endpoints: dict[str, tuple[str, int]] = dict(endpoints or {})
        self._host = host
        self._servers: dict[str, PartyServer] = {}
        self._streams: dict[
            str, tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-tcp-transport", daemon=True
        )
        self._thread.start()

    # -- loop plumbing ----------------------------------------------------

    def _run(self, coroutine) -> Any:
        """Run one coroutine on the transport loop, from the caller thread."""
        if self._closed:
            coroutine.close()
            raise NetworkError("transport is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- registration ------------------------------------------------------

    def endpoint_of(self, party: str) -> tuple[str, int]:
        if party not in self._endpoints:
            raise NetworkError(f"no endpoint known for party {party!r}")
        return self._endpoints[party]

    def register(self, party: str) -> None:
        """Register a party and verify its endpoint answers a handshake.

        Parties without a configured endpoint get one hosted locally on
        an ephemeral loopback port.
        """
        super().register(party)
        if party not in self._endpoints:
            server = PartyServer(party, host=self._host, port=0)
            self._endpoints[party] = self._run(server.start())
            self._servers[party] = server
        self._run(self._handshake(party))

    def local_server(self, party: str) -> PartyServer | None:
        """The locally hosted endpoint for ``party``, if any."""
        return self._servers.get(party)

    # -- transmission -------------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Serialize, frame, transmit, and await the acknowledgement."""
        self._require_parties(sender, receiver)
        with tracing.span(
            f"send:{kind}", sender, kind="message", receiver=receiver
        ) as span:
            sequence = self._take_sequence()
            trace = span.context().to_wire() if span is not None else None
            payload = codec.encode_envelope(
                sequence, sender, receiver, kind, body, trace=trace
            )
            frame = codec.build_frame(codec.DATA, payload)
            ack = self._run(self._deliver(receiver, frame))
            if not isinstance(ack, dict) or ack.get("sequence") != sequence:
                raise NetworkError(
                    f"endpoint {receiver!r} acknowledged the wrong message "
                    f"(expected #{sequence}, got {ack!r})"
                )
            # The recorded body is the decoded wire payload: whatever the
            # receiver could reconstruct is what the transcript carries.
            _, _, _, _, decoded_body, _ = codec.decode_envelope(payload)
            message = self._record(
                sequence, sender, receiver, kind, decoded_body, len(frame)
            )
            if span is not None:
                span.attributes["size_bytes"] = message.size_bytes
                span.attributes["sequence"] = message.sequence
            return message

    def remote_view(self, party: str) -> list[RemoteRecord]:
        """Fetch the view recorded at a party's endpoint (FETCH/VIEW)."""
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        response = self._run(
            self._request(party, codec.FETCH, {}, expect=codec.VIEW)
        )
        return [RemoteRecord(**record) for record in response]

    def remote_telemetry(self, party: str) -> dict:
        """Fetch the telemetry collected at a party's endpoint.

        Returns the ``TELEMETRY_DATA`` payload: ``{"party", "spans",
        "metrics", "exposition"}`` (see
        :meth:`repro.transport.server.PartyServer.telemetry_snapshot`).
        """
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        response = self._run(
            self._request(
                party, codec.TELEMETRY, {}, expect=codec.TELEMETRY_DATA
            )
        )
        if not isinstance(response, dict):
            raise NetworkError(
                f"endpoint {party!r} returned a malformed telemetry "
                f"snapshot: {type(response).__name__}"
            )
        return response

    def harvest_telemetry(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> dict[str, dict]:
        """Pull every endpoint's telemetry into the caller's collectors.

        Endpoint ``recv:`` spans are adopted into ``tracer`` (default:
        the installed tracer) and endpoint metric families merged into
        ``registry`` (default: the installed registry) — after this, the
        caller holds one stitched distributed trace and one combined
        registry.  Returns the raw per-party snapshots.
        """
        tracer = tracer if tracer is not None else tracing.get_tracer()
        registry = registry if registry is not None else get_registry()
        snapshots: dict[str, dict] = {}
        for party in self._parties:
            snapshot = self.remote_telemetry(party)
            snapshots[party] = snapshot
            if tracer is not None:
                tracer.adopt(
                    Span.from_dict(record)
                    for record in snapshot.get("spans", [])
                )
            if registry is not None and snapshot.get("metrics"):
                registry.merge(snapshot["metrics"])
        return snapshots

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Close connections, stop hosted endpoints, stop the loop."""
        if self._closed:
            return
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        future.result(timeout=10)
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def _shutdown(self) -> None:
        for _, writer in self._streams.values():
            writer.close()
        self._streams.clear()
        for server in self._servers.values():
            await server.stop()

    # -- connection management (runs on the transport loop) ----------------

    async def _connect(
        self, party: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Cached stream to a party, or a fresh connection (one attempt)."""
        cached = self._streams.get(party)
        if cached is not None:
            return cached
        host, port = self.endpoint_of(party)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.retry.connect_timeout
            )
        except asyncio.TimeoutError as exc:
            raise NetworkError(
                f"connect to {party!r} at {host}:{port} timed out after "
                f"{self.retry.connect_timeout}s"
            ) from exc
        self._streams[party] = (reader, writer)
        return reader, writer

    def _drop_stream(self, party: str) -> None:
        cached = self._streams.pop(party, None)
        if cached is not None:
            cached[1].close()

    async def _deliver(self, party: str, frame: bytes) -> Any:
        """Send one DATA frame; returns the decoded acknowledgement."""
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            if attempt:
                await asyncio.sleep(self.retry.delay(attempt - 1))
            try:
                reader, writer = await self._connect(party)
            except (ConnectionError, OSError, NetworkError) as exc:
                last_error = exc  # connecting is idempotent: retry
                continue
            try:
                writer.write(frame)
                await writer.drain()
                frame_type, payload = await codec.read_frame(
                    reader, self.retry.io_timeout
                )
            except asyncio.TimeoutError as exc:
                self._drop_stream(party)
                raise NetworkError(
                    f"timed out after {self.retry.io_timeout}s waiting for "
                    f"{party!r} to acknowledge"
                ) from exc
            except (ConnectionError, OSError, NetworkError) as exc:
                # The frame may have reached the peer: no blind resend.
                self._drop_stream(party)
                raise NetworkError(
                    f"connection to {party!r} failed mid-delivery: {exc}"
                ) from exc
            return self._control_payload(party, frame_type, payload, codec.ACK)
        host, port = self.endpoint_of(party)
        raise NetworkError(
            f"cannot reach {party!r} at {host}:{port} after "
            f"{self.retry.attempts} attempts: {last_error}"
        )

    async def _request(
        self, party: str, frame_type: int, body: Any, expect: int
    ) -> Any:
        """One idempotent control round-trip (HELLO, FETCH), with retries."""
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            if attempt:
                await asyncio.sleep(self.retry.delay(attempt - 1))
            try:
                reader, writer = await self._connect(party)
                await codec.write_frame(
                    writer, frame_type, codec.encode_value(body)
                )
                response_type, payload = await codec.read_frame(
                    reader, self.retry.io_timeout
                )
            except asyncio.TimeoutError as exc:
                self._drop_stream(party)
                raise NetworkError(
                    f"timed out after {self.retry.io_timeout}s waiting for "
                    f"a control response from {party!r}"
                ) from exc
            except (ConnectionError, OSError, NetworkError) as exc:
                self._drop_stream(party)
                last_error = exc
                continue
            return self._control_payload(party, response_type, payload, expect)
        host, port = self.endpoint_of(party)
        raise NetworkError(
            f"cannot reach {party!r} at {host}:{port} after "
            f"{self.retry.attempts} attempts: {last_error}"
        )

    def _control_payload(
        self, party: str, frame_type: int, payload: bytes, expect: int
    ) -> Any:
        value = codec.decode_value(payload)
        if frame_type == codec.ERROR:
            detail = value.get("error") if isinstance(value, dict) else value
            raise NetworkError(f"endpoint {party!r} reported: {detail}")
        if frame_type != expect:
            raise NetworkError(
                f"endpoint {party!r} answered with unexpected frame type "
                f"0x{frame_type:02x}"
            )
        return value

    async def _handshake(self, party: str) -> None:
        response = await self._request(
            party, codec.HELLO, {"party": party}, expect=codec.OK
        )
        answered = response.get("party") if isinstance(response, dict) else None
        if answered != party:
            host, port = self.endpoint_of(party)
            raise NetworkError(
                f"endpoint at {host}:{port} identifies as {answered!r}, "
                f"expected {party!r}"
            )


def fetch_telemetry(host: str, port: int, timeout: float = 10.0) -> dict:
    """One-shot TELEMETRY request against a running endpoint.

    Used by ``repro telemetry`` to inspect a ``serve`` process without
    constructing a full transport.
    """

    async def _fetch() -> dict:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise NetworkError(
                f"cannot reach endpoint at {host}:{port}: {exc}"
            ) from exc
        try:
            await codec.write_frame(
                writer, codec.TELEMETRY, codec.encode_value({})
            )
            frame_type, payload = await codec.read_frame(reader, timeout)
        except asyncio.TimeoutError as exc:
            raise NetworkError(
                f"timed out after {timeout}s waiting for telemetry from "
                f"{host}:{port}"
            ) from exc
        finally:
            writer.close()
        value = codec.decode_value(payload)
        if frame_type == codec.ERROR:
            detail = value.get("error") if isinstance(value, dict) else value
            raise NetworkError(f"endpoint at {host}:{port} reported: {detail}")
        if frame_type != codec.TELEMETRY_DATA or not isinstance(value, dict):
            raise NetworkError(
                f"endpoint at {host}:{port} answered with unexpected frame "
                f"type 0x{frame_type:02x}"
            )
        return value

    return asyncio.run(_fetch())
