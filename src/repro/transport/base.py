"""The transport abstraction: what every message carrier must provide.

The protocols in :mod:`repro.core` are written against a small contract —
*who* can send *what* to *whom*, in *which order* — plus the
observability guarantees the analyses rely on:

* the full ordered transcript (Listing 1-4 conformance checks),
* per-party **views** — everything a semi-honest party observes
  (the leakage analysis reads the mediator's view to reproduce Table 1),
* per-message byte accounting (E6 bytes-on-the-wire comparison),
* per-party-pair message counts (E5 interaction comparison).

:class:`Transport` extracts that contract so the protocol code is
indifferent to *how* a message travels.  Two implementations exist:

* :class:`repro.mediation.network.Network` — the in-process bus
  (byte counts are structural estimates); the default for tests and
  analyses.
* :class:`repro.transport.tcp.TcpTransport` — real asyncio TCP sockets
  with the binary codec of :mod:`repro.transport.codec` (byte counts are
  actual wire bytes).

All transcript bookkeeping is implemented here once; a concrete
transport implements :meth:`Transport.send` (delivering the message and
choosing its byte count) and calls :meth:`Transport._record`.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import NetworkError
from repro.telemetry import metrics as _metrics

#: Counter of transcript messages, labelled by transport/sender/receiver/kind.
TRANSPORT_MESSAGES_METRIC = "repro_transport_messages_total"
#: Counter of transcript bytes, labelled by transport/sender/receiver/kind.
TRANSPORT_BYTES_METRIC = "repro_transport_bytes_total"


@dataclass(frozen=True)
class Message:
    """One transmitted message."""

    sequence: int
    sender: str
    receiver: str
    kind: str
    body: Any = field(repr=False)
    size_bytes: int

    def summary(self) -> str:
        return (
            f"#{self.sequence:03d} {self.sender} -> {self.receiver}: "
            f"{self.kind} ({self.size_bytes} B)"
        )


@dataclass
class PartyView:
    """What one semi-honest party observes during a protocol run.

    The *view* is the formal object of semi-honest security analyses:
    a party may try to infer anything computable from its view, but acts
    exactly as the protocol prescribes.
    """

    party: str
    sent: list[Message] = field(default_factory=list)
    received: list[Message] = field(default_factory=list)
    notes: dict[str, Any] = field(default_factory=dict)

    def observed_messages(self) -> list[Message]:
        return sorted(self.sent + self.received, key=lambda m: m.sequence)

    def received_kinds(self) -> list[str]:
        return [message.kind for message in self.received]


class Transport(ABC):
    """Registry of parties plus the shared transcript.

    Subclasses deliver messages (:meth:`send`); everything observable —
    views, transcript, byte and interaction accounting — lives here.
    """

    def __init__(self) -> None:
        self._parties: dict[str, PartyView] = {}
        self._messages: list[Message] = []
        self._sequence = itertools.count(1)

    # -- registration -----------------------------------------------------

    def register(self, party: str) -> None:
        if party in self._parties:
            raise NetworkError(f"party {party!r} already registered")
        self._parties[party] = PartyView(party)

    def parties(self) -> tuple[str, ...]:
        return tuple(self._parties)

    def view(self, party: str) -> PartyView:
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        return self._parties[party]

    # -- transmission -------------------------------------------------------

    @abstractmethod
    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Deliver one message and record it in views and transcript."""

    def close(self) -> None:
        """Release transport resources (sockets, loops); bus is a no-op."""

    def _require_parties(self, sender: str, receiver: str) -> None:
        if sender not in self._parties:
            raise NetworkError(f"unknown sender {sender!r}")
        if receiver not in self._parties:
            raise NetworkError(f"unknown receiver {receiver!r}")

    def _take_sequence(self) -> int:
        """Allocate the next transcript sequence number."""
        return next(self._sequence)

    def _record(
        self,
        sequence: int,
        sender: str,
        receiver: str,
        kind: str,
        body: Any,
        size_bytes: int,
    ) -> Message:
        """Append one delivered message to the transcript and both views."""
        message = Message(
            sequence=sequence,
            sender=sender,
            receiver=receiver,
            kind=kind,
            body=body,
            size_bytes=size_bytes,
        )
        self._messages.append(message)
        self._parties[sender].sent.append(message)
        self._parties[receiver].received.append(message)
        registry = _metrics.get_registry()
        if registry is not None:
            labels = {
                "transport": type(self).__name__,
                "sender": sender,
                "receiver": receiver,
                "kind": kind,
            }
            registry.counter(
                TRANSPORT_MESSAGES_METRIC, labels,
                help_text="Messages recorded in the transport transcript",
            ).inc()
            registry.counter(
                TRANSPORT_BYTES_METRIC, labels,
                help_text="Bytes recorded in the transport transcript",
            ).inc(size_bytes)
        return message

    # -- transcript queries ---------------------------------------------------

    @property
    def transcript(self) -> tuple[Message, ...]:
        return tuple(self._messages)

    def messages_from(self, sender: str, receiver: str | None = None) -> list[Message]:
        return [
            m
            for m in self._messages
            if m.sender == sender and (receiver is None or m.receiver == receiver)
        ]

    def messages_of_kind(self, kind: str) -> list[Message]:
        return [m for m in self._messages if m.kind == kind]

    def total_bytes(self) -> int:
        return sum(m.size_bytes for m in self._messages)

    def bytes_between(self, a: str, b: str) -> int:
        """Total traffic on the (undirected) link between two parties."""
        return sum(
            m.size_bytes
            for m in self._messages
            if {m.sender, m.receiver} == {a, b}
        )

    def interaction_count(self, a: str, b: str) -> int:
        """Number of *interactions* of ``a`` with ``b``.

        Following Section 6's usage ("the client has to interact twice
        with the mediator"), an interaction is a maximal run of
        consecutive messages (in transcript order, restricted to the
        a<->b link) initiated by ``a``: the client sending the query is
        one interaction; receiving the reply and sending the next request
        starts the second.
        """
        link = [m for m in self._messages if {m.sender, m.receiver} == {a, b}]
        interactions = 0
        previous_sender = None
        for message in link:
            if message.sender == a and previous_sender != a:
                interactions += 1
            previous_sender = message.sender
        return interactions

    def flow_summary(self) -> list[str]:
        """Human-readable transcript (used by the architecture bench)."""
        return [message.summary() for message in self._messages]

    def edges(self) -> set[tuple[str, str]]:
        """Undirected communication edges (the Figure 1/2 topology)."""
        return {
            tuple(sorted((m.sender, m.receiver))) for m in self._messages
        }


def link_traffic_table(
    transport: Transport, pairs: Iterable[tuple[str, str]]
) -> dict:
    """Bytes per link, for reporting."""
    return {f"{a}<->{b}": transport.bytes_between(a, b) for a, b in pairs}
