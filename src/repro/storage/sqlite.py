"""SQLite storage backend: persistent rows, pushdown, durable caches.

Schema (deliberately vanilla SQL so a Postgres backend can reuse it):

* ``meta_relations(namespace, name, table_id, schema_json, fingerprint)``
  — one row per stored relation; ``table_id`` names the physical table.
* ``rel_<table_id>(c0, c1, ...)`` — typed columns positionally matching
  the relation schema (INT/BOOL -> INTEGER, STRING -> TEXT; booleans
  persist as 0/1).
* ``meta_epochs(namespace, epoch)`` — the per-namespace key epoch.
* ``index_cache(namespace, relation, kind, key, epoch, value)`` — the
  encrypted-index cache; entries written under an old epoch are dropped
  eagerly on rotation and ignored defensively on read.

Selections push down as parameterized WHERE clauses and the DAS server
query runs as a three-way equi-join over temp tables (see
:mod:`repro.relational.sql`'s pushdown compiler); Python never loops
over non-qualifying rows.

A single connection guarded by a lock serves all namespaces; the
``loadgen`` concurrency model (many sessions, one process) is supported
by ``check_same_thread=False`` plus our own mutex.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.relational.conditions import Condition
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, AttributeType, Schema, Value
from repro.relational.sql import compile_bucket_join, compile_select
from repro.storage.base import StorageBackend, relation_fingerprint
from repro.telemetry import tracing

_COLUMN_TYPES = {
    AttributeType.INT: "INTEGER",
    AttributeType.BOOL: "INTEGER",
    AttributeType.STRING: "TEXT",
}

_DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta_relations (
        namespace   TEXT NOT NULL,
        name        TEXT NOT NULL,
        table_id    INTEGER PRIMARY KEY AUTOINCREMENT,
        schema_json TEXT NOT NULL,
        fingerprint BLOB NOT NULL,
        UNIQUE (namespace, name)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS meta_epochs (
        namespace TEXT PRIMARY KEY,
        epoch     INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS index_cache (
        namespace TEXT NOT NULL,
        relation  TEXT NOT NULL,
        kind      TEXT NOT NULL,
        key       BLOB NOT NULL,
        epoch     INTEGER NOT NULL,
        value     BLOB NOT NULL,
        PRIMARY KEY (namespace, relation, kind, key)
    )
    """,
)


def _schema_to_json(schema: Schema) -> str:
    return json.dumps(
        {
            "relation": schema.relation_name,
            "attributes": [
                {"name": a.name, "type": a.type.value} for a in schema.attributes
            ],
        },
        sort_keys=True,
    )


def _schema_from_json(text: str) -> Schema:
    try:
        payload = json.loads(text)
        return Schema(
            payload["relation"],
            [
                Attribute(entry["name"], AttributeType(entry["type"]))
                for entry in payload["attributes"]
            ],
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise StorageError(f"corrupt stored schema: {exc}") from exc


def _to_sql_row(row: Row) -> tuple:
    return tuple(int(v) if isinstance(v, bool) else v for v in row)


def _from_sql_row(raw: Sequence[object], schema: Schema) -> Row:
    values: list[Value] = []
    for attribute, value in zip(schema.attributes, raw):
        if attribute.type is AttributeType.BOOL:
            values.append(bool(value))
        elif attribute.type is AttributeType.INT:
            if not isinstance(value, int):
                raise StorageError(
                    f"stored value {value!r} is not an integer for "
                    f"{attribute.name}"
                )
            values.append(value)
        else:
            if not isinstance(value, str):
                raise StorageError(
                    f"stored value {value!r} is not a string for "
                    f"{attribute.name}"
                )
            values.append(value)
    return tuple(values)


class SQLiteBackend(StorageBackend):
    """Durable backend over a single SQLite database file."""

    kind = "sqlite"
    persistent = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._temp_counter = 0
        try:
            self._connection = sqlite3.connect(
                path, check_same_thread=False, isolation_level=None
            )
            self._connection.execute("PRAGMA journal_mode=WAL")
            for statement in _DDL:
                self._connection.execute(statement)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open sqlite store {path!r}: {exc}") from exc
        # in-memory databases are not persistent across processes
        if path == ":memory:":
            self.persistent = False

    # -- helpers ---------------------------------------------------------

    def _execute(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        try:
            return self._connection.execute(sql, tuple(parameters))
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite error: {exc}") from exc

    def _meta(self, namespace: str, name: str) -> tuple[int, Schema, bytes] | None:
        cursor = self._execute(
            "SELECT table_id, schema_json, fingerprint FROM meta_relations "
            "WHERE namespace = ? AND name = ?",
            (namespace, name),
        )
        row = cursor.fetchone()
        if row is None:
            return None
        return int(row[0]), _schema_from_json(row[1]), bytes(row[2])

    # -- rows ------------------------------------------------------------

    def store_relation(self, namespace: str, relation: Relation) -> bool:
        digest = relation_fingerprint(relation)
        with self._lock:
            existing = self._meta(namespace, relation.name)
            if existing is not None and existing[2] == digest:
                return False
            with tracing.span(
                "storage:store_relation",
                namespace,
                kind="storage",
                backend=self.kind,
                relation=relation.name,
                rows=len(relation),
            ):
                self._execute("BEGIN")
                try:
                    if existing is not None:
                        table_id = existing[0]
                        self._execute(f"DROP TABLE IF EXISTS rel_{table_id}")
                        self._execute(
                            "UPDATE meta_relations SET schema_json = ?, "
                            "fingerprint = ? WHERE table_id = ?",
                            (_schema_to_json(relation.schema), digest, table_id),
                        )
                        self._invalidate_locked(namespace, relation.name)
                    else:
                        cursor = self._execute(
                            "INSERT INTO meta_relations "
                            "(namespace, name, schema_json, fingerprint) "
                            "VALUES (?, ?, ?, ?)",
                            (
                                namespace,
                                relation.name,
                                _schema_to_json(relation.schema),
                                digest,
                            ),
                        )
                        table_id = int(cursor.lastrowid or 0)
                    columns = ", ".join(
                        f"c{i} {_COLUMN_TYPES[a.type]} NOT NULL"
                        for i, a in enumerate(relation.schema.attributes)
                    )
                    self._execute(f"CREATE TABLE rel_{table_id} ({columns})")
                    placeholders = ", ".join(
                        "?" for _ in relation.schema.attributes
                    )
                    self._connection.executemany(
                        f"INSERT INTO rel_{table_id} VALUES ({placeholders})",
                        [_to_sql_row(row) for row in relation],
                    )
                    self._execute("COMMIT")
                except Exception:
                    self._execute("ROLLBACK")
                    raise
            return True

    def load_relation(self, namespace: str, name: str) -> Relation | None:
        with self._lock:
            meta = self._meta(namespace, name)
            if meta is None:
                return None
            table_id, schema, _ = meta
            with tracing.span(
                "storage:load_relation",
                namespace,
                kind="storage",
                backend=self.kind,
                relation=name,
            ):
                rows = self._execute(
                    f"SELECT {', '.join(f'c{i}' for i in range(len(schema.attributes)))} "
                    f"FROM rel_{table_id}"
                ).fetchall()
            return Relation(schema, [_from_sql_row(raw, schema) for raw in rows])

    def relation_names(self, namespace: str) -> list[str]:
        with self._lock:
            rows = self._execute(
                "SELECT name FROM meta_relations WHERE namespace = ? ORDER BY name",
                (namespace,),
            ).fetchall()
        return [row[0] for row in rows]

    def select(
        self, namespace: str, name: str, condition: Condition | None
    ) -> Relation:
        with self._lock:
            meta = self._meta(namespace, name)
            if meta is None:
                raise StorageError(
                    f"relation {name!r} not stored under namespace {namespace!r}"
                )
            table_id, schema, _ = meta
            compiled = compile_select(f"rel_{table_id}", schema, condition)
            with tracing.span(
                "storage:select",
                namespace,
                kind="storage",
                backend=self.kind,
                relation=name,
                pushdown=condition is not None,
            ):
                rows = self._execute(compiled.text, compiled.parameters).fetchall()
            return Relation(schema, [_from_sql_row(raw, schema) for raw in rows])

    # -- server-query pushdown ------------------------------------------

    def bucket_join(
        self,
        left_values: Sequence[bytes],
        right_values: Sequence[bytes],
        pairs: Iterable[tuple[bytes, bytes]],
    ) -> list[tuple[int, int]]:
        with self._lock:
            self._temp_counter += 1
            suffix = self._temp_counter
            left_table = f"temp.bj_left_{suffix}"
            right_table = f"temp.bj_right_{suffix}"
            pairs_table = f"temp.bj_pairs_{suffix}"
            with tracing.span(
                "storage:bucket_join",
                "mediator",
                kind="storage",
                backend=self.kind,
                left=len(left_values),
                right=len(right_values),
            ):
                try:
                    for table in (left_table, right_table):
                        self._execute(
                            f"CREATE TABLE {table} "
                            "(pos INTEGER NOT NULL, val BLOB NOT NULL)"
                        )
                    self._execute(
                        f"CREATE TABLE {pairs_table} "
                        "(lval BLOB NOT NULL, rval BLOB NOT NULL)"
                    )
                    self._connection.executemany(
                        f"INSERT INTO {left_table} VALUES (?, ?)",
                        list(enumerate(left_values)),
                    )
                    self._connection.executemany(
                        f"INSERT INTO {right_table} VALUES (?, ?)",
                        list(enumerate(right_values)),
                    )
                    self._connection.executemany(
                        f"INSERT INTO {pairs_table} VALUES (?, ?)",
                        [(lv, rv) for lv, rv in pairs],
                    )
                    compiled = compile_bucket_join(
                        left_table, right_table, pairs_table
                    )
                    rows = self._execute(compiled.text).fetchall()
                    return [(int(i), int(j)) for i, j in rows]
                except sqlite3.Error as exc:
                    raise StorageError(f"bucket join failed: {exc}") from exc
                finally:
                    for table in (left_table, right_table, pairs_table):
                        try:
                            self._connection.execute(f"DROP TABLE IF EXISTS {table}")
                        except sqlite3.Error:
                            pass

    # -- key epochs ------------------------------------------------------

    def key_epoch(self, namespace: str) -> int:
        with self._lock:
            return self._epoch_locked(namespace)

    def _epoch_locked(self, namespace: str) -> int:
        row = self._execute(
            "SELECT epoch FROM meta_epochs WHERE namespace = ?", (namespace,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def bump_key_epoch(self, namespace: str) -> int:
        with self._lock:
            epoch = self._epoch_locked(namespace) + 1
            self._execute(
                "INSERT INTO meta_epochs (namespace, epoch) VALUES (?, ?) "
                "ON CONFLICT (namespace) DO UPDATE SET epoch = excluded.epoch",
                (namespace, epoch),
            )
            self._execute(
                "DELETE FROM index_cache WHERE namespace = ? AND epoch != ?",
                (namespace, epoch),
            )
            return epoch

    # -- cache -----------------------------------------------------------

    def cache_get(
        self, namespace: str, relation: str, kind: str, key: bytes
    ) -> bytes | None:
        with self._lock:
            epoch = self._epoch_locked(namespace)
            row = self._execute(
                "SELECT value FROM index_cache WHERE namespace = ? AND "
                "relation = ? AND kind = ? AND key = ? AND epoch = ?",
                (namespace, relation, kind, key, epoch),
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def cache_put(
        self, namespace: str, relation: str, kind: str, key: bytes, value: bytes
    ) -> None:
        with self._lock:
            epoch = self._epoch_locked(namespace)
            self._execute(
                "INSERT INTO index_cache (namespace, relation, kind, key, "
                "epoch, value) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (namespace, relation, kind, key) DO UPDATE SET "
                "epoch = excluded.epoch, value = excluded.value",
                (namespace, relation, kind, key, epoch, value),
            )

    def invalidate_relation(self, namespace: str, relation: str) -> int:
        with self._lock:
            return self._invalidate_locked(namespace, relation)

    def _invalidate_locked(self, namespace: str, relation: str) -> int:
        cursor = self._execute(
            "DELETE FROM index_cache WHERE namespace = ? AND relation = ?",
            (namespace, relation),
        )
        return cursor.rowcount if cursor.rowcount is not None else 0

    def cache_size(self, namespace: str | None = None) -> int:
        with self._lock:
            if namespace is None:
                row = self._execute("SELECT COUNT(*) FROM index_cache").fetchone()
            else:
                row = self._execute(
                    "SELECT COUNT(*) FROM index_cache WHERE namespace = ?",
                    (namespace,),
                ).fetchone()
        return int(row[0])

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass

    def describe(self) -> str:
        return f"sqlite:{self.path}"
