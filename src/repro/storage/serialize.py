"""Binary serialization for cached ciphertext artifacts.

The index caches persist three kinds of ciphertext material:

* :class:`~repro.crypto.hybrid.HybridCiphertext` values (commutative
  tuple-set ciphertexts and DAS encrypted tuples),
* large integers (commutative tags/double-encryptions and SRA exponents),
* integer lists (Paillier-encrypted polynomial coefficients).

All formats are length-prefixed and self-delimiting, so corrupted blobs
raise :class:`~repro.errors.StorageError` instead of decoding to garbage
that only fails later inside a protocol step.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.hybrid import HybridCiphertext
from repro.errors import StorageError

_MAGIC_HYBRID = b"SHC1"
_MAGIC_INTS = b"SIL1"


def _pack_chunk(data: bytes) -> bytes:
    return len(data).to_bytes(4, "big") + data


def _unpack_chunk(data: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(data):
        raise StorageError("truncated storage blob: missing length prefix")
    length = int.from_bytes(data[offset : offset + 4], "big")
    offset += 4
    if offset + length > len(data):
        raise StorageError("truncated storage blob: chunk exceeds payload")
    return data[offset : offset + length], offset + length


def serialize_hybrid(ciphertext: HybridCiphertext) -> bytes:
    """Encode a hybrid ciphertext (wrapped keys + DEM body)."""
    parts = [_MAGIC_HYBRID, len(ciphertext.wrapped_keys).to_bytes(4, "big")]
    # Sort by fingerprint so equal ciphertexts serialize identically.
    for fp in sorted(ciphertext.wrapped_keys):
        parts.append(_pack_chunk(fp))
        parts.append(_pack_chunk(ciphertext.wrapped_keys[fp]))
    parts.append(_pack_chunk(ciphertext.body))
    return b"".join(parts)


def deserialize_hybrid(data: bytes) -> HybridCiphertext:
    """Decode a blob produced by :func:`serialize_hybrid`."""
    if len(data) < 8 or data[:4] != _MAGIC_HYBRID:
        raise StorageError("not a serialized hybrid ciphertext")
    count = int.from_bytes(data[4:8], "big")
    offset = 8
    wrapped: dict[bytes, bytes] = {}
    for _ in range(count):
        fp, offset = _unpack_chunk(data, offset)
        blob, offset = _unpack_chunk(data, offset)
        wrapped[fp] = blob
    body, offset = _unpack_chunk(data, offset)
    if offset != len(data):
        raise StorageError("trailing bytes after hybrid ciphertext")
    return HybridCiphertext(wrapped_keys=wrapped, body=body)


def serialize_int(value: int) -> bytes:
    """Encode a non-negative integer (tag, double-encryption, exponent)."""
    if value < 0:
        raise StorageError("cannot serialize negative integer")
    width = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(width, "big")


def deserialize_int(data: bytes) -> int:
    if not data:
        raise StorageError("empty integer blob")
    return int.from_bytes(data, "big")


def serialize_int_list(values: Iterable[int] | Sequence[int]) -> bytes:
    """Encode an ordered list of non-negative integers (coefficients)."""
    chunks = [_pack_chunk(serialize_int(v)) for v in values]
    return _MAGIC_INTS + len(chunks).to_bytes(4, "big") + b"".join(chunks)


def deserialize_int_list(data: bytes) -> list[int]:
    if len(data) < 8 or data[:4] != _MAGIC_INTS:
        raise StorageError("not a serialized integer list")
    count = int.from_bytes(data[4:8], "big")
    offset = 8
    values: list[int] = []
    for _ in range(count):
        chunk, offset = _unpack_chunk(data, offset)
        values.append(deserialize_int(chunk))
    if offset != len(data):
        raise StorageError("trailing bytes after integer list")
    return values
