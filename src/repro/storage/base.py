"""Storage backend contract and the amortized index-cache layer.

The paper's data plane keeps every relation in Python memory and re-pays
the dominant crypto cost (encrypting join attributes) on every query.
Following "Equi-Joins over Encrypted Data for Series of Queries"
(arXiv 2103.05792), this module introduces a pluggable storage engine
that persists

* **relation rows** — the authoritative, schema-typed data of each
  datasource (and the mediator's registry state where relevant),
* **encrypted-index caches** — per-``(namespace, relation)`` key/value
  entries holding commutative tags and double-encryptions, hybrid tuple
  ciphertexts, DAS index tables and encrypted tuples, and Paillier
  polynomial coefficients, all keyed by a **key epoch**.

Cache semantics:

* every entry is written under the namespace's current key epoch; a key
  rotation (``bump_key_epoch``) makes all earlier entries stale and
  eagerly drops them;
* any row mutation of a relation invalidates every cache entry for that
  relation (``invalidate_relation``) — the cached artifacts are
  functions of the row set;
* cache *reads and writes are soft*: :class:`IndexCache` converts
  :class:`~repro.errors.StorageError` into a miss (counted as an
  ``error``), so protocols degrade to recomputing the index instead of
  failing the query when the cache store is unavailable.

Backends implement the small abstract surface below.  The SQLite schema
is deliberately vanilla (typed row tables plus one key/value cache
table) so a Postgres backend can implement the same contract later.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.relational.conditions import Condition
from repro.relational.encoding import encode_relation
from repro.relational.relation import Relation, Row
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry

#: Cache entry kinds — one namespace of keys per cached artifact family.
KIND_COMM_KEY = "comm_key"
KIND_COMM_TAG = "comm_tag"
KIND_COMM_DOUBLE = "comm_double"
KIND_COMM_TUPLES = "comm_tuples"
KIND_DAS_INDEX = "das_index"
KIND_DAS_TUPLE = "das_tuple"
KIND_PM_COEFFS = "pm_coeffs"

CACHE_HITS_METRIC = "repro_storage_cache_hits_total"
CACHE_MISSES_METRIC = "repro_storage_cache_misses_total"
CACHE_ERRORS_METRIC = "repro_storage_cache_errors_total"


def relation_fingerprint(relation: Relation) -> bytes:
    """Content digest of a relation (rows + schema), 16 bytes.

    Cache keys for artifacts derived from a *filtered view* (the partial
    result after access control and selection pushdown) embed this
    digest, so two queries share cache entries exactly when they operate
    on the same row set.
    """
    return hashlib.sha256(encode_relation(relation)).digest()[:16]


@dataclass
class CacheStats:
    """Counters for one cache client (usually one datasource)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
        }

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.errors += other.errors


@dataclass(frozen=True)
class StoredRelation:
    """A persisted relation plus its stored content fingerprint."""

    relation: Relation
    fingerprint: bytes


class StorageBackend(abc.ABC):
    """Abstract persistent store for rows and encrypted-index caches.

    ``namespace`` is the owning party (datasource name); all methods are
    namespace-scoped so one backend instance can serve a whole
    federation (each source still only ever asks for its own namespace).
    """

    #: Short backend identifier ("memory", "sqlite").
    kind: str = "abstract"
    #: Whether data survives process exit.
    persistent: bool = False

    # -- rows (authoritative data plane) --------------------------------

    @abc.abstractmethod
    def store_relation(self, namespace: str, relation: Relation) -> bool:
        """Persist ``relation`` under ``namespace``.

        Returns ``True`` if the stored content *changed* (new relation,
        or rows differ from what was persisted) — in which case the
        backend has already invalidated the relation's cache entries.
        Storing identical content is a no-op that keeps caches warm.
        """

    @abc.abstractmethod
    def load_relation(self, namespace: str, name: str) -> Relation | None:
        """Load a persisted relation, or ``None`` if absent."""

    @abc.abstractmethod
    def relation_names(self, namespace: str) -> list[str]:
        """Names of relations persisted under ``namespace``, sorted."""

    @abc.abstractmethod
    def select(
        self, namespace: str, name: str, condition: Condition | None
    ) -> Relation:
        """Evaluate ``sigma_condition(relation)`` inside the backend.

        This is the pushdown entry point: the SQLite backend compiles
        the condition to a WHERE clause; the memory backend falls back
        to the Python evaluator.  Raises StorageError if the relation is
        not stored.
        """

    # -- server-query pushdown ------------------------------------------

    @abc.abstractmethod
    def bucket_join(
        self,
        left_values: Sequence[bytes],
        right_values: Sequence[bytes],
        pairs: Iterable[tuple[bytes, bytes]],
    ) -> list[tuple[int, int]]:
        """Positions ``(i, j)`` with ``(left_values[i], right_values[j])``
        matching some ``(lv, rv)`` pair — the DAS server query
        ``sigma_CondS(R1S x R2S)`` over bucket index values.

        The result is sorted by ``(i, j)``, so all backends agree on the
        transcript ordering.
        """

    # -- key epochs ------------------------------------------------------

    @abc.abstractmethod
    def key_epoch(self, namespace: str) -> int:
        """Current key epoch of ``namespace`` (starts at 0)."""

    @abc.abstractmethod
    def bump_key_epoch(self, namespace: str) -> int:
        """Rotate keys: increment the epoch and drop all stale cache
        entries written under earlier epochs.  Returns the new epoch."""

    # -- encrypted-index cache ------------------------------------------

    @abc.abstractmethod
    def cache_get(
        self, namespace: str, relation: str, kind: str, key: bytes
    ) -> bytes | None:
        """Value stored for ``key`` at the *current* epoch, else None."""

    @abc.abstractmethod
    def cache_put(
        self, namespace: str, relation: str, kind: str, key: bytes, value: bytes
    ) -> None:
        """Store ``value`` under the current epoch (overwrites)."""

    @abc.abstractmethod
    def invalidate_relation(self, namespace: str, relation: str) -> int:
        """Drop every cache entry for ``relation``; returns the count."""

    @abc.abstractmethod
    def cache_size(self, namespace: str | None = None) -> int:
        """Number of live cache entries (optionally one namespace)."""

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (connections, file handles)."""

    def describe(self) -> str:
        return self.kind


#: Truncated-SHA256 envelope appended to every cache value by
#: :class:`IndexCache` — a uniform integrity seal, so bit rot (or the
#: fault injector's ``corrupt`` action) in *any* cached artifact is
#: detected at read time and degrades to a recompute, never to a wrong
#: join result.  Bare integers (commutative tags) have no inherent
#: framing, so without this a flipped bit would decode silently.
_SEAL_BYTES = 8


def _seal(value: bytes) -> bytes:
    return value + hashlib.sha256(value).digest()[:_SEAL_BYTES]


def _unseal(data: bytes) -> bytes | None:
    if len(data) < _SEAL_BYTES:
        return None
    value, seal = data[:-_SEAL_BYTES], data[-_SEAL_BYTES:]
    if hashlib.sha256(value).digest()[:_SEAL_BYTES] != seal:
        return None
    return value


@dataclass
class IndexCache:
    """Soft-failure cache facade bound to one backend namespace.

    Protocol code talks to this object, never to the backend directly:
    every backend error is swallowed into a miss (and counted), so a
    broken or fault-injected cache store degrades the protocols to the
    paper's recompute-everything behavior instead of failing queries.
    Values are integrity-sealed (see :func:`_seal`); a failed seal check
    counts as an ``error`` and reads as a miss.
    """

    backend: StorageBackend
    namespace: str
    stats: CacheStats = field(default_factory=CacheStats)

    def _count(self, metric: str, kind: str) -> None:
        registry = get_registry()
        if registry is not None:
            registry.counter(
                metric,
                {"backend": self.backend.kind, "kind": kind},
                help_text="Encrypted-index cache accesses by outcome",
            ).inc()

    def get(self, relation: str, kind: str, key: bytes) -> bytes | None:
        try:
            sealed = self.backend.cache_get(self.namespace, relation, kind, key)
        except StorageError:
            self.stats.errors += 1
            self._count(CACHE_ERRORS_METRIC, kind)
            return None
        if sealed is None:
            self.stats.misses += 1
            self._count(CACHE_MISSES_METRIC, kind)
            return None
        value = _unseal(sealed)
        if value is None:  # corrupted at rest: recompute, don't trust it
            self.stats.errors += 1
            self._count(CACHE_ERRORS_METRIC, kind)
            return None
        self.stats.hits += 1
        self._count(CACHE_HITS_METRIC, kind)
        return value

    def put(self, relation: str, kind: str, key: bytes, value: bytes) -> None:
        try:
            self.backend.cache_put(
                self.namespace, relation, kind, key, _seal(value)
            )
        except StorageError:
            self.stats.errors += 1
            self._count(CACHE_ERRORS_METRIC, kind)
            return
        self.stats.puts += 1

    def epoch(self) -> int:
        try:
            return self.backend.key_epoch(self.namespace)
        except StorageError:
            self.stats.errors += 1
            return -1

    def decode_failure(self, kind: str) -> None:
        """Reclassify the last hit as an error: the blob came back but
        failed deserialization (corruption, format drift).  Callers
        recompute the artifact, so the net accounting is one error and
        no hit — corrupted stores never inflate hit rates."""
        if self.stats.hits > 0:
            self.stats.hits -= 1
        self.stats.errors += 1
        self._count(CACHE_ERRORS_METRIC, kind)

    def span(self, operation: str, **attributes: object):
        """A ``storage:<operation>`` tracing span for cache-heavy steps."""
        return tracing.span(
            f"storage:{operation}",
            self.namespace,
            kind="storage",
            backend=self.backend.kind,
            **attributes,
        )
