"""Fault-injecting storage decorator (the ``storage`` injection site).

Wraps any :class:`~repro.storage.base.StorageBackend` and reports every
operation to the run's :class:`~repro.faults.injector.FaultInjector`
as an observation with ``site="storage"`` and
``kind="storage:<operation>"`` (sender and receiver are both the
namespace the operation targets).  Fired rules enact:

* ``delay`` — sleep ``delay_seconds`` before the operation (slow I/O),
* ``drop``  — raise :class:`~repro.errors.StorageError` (store down),
* ``corrupt`` — cache reads return bit-flipped bytes (the length-
  prefixed deserializers then reject them); for any other operation it
  behaves like ``drop``.

Because the protocols reach caches only through
:class:`~repro.storage.base.IndexCache` (which converts StorageError
into a counted miss), injected cache faults degrade queries to
recomputing indexes — ``tests/faults`` asserts exactly that.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.faults.injector import FaultInjector
from repro.relational.conditions import Condition
from repro.relational.relation import Relation
from repro.storage.base import StorageBackend


def _corrupt(value: bytes | None) -> bytes | None:
    if value is None:
        return None
    if not value:
        return b"\xff"
    # Flip every bit of the first byte; the magic/length framing of the
    # serialized artifacts makes this detectable with certainty.
    return bytes([value[0] ^ 0xFF]) + value[1:]


class FaultyStorage(StorageBackend):
    """Backend decorator that subjects every operation to a fault plan."""

    def __init__(self, inner: StorageBackend, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.kind = inner.kind
        self.persistent = inner.persistent

    def _observe(self, operation: str, namespace: str) -> str | None:
        """Report the operation; returns the enacted action (or None).

        ``drop`` wins over ``corrupt`` wins over plain delay when
        multiple rules fire on one observation.
        """
        fired = self.injector.observe(
            site="storage",
            sender=namespace,
            receiver=namespace,
            kind=f"storage:{operation}",
        )
        action: str | None = None
        for rule in fired:
            if rule.action == "delay" and rule.delay_seconds > 0:
                time.sleep(rule.delay_seconds)
            elif rule.action == "drop":
                action = "drop"
            elif rule.action == "corrupt" and action != "drop":
                action = "corrupt"
        return action

    def _gate(self, operation: str, namespace: str) -> None:
        action = self._observe(operation, namespace)
        if action is not None:
            raise StorageError(
                f"injected storage fault ({action}) during {operation}"
            )

    # -- rows ------------------------------------------------------------

    def store_relation(self, namespace: str, relation: Relation) -> bool:
        self._gate("store_relation", namespace)
        return self.inner.store_relation(namespace, relation)

    def load_relation(self, namespace: str, name: str) -> Relation | None:
        self._gate("load_relation", namespace)
        return self.inner.load_relation(namespace, name)

    def relation_names(self, namespace: str) -> list[str]:
        self._gate("relation_names", namespace)
        return self.inner.relation_names(namespace)

    def select(
        self, namespace: str, name: str, condition: Condition | None
    ) -> Relation:
        self._gate("select", namespace)
        return self.inner.select(namespace, name, condition)

    def bucket_join(
        self,
        left_values: Sequence[bytes],
        right_values: Sequence[bytes],
        pairs: Iterable[tuple[bytes, bytes]],
    ) -> list[tuple[int, int]]:
        self._gate("bucket_join", "mediator")
        return self.inner.bucket_join(left_values, right_values, pairs)

    # -- key epochs ------------------------------------------------------

    def key_epoch(self, namespace: str) -> int:
        self._gate("key_epoch", namespace)
        return self.inner.key_epoch(namespace)

    def bump_key_epoch(self, namespace: str) -> int:
        self._gate("bump_key_epoch", namespace)
        return self.inner.bump_key_epoch(namespace)

    # -- cache -----------------------------------------------------------

    def cache_get(
        self, namespace: str, relation: str, kind: str, key: bytes
    ) -> bytes | None:
        action = self._observe("cache_get", namespace)
        if action == "drop":
            raise StorageError("injected storage fault (drop) during cache_get")
        value = self.inner.cache_get(namespace, relation, kind, key)
        if action == "corrupt":
            return _corrupt(value)
        return value

    def cache_put(
        self, namespace: str, relation: str, kind: str, key: bytes, value: bytes
    ) -> None:
        self._gate("cache_put", namespace)
        self.inner.cache_put(namespace, relation, kind, key, value)

    def invalidate_relation(self, namespace: str, relation: str) -> int:
        self._gate("invalidate_relation", namespace)
        return self.inner.invalidate_relation(namespace, relation)

    def cache_size(self, namespace: str | None = None) -> int:
        return self.inner.cache_size(namespace)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> str:
        return f"faulty({self.inner.describe()})"
