"""In-memory reference storage backend.

Implements the :class:`~repro.storage.base.StorageBackend` contract with
plain dictionaries.  It is the semantic reference the SQLite backend is
tested against (the equivalence suite asserts byte-identical join
results on both), and the default backend when no ``--storage`` spec is
given — non-persistent, but it still provides within-process index-cache
amortization across a query series.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.relational.algebra import select as relational_select
from repro.relational.conditions import Condition
from repro.relational.relation import Relation
from repro.storage.base import StorageBackend, relation_fingerprint


class MemoryBackend(StorageBackend):
    """Dictionary-backed backend; the reference implementation."""

    kind = "memory"
    persistent = False

    def __init__(self) -> None:
        # One lock serializes every operation: concurrent loadgen
        # sessions share a single backend, and unguarded iteration over
        # ``_cache`` (invalidate, epoch bump) would race with puts.
        self._lock = threading.Lock()
        # namespace -> relation name -> (Relation, fingerprint)
        self._relations: dict[str, dict[str, tuple[Relation, bytes]]] = {}
        # namespace -> epoch
        self._epochs: dict[str, int] = {}
        # (namespace, relation, kind, key) -> (epoch, value)
        self._cache: dict[tuple[str, str, str, bytes], tuple[int, bytes]] = {}

    # -- rows ------------------------------------------------------------

    def store_relation(self, namespace: str, relation: Relation) -> bool:
        digest = relation_fingerprint(relation)
        with self._lock:
            bucket = self._relations.setdefault(namespace, {})
            existing = bucket.get(relation.name)
            if existing is not None and existing[1] == digest:
                return False
            bucket[relation.name] = (relation, digest)
            if existing is not None:
                self._invalidate_locked(namespace, relation.name)
            return True

    def load_relation(self, namespace: str, name: str) -> Relation | None:
        with self._lock:
            entry = self._relations.get(namespace, {}).get(name)
        return entry[0] if entry is not None else None

    def relation_names(self, namespace: str) -> list[str]:
        with self._lock:
            return sorted(self._relations.get(namespace, {}))

    def select(
        self, namespace: str, name: str, condition: Condition | None
    ) -> Relation:
        relation = self.load_relation(namespace, name)
        if relation is None:
            raise StorageError(
                f"relation {name!r} not stored under namespace {namespace!r}"
            )
        if condition is None:
            return relation
        return relational_select(relation, condition)

    # -- server-query pushdown ------------------------------------------

    def bucket_join(
        self,
        left_values: Sequence[bytes],
        right_values: Sequence[bytes],
        pairs: Iterable[tuple[bytes, bytes]],
    ) -> list[tuple[int, int]]:
        left_groups: dict[bytes, list[int]] = {}
        for position, value in enumerate(left_values):
            left_groups.setdefault(value, []).append(position)
        right_groups: dict[bytes, list[int]] = {}
        for position, value in enumerate(right_values):
            right_groups.setdefault(value, []).append(position)
        matches: set[tuple[int, int]] = set()
        for left_value, right_value in pairs:
            for i in left_groups.get(left_value, ()):
                for j in right_groups.get(right_value, ()):
                    matches.add((i, j))
        return sorted(matches)

    # -- key epochs ------------------------------------------------------

    def key_epoch(self, namespace: str) -> int:
        with self._lock:
            return self._epochs.get(namespace, 0)

    def bump_key_epoch(self, namespace: str) -> int:
        with self._lock:
            epoch = self._epochs.get(namespace, 0) + 1
            self._epochs[namespace] = epoch
            stale = [
                entry_key
                for entry_key, (entry_epoch, _) in self._cache.items()
                if entry_key[0] == namespace and entry_epoch != epoch
            ]
            for entry_key in stale:
                del self._cache[entry_key]
            return epoch

    # -- cache -----------------------------------------------------------

    def cache_get(
        self, namespace: str, relation: str, kind: str, key: bytes
    ) -> bytes | None:
        with self._lock:
            entry = self._cache.get((namespace, relation, kind, key))
            if entry is None:
                return None
            epoch, value = entry
            if epoch != self._epochs.get(namespace, 0):
                return None
            return value

    def cache_put(
        self, namespace: str, relation: str, kind: str, key: bytes, value: bytes
    ) -> None:
        with self._lock:
            epoch = self._epochs.get(namespace, 0)
            self._cache[(namespace, relation, kind, key)] = (epoch, value)

    def invalidate_relation(self, namespace: str, relation: str) -> int:
        with self._lock:
            return self._invalidate_locked(namespace, relation)

    def _invalidate_locked(self, namespace: str, relation: str) -> int:
        stale = [
            entry_key
            for entry_key in self._cache
            if entry_key[0] == namespace and entry_key[1] == relation
        ]
        for entry_key in stale:
            del self._cache[entry_key]
        return len(stale)

    def cache_size(self, namespace: str | None = None) -> int:
        with self._lock:
            if namespace is None:
                return len(self._cache)
            return sum(
                1 for entry_key in self._cache if entry_key[0] == namespace
            )
