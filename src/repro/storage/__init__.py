"""Persistent encrypted storage engine (rows + amortized index caches).

See :mod:`repro.storage.base` for the backend contract and cache
semantics, :mod:`repro.storage.memory` / :mod:`repro.storage.sqlite`
for the two shipped backends, and ``docs/storage.md`` for the design
notes (schema, pushdown, leakage of data at rest).
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.base import (
    CACHE_ERRORS_METRIC,
    CACHE_HITS_METRIC,
    CACHE_MISSES_METRIC,
    KIND_COMM_DOUBLE,
    KIND_COMM_KEY,
    KIND_COMM_TAG,
    KIND_COMM_TUPLES,
    KIND_DAS_INDEX,
    KIND_DAS_TUPLE,
    KIND_PM_COEFFS,
    CacheStats,
    IndexCache,
    StorageBackend,
    relation_fingerprint,
)
from repro.storage.faulty import FaultyStorage
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SQLiteBackend


def storage_from_spec(spec: str | None) -> StorageBackend | None:
    """Build a backend from a CLI-style spec.

    * ``None`` / ``""`` — no storage (the pre-storage data plane),
    * ``"memory"`` — in-process :class:`MemoryBackend`,
    * ``"sqlite:PATH"`` — durable :class:`SQLiteBackend` at ``PATH``
      (``sqlite::memory:`` gives a private, non-persistent database).
    """
    if spec is None or spec == "":
        return None
    if spec == "memory":
        return MemoryBackend()
    if spec.startswith("sqlite:"):
        path = spec[len("sqlite:"):]
        if not path:
            raise StorageError("sqlite storage spec needs a path: sqlite:PATH")
        return SQLiteBackend(path)
    raise StorageError(
        f"unknown storage spec {spec!r}; expected 'memory' or 'sqlite:PATH'"
    )


__all__ = [
    "CACHE_ERRORS_METRIC",
    "CACHE_HITS_METRIC",
    "CACHE_MISSES_METRIC",
    "KIND_COMM_DOUBLE",
    "KIND_COMM_KEY",
    "KIND_COMM_TAG",
    "KIND_COMM_TUPLES",
    "KIND_DAS_INDEX",
    "KIND_DAS_TUPLE",
    "KIND_PM_COEFFS",
    "CacheStats",
    "FaultyStorage",
    "IndexCache",
    "MemoryBackend",
    "SQLiteBackend",
    "StorageBackend",
    "StorageError",
    "relation_fingerprint",
    "storage_from_spec",
]
