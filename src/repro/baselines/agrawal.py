"""The Agrawal-Evfimievski-Srikant two-party protocols (baseline, [1]).

Two semi-honest parties — a **receiver** R and a **sender** S — each
hold a value set; the receiver is to learn the intersection (or, for the
equijoin, the sender tuples joining with its own) and nothing else
beyond |V_S|.  The commutative-encryption machinery is the same our
mediated Listing-3 protocol uses; what differs is the trust topology:

* here, the *receiver itself* matches double-encrypted values and learns
  the plaintext intersection values;
* in the mediated adaptation, matching moves to the untrusted mediator,
  which learns only *counts*, and the client learns the result without
  either source learning the other's data.

That contrast is exactly what benchmark A6 measures.

Protocol (intersection), with f the commutative cipher and h the ideal
hash:

1. R -> S: Y_R = { f_eR(h(v)) : v in V_R }   (shuffled)
2. S -> R: Y_S = { f_eS(h(u)) : u in V_S }   (shuffled), and
           Z_R = { (y, f_eS(y)) : y in Y_R }
3. R computes f_eR(y') for every y' in Y_S and intersects with
   { f_eS(f_eR(h(v))) } from Z_R: commutativity makes the double
   encryptions of equal values collide, so R identifies which of *its
   own* v are shared.

For the equijoin the sender additionally attaches, per value, its tuple
set encrypted under a value-derived key K(u) = KDF(f_eS2(h2(u))) using a
*second* commutative key pair, and supplies the receiver with
f_eS2(h2(v))-values for the receiver's (blinded) inputs so exactly the
matching payloads can be opened.  We implement the payload channel with
the session-key KDF directly on the double-encrypted tag — equivalent
key-derivation structure, one key pair fewer (documented simplification).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.joinkeys import JoinKey, encode_key, group_by_key
from repro.crypto import commutative as comm
from repro.crypto import groups, hybrid
from repro.crypto.hashes import IdealHash, expand
from repro.crypto.numtheory import int_to_bytes
from repro.mediation.network import Network
from repro.relational.encoding import decode_rows, encode_rows
from repro.relational.relation import Relation

RECEIVER = "receiver"
SENDER = "sender"


@dataclass
class TwoPartyResult:
    """Outcome of one two-party baseline run."""

    #: What the receiver learned (values, or joined relation).
    intersection: tuple[JoinKey, ...] = ()
    joined: Relation | None = None
    network: Network = field(default_factory=Network)
    #: Cardinalities disclosed by construction.
    receiver_set_size: int = 0
    sender_set_size: int = 0


def _setup(group_bits: int) -> tuple[comm.CommutativeGroup, IdealHash, Network]:
    group = groups.commutative_group(group_bits)
    network = Network()
    network.register(RECEIVER)
    network.register(SENDER)
    return group, IdealHash(group.p), network


def _shuffled(items: list) -> list:
    shuffled = list(items)
    random.SystemRandom().shuffle(shuffled)
    return shuffled


def two_party_intersection(
    receiver_keys: set[JoinKey],
    sender_keys: set[JoinKey],
    group_bits: int = groups.TEST_GROUP_BITS,
) -> TwoPartyResult:
    """The [1] intersection protocol; the receiver learns V_R ∩ V_S."""
    group, ideal_hash, network = _setup(group_bits)
    key_r = comm.generate_key(group)
    key_s = comm.generate_key(group)

    # Step 1: receiver blinds its values and sends them.
    receiver_order = list(receiver_keys)
    blinded_r = [comm.apply(key_r, ideal_hash(encode_key(k))) for k in receiver_order]
    network.send(RECEIVER, SENDER, "blinded_set", _shuffled(blinded_r))

    # Step 2: sender returns its own blinded set plus the double
    # encryptions of the receiver's, keyed by the received value so the
    # receiver keeps the correspondence.
    blinded_s = [comm.apply(key_s, ideal_hash(encode_key(k))) for k in sender_keys]
    network.send(SENDER, RECEIVER, "blinded_set", _shuffled(blinded_s))
    double_of_r = {y: comm.apply(key_s, y) for y in blinded_r}
    network.send(SENDER, RECEIVER, "double_encrypted_pairs", double_of_r)

    # Step 3: receiver raises the sender's singles and matches.
    doubles_of_s = {comm.apply(key_r, y) for y in blinded_s}
    intersection = tuple(
        sorted(
            (
                key
                for key, blinded in zip(receiver_order, blinded_r)
                if double_of_r[blinded] in doubles_of_s
            ),
            key=lambda k: tuple((type(v).__name__, v) for v in k),
        )
    )
    return TwoPartyResult(
        intersection=intersection,
        network=network,
        receiver_set_size=len(receiver_keys),
        sender_set_size=len(sender_keys),
    )


def _payload_key(sender_tag: int) -> bytes:
    """Value-derived sealing key K(u) = KDF(f_eS(h(u)))."""
    return expand(int_to_bytes(sender_tag), 32, tag=b"agrawal/payload-key")


def _handle(key: bytes) -> bytes:
    """Deterministic lookup handle derivable only from the sealing key."""
    return expand(key, 16, tag=b"agrawal/handle")


def two_party_equijoin(
    receiver_relation: Relation,
    sender_relation: Relation,
    join_attributes: tuple[str, ...],
    group_bits: int = groups.TEST_GROUP_BITS,
) -> TwoPartyResult:
    """The [1] equijoin: the receiver learns the sender tuples that join.

    Key derivation follows [1]'s kappa(v)-construction: each sender
    tuple set is sealed under ``K(u) = KDF(f_eS(h(u)))``.  The sender
    never reveals its single encryptions directly; the receiver obtains
    ``f_eS(h(v))`` only for *its own* values, by stripping its key from
    the double encryptions the sender returns — so only matching seals
    can be opened, and unmatched sender values stay hidden.
    """
    group, ideal_hash, network = _setup(group_bits)
    key_r = comm.generate_key(group)
    key_s = comm.generate_key(group)

    receiver_groups = group_by_key(receiver_relation, join_attributes)
    sender_groups = group_by_key(sender_relation, join_attributes)
    receiver_order = list(receiver_groups)
    blinded_r = [
        comm.apply(key_r, ideal_hash(encode_key(k))) for k in receiver_order
    ]
    network.send(RECEIVER, SENDER, "blinded_set", _shuffled(blinded_r))

    # Sender: seal every tuple set under its value-derived key; ship
    # (handle, ciphertext) pairs plus the double encryptions of the
    # receiver's blinded values.
    sealed: dict[bytes, bytes] = {}
    for sender_key, rows in sender_groups.items():
        tag = comm.apply(key_s, ideal_hash(encode_key(sender_key)))
        sealing_key = _payload_key(tag)
        sealed[_handle(sealing_key)] = hybrid.session_encrypt(
            sealing_key, encode_rows(rows)
        )
    network.send(
        SENDER, RECEIVER, "sealed_tuple_sets",
        dict(_shuffled(list(sealed.items()))),
    )
    double_of_r = {y: comm.apply(key_s, y) for y in blinded_r}
    network.send(SENDER, RECEIVER, "double_encrypted_pairs", double_of_r)

    # Receiver: for each own value, recover f_eS(h(v)) by stripping its
    # own exponent from the double encryption, derive the key, look up.
    matched_rows = []
    intersection = []
    for own_key, blinded in zip(receiver_order, blinded_r):
        sender_tag = comm.invert(key_r, double_of_r[blinded])
        sealing_key = _payload_key(sender_tag)
        blob = sealed.get(_handle(sealing_key))
        if blob is None:
            continue
        intersection.append(own_key)
        sender_rows = decode_rows(
            hybrid.session_decrypt(sealing_key, blob),
            sender_relation.schema,
        )
        receiver_names = set(receiver_relation.schema.names())
        extra_positions = [
            i
            for i, name in enumerate(sender_relation.schema.names())
            if name not in receiver_names
        ]
        for own_row in receiver_groups[own_key]:
            for sender_row in sender_rows:
                matched_rows.append(
                    own_row + tuple(sender_row[i] for i in extra_positions)
                )

    joined_schema = receiver_relation.schema.join_schema(
        sender_relation.schema, "two_party_join"
    )
    return TwoPartyResult(
        intersection=tuple(
            sorted(
                intersection,
                key=lambda k: tuple((type(v).__name__, v) for v in k),
            )
        ),
        joined=Relation(joined_schema, matched_rows),
        network=network,
        receiver_set_size=len(receiver_groups),
        sender_set_size=len(sender_groups),
    )
