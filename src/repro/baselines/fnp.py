"""The Freedman-Nissim-Pinkas private-matching protocol (baseline, [12]).

Two parties: the **chooser** C holds a set and the homomorphic key pair;
the **sender** S holds a set with optional per-value payloads.  The
chooser learns the intersection (plus the payloads of matched values);
the sender learns only |C's set| (the polynomial degree).

This is the original our Listing-4 adaptation distributes across
client/mediator/datasources; the baseline's trust topology differs: the
chooser is a *data party* that learns the intersection values directly,
whereas the mediated client learns only the combined join result and
neither source learns anything about the other beyond |domactive|.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.joinkeys import JoinKey, int_to_key, key_to_int
from repro.core.payload import decode_payload, encode_payload
from repro.crypto.homomorphic import AdditiveHomomorphicScheme
from repro.crypto.polynomial import encrypt_polynomial, from_roots
from repro.mediation.network import Network

CHOOSER = "chooser"
SENDER = "sender"


@dataclass
class PrivateMatchingResult:
    """What the chooser learned, plus the transcript."""

    #: matched values, with the sender's payload where one was attached.
    matches: dict[JoinKey, bytes | None] = field(default_factory=dict)
    network: Network = field(default_factory=Network)
    chooser_set_size: int = 0
    sender_set_size: int = 0


def two_party_private_matching(
    scheme: AdditiveHomomorphicScheme,
    chooser_keys: set[JoinKey],
    sender_payloads: Mapping[JoinKey, bytes | None],
    max_key_bytes: int = 48,
) -> PrivateMatchingResult:
    """Run the original FNP protocol between two in-process parties."""
    network = Network()
    network.register(CHOOSER)
    network.register(SENDER)

    # Chooser: key pair, polynomial with its values as roots, encrypted
    # coefficients to the sender.
    private_key = scheme.generate_keypair()
    public_key = scheme.public_key(private_key)
    modulus = scheme.plaintext_bound(public_key)
    roots = [key_to_int(key, max_key_bytes) for key in chooser_keys]
    encrypted = encrypt_polynomial(
        scheme, public_key, from_roots(roots, modulus)
    )
    network.send(CHOOSER, SENDER, "public_key", public_key)
    network.send(
        CHOOSER, SENDER, "encrypted_coefficients", list(encrypted.coefficients)
    )

    # Sender: one masked evaluation per own value, payload attached.
    evaluations: list[Any] = []
    for sender_key, payload in sender_payloads.items():
        root = key_to_int(sender_key, max_key_bytes)
        body = payload if payload is not None else b""
        plaintext = encode_payload(sender_key, body, modulus)
        mask = 1 + secrets.randbelow(modulus - 1)
        evaluations.append(encrypted.masked_evaluate(root, mask, plaintext))
    random.SystemRandom().shuffle(evaluations)
    network.send(SENDER, CHOOSER, "masked_evaluations", evaluations)

    # Chooser: decrypt; well-formed payloads identify the intersection.
    matches: dict[JoinKey, bytes | None] = {}
    for ciphertext in evaluations:
        decoded = decode_payload(scheme.decrypt(private_key, ciphertext))
        if decoded is None:
            continue
        matched_key = int_to_key(
            int.from_bytes(b"\x01" + decoded.key_bytes, "big")
        )
        # FNP semantics: the chooser keeps only values from its own set
        # (a payload surviving for a foreign value cannot happen -
        # P(a') != 0 - but the check is the protocol's specified step).
        if matched_key in chooser_keys:
            matches[matched_key] = decoded.body or None
    return PrivateMatchingResult(
        matches=matches,
        network=network,
        chooser_set_size=len(chooser_keys),
        sender_set_size=len(sender_payloads),
    )
