"""Two-party baseline protocols the paper adapts.

The mediated protocols of Sections 4 and 5 are adaptations of two-party
originals; implementing the originals gives the natural baselines for
comparing what mediation adds and costs:

* :mod:`~repro.baselines.agrawal` — Agrawal/Evfimievski/Srikant [1]:
  commutative-encryption intersection and equijoin between a *sender*
  and a *receiver* (the receiver learns the matching data — and the
  plaintext intersection values, unlike the mediated client-only view).
* :mod:`~repro.baselines.fnp` — Freedman/Nissim/Pinkas [12]: private
  matching between a *chooser* and a *sender* via oblivious polynomial
  evaluation.
"""

from repro.baselines.agrawal import (
    two_party_equijoin,
    two_party_intersection,
)
from repro.baselines.fnp import two_party_private_matching

__all__ = [
    "two_party_equijoin",
    "two_party_intersection",
    "two_party_private_matching",
]
