"""Delivery phase with the Database-as-a-Service scheme — Listing 2.

The DAS protocol (after Hacigumus et al. [13], adapted to the MMM):

1. Each source S_i partitions ``domactive(A_join)`` and maps partitions
   to index values in ``ITable_{R_i.A_join}``.
2. S_i encrypts R_i DAS-style — each tuple t becomes
   ``<etuple, a_S_join>`` with ``etuple = encrypt(t)`` (hybrid, client
   keys) and ``a_S_join`` the tuple's partition index value — and
   hybrid-encrypts the index table itself.
3. S_i sends ``<R_i^S, encrypt(ITable)>`` to the mediator.
4. The mediator forwards both encrypted index tables to the client.
5. The client decrypts the tables and translates q into the server query
   ``q_S`` (a disjunction over overlapping partition pairs) and the
   client query ``q_C``; it sends ``q_S`` to the mediator.
6. The mediator computes ``R_C = sigma_CondS(R1^S x R2^S)`` on the
   encrypted relations and returns R_C.
7. The client decrypts R_C and applies ``q_C`` (the real join-attribute
   equality) to obtain the global result.

The paper names three translator placements ("it is possible to place
the DAS query translator in any layer of the mediation system"); all
three are implemented:

* **client setting** (the paper's protocol, Listing 2) — index tables
  travel hybrid-encrypted to the client, which translates q;
* **source setting** — one datasource translates: the opposite index
  table is encrypted *for that source*, which learns it (inter-source
  leakage instead of client round trips);
* **mediator setting** — an explicitly insecure baseline where index
  tables reach the mediator in plaintext, demonstrating why the paper
  calls encrypting the index table "crucial".
"""

from __future__ import annotations

import hashlib
import random
import secrets
from dataclasses import dataclass, field

from repro.core.federation import Federation
from repro.core.request import RequestPhaseOutcome
from repro.core.result import MediationResult
from repro.core.timing import timed
from repro.crypto import hybrid
from repro.crypto.engine import CryptoEngine, get_engine
from repro.crypto.instrumentation import count_primitives
from repro.errors import ProtocolError, StorageError
from repro.mediation.credentials import public_keys_of
from repro.relational import partition as partitioning
from repro.relational.conditions import (
    AttributeComparison,
    Comparison,
    Condition,
    conjunction,
    disjunction,
)
from repro.relational.encoding import decode_row, encode_row
from repro.relational.partition import IndexTable
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema
from repro.storage.base import (
    KIND_DAS_INDEX,
    KIND_DAS_TUPLE,
    IndexCache,
    StorageBackend,
    relation_fingerprint,
)
from repro.storage.serialize import (
    deserialize_hybrid,
    serialize_hybrid,
    serialize_int,
)

#: Query-translator placements (Section 3.1 "settings").
CLIENT_SETTING = "client"
MEDIATOR_SETTING = "mediator"
SOURCE_SETTING = "source"


@dataclass(frozen=True)
class DASConfig:
    """Tunable parameters of the DAS delivery phase."""

    strategy: str = "equi_depth"  # equi_depth | equi_width | singleton
    buckets: int = 4
    setting: str = CLIENT_SETTING
    #: Mixed DAS model (Mykletun/Tsudik [18], discussed in Section 7):
    #: attributes listed here are *not* sensitive and travel in plaintext
    #: next to the etuple; the join attribute must stay encrypted.
    mixed_plaintext_attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.strategy not in ("equi_depth", "equi_width", "singleton"):
            raise ProtocolError(f"unknown partition strategy {self.strategy!r}")
        if self.setting not in (CLIENT_SETTING, MEDIATOR_SETTING, SOURCE_SETTING):
            raise ProtocolError(f"unsupported DAS setting {self.setting!r}")


@dataclass(frozen=True)
class EncryptedTuple:
    """``t^S = <etuple, a^S_join>`` — one row of an encrypted relation.

    In the mixed DAS model, ``plain_values`` additionally carries the
    non-sensitive attribute values in plaintext.
    """

    etuple: hybrid.HybridCiphertext
    index_value: int
    plain_values: tuple = ()


@dataclass(frozen=True)
class EncryptedRelation:
    """``R_i^S``: the DAS-encrypted partial result of one source."""

    source: str
    relation_name: str
    rows: tuple[EncryptedTuple, ...]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class ServerQuery:
    """``q_S`` as data: the overlapping index-value pairs of Cond_S."""

    pairs: tuple[tuple[int, int], ...]

    def condition(self, name_1: str, name_2: str, attribute: str) -> Condition:
        """The paper's Cond_S formula, as a condition AST (for display)."""
        return disjunction(
            conjunction(
                [
                    Comparison(f"{name_1}.{attribute}", "=", index_1),
                    Comparison(f"{name_2}.{attribute}", "=", index_2),
                ]
            )
            for index_1, index_2 in self.pairs
        )


@dataclass(frozen=True)
class ServerResult:
    """``R_C``: pairs of encrypted tuples the server query selected."""

    pairs: tuple[tuple[EncryptedTuple, EncryptedTuple], ...]

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class _SourceState:
    """Transient per-source state during the delivery phase."""

    index_table: IndexTable
    encrypted_relation: EncryptedRelation
    encrypted_index_table: hybrid.HybridCiphertext | None = None
    plain_rows: dict[int, Row] = field(default_factory=dict)


def _partition_domain(
    config: DASConfig, active_domain: tuple, attribute: str
) -> list[partitioning.Partition]:
    if config.strategy == "singleton":
        return partitioning.singleton(active_domain)
    if config.strategy == "equi_width":
        return partitioning.equi_width(active_domain, config.buckets)
    return partitioning.equi_depth(active_domain, config.buckets)


def _mixed_split(schema: Schema, config: DASConfig) -> tuple[list[int], list[int]]:
    """(sensitive positions, plaintext positions) for the mixed model."""
    # Names not in this schema belong to the other relation; validation
    # of completely unknown names happens once in run_das_delivery.
    plaintext = set(config.mixed_plaintext_attributes) & set(schema.names())
    sensitive_positions = [
        i for i, a in enumerate(schema.attributes) if a.name not in plaintext
    ]
    plain_positions = [
        i for i, a in enumerate(schema.attributes) if a.name in plaintext
    ]
    if not sensitive_positions:
        raise ProtocolError("the mixed DAS model needs a sensitive attribute")
    return sensitive_positions, plain_positions


def _recipient_digest(client_keys) -> bytes:
    """Digest of the recipient key set — part of every etuple cache key,
    so ciphertexts are never served to a different credential set."""
    fingerprints = sorted(hybrid.key_fingerprint(key) for key in client_keys)
    return hashlib.sha256(b"".join(fingerprints)).digest()[:16]


def _encrypt_source(
    source_name: str,
    relation: Relation,
    attribute: str,
    config: DASConfig,
    client_keys,
    engine: CryptoEngine | None = None,
    cache: IndexCache | None = None,
    hardening=None,
) -> _SourceState:
    """Steps 1-2 at one datasource.

    With an index cache attached, the partition index table and the
    per-row hybrid etuples persist across queries (keyed by row content
    and recipient key set, under the source's key epoch), so a repeated
    join on an unchanged relation skips the dominant per-row hybrid
    encryption entirely.  Note the amortization trade-off inherited from
    caching: the index table's salted identifiers repeat across the
    series, so the mediator can correlate buckets *between* queries of
    one epoch (see docs/storage.md).
    """
    engine = engine or get_engine()
    if attribute in config.mixed_plaintext_attributes:
        raise ProtocolError(
            "the join attribute must remain sensitive in the mixed DAS model"
        )
    content = relation_fingerprint(relation) if cache is not None else b""
    recipients = _recipient_digest(client_keys) if cache is not None else b""
    table_tag = (
        f"{config.strategy}:{config.buckets}:{attribute}".encode()
    )

    index_table: IndexTable | None = None
    if cache is not None:
        blob = cache.get(
            relation.name, KIND_DAS_INDEX, b"itable:" + content + table_tag
        )
        if blob is not None:
            try:
                index_table = IndexTable.from_bytes(blob)
            except Exception:
                cache.decode_failure(KIND_DAS_INDEX)
                index_table = None
    if index_table is None:
        active_domain = relation.active_domain(attribute)
        partitions = _partition_domain(config, active_domain, attribute)
        index_table = partitioning.build_index_table(
            f"{relation.name}.{attribute}",
            partitions,
            salt=secrets.token_bytes(16),
        )
        if cache is not None:
            cache.put(
                relation.name,
                KIND_DAS_INDEX,
                b"itable:" + content + table_tag,
                index_table.to_bytes(),
            )

    sensitive_positions, plain_positions = _mixed_split(relation.schema, config)
    position_tag = ",".join(map(str, sensitive_positions)).encode()
    rows = list(relation)
    encoded_rows = [
        encode_row(tuple(row[i] for i in sensitive_positions)) for row in rows
    ]
    # Hardened runs wrap every row encoding to one uniform length before
    # it can influence cache slots or ciphertext bodies; the client
    # unwraps (and discards dummies) in _row_decryptor.
    row_target = 0
    if hardening is not None:
        encoded_rows, row_target = hardening.wrap_uniform(encoded_rows)

    etuples: list[hybrid.HybridCiphertext | None] = [None] * len(rows)
    pending: list[int] = []
    if cache is not None:
        for position, encoded in enumerate(encoded_rows):
            blob = cache.get(
                relation.name,
                KIND_DAS_TUPLE,
                b"etuple:" + recipients + position_tag + b":" + encoded,
            )
            if blob is not None:
                try:
                    etuples[position] = deserialize_hybrid(blob)
                    continue
                except StorageError:
                    cache.decode_failure(KIND_DAS_TUPLE)
            pending.append(position)
    else:
        pending = list(range(len(rows)))

    if pending:
        fresh = engine.batch_hybrid_encrypt(
            client_keys, [encoded_rows[position] for position in pending]
        )
        for position, etuple in zip(pending, fresh):
            etuples[position] = etuple
            if cache is not None:
                cache.put(
                    relation.name,
                    KIND_DAS_TUPLE,
                    b"etuple:" + recipients + position_tag + b":"
                    + encoded_rows[position],
                    serialize_hybrid(etuple),
                )

    encrypted_rows = [
        EncryptedTuple(
            etuple,
            index_table.index_of(relation.value(row, attribute)),
            plain_values=tuple(row[i] for i in plain_positions),
        )
        for row, etuple in zip(rows, etuples)
    ]
    if hardening is not None:
        # Bucket padding: top every bucket up to the adjacency-invariant
        # bound max_multiplicity * (values per partition), so the
        # per-bucket frequency shape the mediator observes is a constant
        # of |domactive| and the config.  Dummies are freshly encrypted
        # (never cached — identical ciphertexts would fingerprint them)
        # and the padded relation is shuffled so position carries nothing.
        multiplicities: dict = {}
        for row in rows:
            value = relation.value(row, attribute)
            multiplicities[value] = multiplicities.get(value, 0) + 1
        bound = hardening.policy.bucket_bound(
            max(multiplicities.values(), default=0),
            len(multiplicities),
            config.buckets,
            config.strategy,
        )
        occupancy: dict[int, int] = {}
        for encrypted in encrypted_rows:
            occupancy[encrypted.index_value] = (
                occupancy.get(encrypted.index_value, 0) + 1
            )
        shortfalls = [
            (index, bound - occupancy.get(index, 0))
            for _, index in index_table.entries
        ]
        total_dummies = sum(shortfall for _, shortfall in shortfalls)
        if any(shortfall < 0 for _, shortfall in shortfalls):
            raise ProtocolError(
                "hardened bucket bound under-estimates a bucket occupancy"
            )
        if total_dummies:
            dummy_ciphertexts = engine.batch_hybrid_encrypt(
                client_keys,
                [hardening.dummy(row_target) for _ in range(total_dummies)],
            )
            cursor = 0
            for index, shortfall in shortfalls:
                for _ in range(shortfall):
                    encrypted_rows.append(
                        EncryptedTuple(dummy_ciphertexts[cursor], index)
                    )
                    cursor += 1
        random.SystemRandom().shuffle(encrypted_rows)
    encrypted_relation = EncryptedRelation(
        source=source_name,
        relation_name=relation.name,
        rows=tuple(encrypted_rows),
    )
    table_bytes = index_table.to_bytes()
    if hardening is not None:
        table_bytes = hardening.wrap_table(table_bytes)
    encrypted_index_table = hybrid.encrypt(client_keys, table_bytes)
    return _SourceState(
        index_table=index_table,
        encrypted_relation=encrypted_relation,
        encrypted_index_table=encrypted_index_table,
    )


def _evaluate_server_query(
    query: ServerQuery,
    relation_1: EncryptedRelation,
    relation_2: EncryptedRelation,
    backend: StorageBackend | None = None,
) -> ServerResult:
    """Step 6 at the mediator: sigma_CondS(R1^S x R2^S), hash-grouped.

    Operationally equivalent to evaluating the Cond_S disjunction over
    the cross product, but grouped by index value so cost is output- not
    product-sized.  With a storage backend attached the bucket-membership
    join is pushed down into the engine (a SQL equi-join on SQLite); a
    failing backend degrades to the in-process path.
    """
    if backend is not None:
        try:
            positions = backend.bucket_join(
                [serialize_int(row.index_value) for row in relation_1.rows],
                [serialize_int(row.index_value) for row in relation_2.rows],
                [
                    (serialize_int(index_1), serialize_int(index_2))
                    for index_1, index_2 in query.pairs
                ],
            )
            return ServerResult(
                pairs=tuple(
                    (relation_1.rows[i], relation_2.rows[j])
                    for i, j in positions
                )
            )
        except StorageError:
            pass
    by_index_2: dict[int, list[EncryptedTuple]] = {}
    for row in relation_2.rows:
        by_index_2.setdefault(row.index_value, []).append(row)
    wanted: dict[int, list[int]] = {}
    for index_1, index_2 in query.pairs:
        wanted.setdefault(index_1, []).append(index_2)
    pairs = []
    for row_1 in relation_1.rows:
        for index_2 in wanted.get(row_1.index_value, ()):
            for row_2 in by_index_2.get(index_2, ()):
                pairs.append((row_1, row_2))
    return ServerResult(pairs=tuple(pairs))


def _table_from_plaintext(plaintext: bytes, hardening=None) -> IndexTable:
    """Decode a decrypted index table, unwrapping hardened padding."""
    if hardening is not None:
        plaintext = hardening.unwrap(plaintext)
        if plaintext is None:
            raise ProtocolError("hardened index table decrypted to a dummy")
    return IndexTable.from_bytes(plaintext)


def _server_pairs(
    table_1: IndexTable, table_2: IndexTable, hardening=None
) -> tuple[tuple[int, int], ...]:
    """The q_S index pairs: overlap-driven, or all pairs when hardened.

    The overlap count is data-dependent (it tracks which buckets share
    values), so hardened translators request the full B_1 x B_2 grid —
    the server result becomes the entire padded cross product, whose
    size (B_1 * bound_1) * (B_2 * bound_2) is an adjacency invariant.
    """
    if hardening is None:
        return tuple(table_1.overlapping_pairs(table_2))
    return tuple(
        (index_1, index_2)
        for _, index_1 in table_1.entries
        for _, index_2 in table_2.entries
    )


def _row_decryptor(
    client,
    schema: Schema,
    config: DASConfig,
    encrypted_tuples: list[EncryptedTuple] | None = None,
    engine: CryptoEngine | None = None,
    hardening=None,
):
    """Build a per-schema decryptor that reassembles mixed-model rows.

    When ``encrypted_tuples`` is given, their distinct etuples are
    decrypted up front as one engine batch and the per-tuple decryptor
    becomes a cache lookup (a selected tuple typically appears in many
    server-result pairs, so the cache also deduplicates work).
    """
    sensitive_positions, plain_positions = _mixed_split(schema, config)
    sensitive_schema = Schema(
        schema.relation_name,
        [schema.attributes[i] for i in sensitive_positions],
    )
    cache: dict[int, Row] = {}

    def merge(encrypted: EncryptedTuple, plaintext: bytes) -> Row | None:
        if hardening is not None:
            plaintext = hardening.unwrap(plaintext)
            if plaintext is None:
                return None  # dummy etuple: discard, never a result row
        sensitive_part = decode_row(plaintext, sensitive_schema)
        merged: list = [None] * len(schema)
        for value, position in zip(sensitive_part, sensitive_positions):
            merged[position] = value
        for value, position in zip(encrypted.plain_values, plain_positions):
            merged[position] = value
        return tuple(merged)

    if encrypted_tuples:
        distinct: dict[int, EncryptedTuple] = {}
        for encrypted in encrypted_tuples:
            distinct.setdefault(id(encrypted), encrypted)
        plaintexts = client.decrypt_hybrid_many(
            [encrypted.etuple for encrypted in distinct.values()], engine=engine
        )
        for (cache_key, encrypted), plaintext in zip(
            distinct.items(), plaintexts
        ):
            cache[cache_key] = merge(encrypted, plaintext)

    def decrypt_row(encrypted: EncryptedTuple) -> Row:
        cache_key = id(encrypted)
        if cache_key not in cache:
            cache[cache_key] = merge(
                encrypted, client.decrypt_hybrid(encrypted.etuple)
            )
        return cache[cache_key]

    return decrypt_row


def _client_postprocess(
    client,
    server_result: ServerResult,
    schema_1: Schema,
    schema_2: Schema,
    join_attributes: tuple[str, ...],
    config: DASConfig,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> tuple[Relation, int, int]:
    """Step 7 at the client: decrypt R_C, apply q_C, build the result.

    Returns the global result, the number of false positives the client
    had to discard (the DAS post-processing overhead, E7), and the number
    of pairs dropped because at least one side was a hardened dummy.
    """
    attribute = join_attributes[0]
    condition = AttributeComparison(
        f"{schema_1.relation_name}.{attribute}",
        "=",
        f"{schema_2.relation_name}.{attribute}",
    )
    left_names = set(schema_1.names())
    extra_positions = [
        schema_2.position(n) for n in schema_2.names() if n not in left_names
    ]
    result_schema = schema_1.join_schema(
        schema_2, f"{schema_1.relation_name}_join_{schema_2.relation_name}"
    )
    decrypt_1 = _row_decryptor(
        client,
        schema_1,
        config,
        [pair[0] for pair in server_result.pairs],
        engine,
        hardening=hardening,
    )
    decrypt_2 = _row_decryptor(
        client,
        schema_2,
        config,
        [pair[1] for pair in server_result.pairs],
        engine,
        hardening=hardening,
    )

    rows: list[Row] = []
    false_positives = 0
    dummy_pairs = 0
    position_1 = schema_1.position(attribute)
    position_2 = schema_2.position(attribute)
    for encrypted_1, encrypted_2 in server_result.pairs:
        row_1 = decrypt_1(encrypted_1)
        row_2 = decrypt_2(encrypted_2)
        if row_1 is None or row_2 is None:
            dummy_pairs += 1
            continue
        # q_C = sigma_{R1.A = R2.A}: the real equality on plaintexts.
        if row_1[position_1] == row_2[position_2]:
            rows.append(row_1 + tuple(row_2[i] for i in extra_positions))
        else:
            false_positives += 1
    del condition  # kept above for documentation symmetry with Cond_S
    return Relation(result_schema, rows), false_positives, dummy_pairs


def run_das_delivery(
    federation: Federation,
    outcome: RequestPhaseOutcome,
    config: DASConfig | None = None,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> MediationResult:
    """Execute the DAS delivery phase (Listing 2) over the message bus."""
    config = config or DASConfig()
    engine = engine or get_engine()
    if hardening is not None:
        if config.strategy == "equi_width":
            raise ProtocolError(
                "hardened mode cannot bound equi_width buckets (bucket "
                "occupancy is value-dependent); use equi_depth or singleton"
            )
        if config.mixed_plaintext_attributes:
            raise ProtocolError(
                "hardened mode is incompatible with the mixed DAS model: "
                "plaintext attribute values leak by construction"
            )
        if config.setting == MEDIATOR_SETTING:
            raise ProtocolError(
                "hardened mode is incompatible with the mediator setting: "
                "the index tables reach the mediator in plaintext"
            )
    if len(outcome.join_attributes) != 1:
        raise ProtocolError(
            "the DAS delivery phase supports exactly one join attribute; "
            "use the commutative or private-matching protocol for "
            "composite join keys"
        )
    client = federation.require_client()
    mediator_name = federation.mediator.name
    network = federation.network
    attribute = outcome.join_attributes[0]
    source_1, source_2 = outcome.source_names
    schema_1 = outcome.schema_of(source_1)
    schema_2 = outcome.schema_of(source_2)
    unknown_mixed = set(config.mixed_plaintext_attributes) - (
        set(schema_1.names()) | set(schema_2.names())
    )
    if unknown_mixed:
        raise ProtocolError(
            f"unknown mixed-model attributes: {sorted(unknown_mixed)}"
        )

    result = MediationResult(
        protocol=f"das[{config.setting}]",
        query=outcome.query,
        global_result=Relation(schema_1, []),  # placeholder, set below
        network=network,
        primitive_counter=None,  # set below
    )

    with count_primitives() as counter:
        result.primitive_counter = counter
        client_keys = public_keys_of(
            outcome.forwarded_credentials[source_1]
            + outcome.forwarded_credentials[source_2]
        )

        # The source setting makes source_1 the translator; it needs a
        # keypair so the opposite table can be encrypted for it.
        translator_key = None
        if config.setting == SOURCE_SETTING:
            translator_key = federation.source(source_1).ensure_keypair()

        # Steps 1-3: sources partition, encrypt, and send to the mediator.
        states: dict[str, _SourceState] = {}
        for source_name in (source_1, source_2):
            with timed(result, source_name, "partition_and_encrypt"):
                state = _encrypt_source(
                    source_name,
                    outcome.partial_results[source_name],
                    attribute,
                    config,
                    client_keys,
                    engine,
                    cache=federation.source(source_name).index_cache(),
                    hardening=hardening,
                )
            states[source_name] = state
            if config.setting == CLIENT_SETTING:
                table_body = state.encrypted_index_table
            elif config.setting == SOURCE_SETTING:
                if source_name == source_2:
                    # Encrypted for the *translating source*, not the
                    # client: only S1 can open it.
                    table_2_bytes = state.index_table.to_bytes()
                    if hardening is not None:
                        table_2_bytes = hardening.wrap_table(table_2_bytes)
                    table_body = hybrid.encrypt([translator_key], table_2_bytes)
                else:
                    table_body = None  # S1 keeps its own table locally
            else:
                # Mediator setting (insecure baseline): plaintext table.
                table_body = state.index_table
            network.send(
                source_name,
                mediator_name,
                "das_encrypted_partial_result",
                {
                    "relation": state.encrypted_relation,
                    "index_table": table_body,
                },
            )

        if config.setting == SOURCE_SETTING:
            # The mediator forwards S2's encrypted table to the
            # translating source, which builds the server query.
            encrypted_table_2 = [
                m.body["index_table"]
                for m in network.messages_of_kind("das_encrypted_partial_result")
                if m.sender == source_2
            ][0]
            network.send(
                mediator_name,
                source_1,
                "das_index_table_for_translator",
                encrypted_table_2,
            )
            with timed(result, source_1, "translate_query"):
                table_2 = _table_from_plaintext(
                    hybrid.decrypt(
                        federation.source(source_1).private_key(),
                        encrypted_table_2,
                    ),
                    hardening,
                )
                server_query = ServerQuery(
                    pairs=_server_pairs(
                        states[source_1].index_table, table_2, hardening
                    )
                )
            network.send(source_1, mediator_name, "das_server_query", server_query)
        elif config.setting == CLIENT_SETTING:
            # Step 4: mediator forwards both encrypted index tables.
            network.send(
                mediator_name,
                client.name,
                "das_encrypted_index_tables",
                {
                    source_1: states[source_1].encrypted_index_table,
                    source_2: states[source_2].encrypted_index_table,
                },
            )
            # Step 5: client decrypts the tables and translates q.
            with timed(result, client.name, "translate_query"):
                table_1 = _table_from_plaintext(
                    client.decrypt_hybrid(states[source_1].encrypted_index_table),
                    hardening,
                )
                table_2 = _table_from_plaintext(
                    client.decrypt_hybrid(states[source_2].encrypted_index_table),
                    hardening,
                )
                server_query = ServerQuery(
                    pairs=_server_pairs(table_1, table_2, hardening)
                )
            network.send(client.name, mediator_name, "das_server_query", server_query)
        else:
            # Mediator setting: the mediator translates q itself.
            with timed(result, mediator_name, "translate_query"):
                server_query = ServerQuery(
                    pairs=tuple(
                        states[source_1].index_table.overlapping_pairs(
                            states[source_2].index_table
                        )
                    )
                )

        # Step 6: mediator evaluates q_S over the encrypted relations.
        with timed(result, mediator_name, "evaluate_server_query"):
            server_result = _evaluate_server_query(
                server_query,
                states[source_1].encrypted_relation,
                states[source_2].encrypted_relation,
                backend=federation.mediator.storage,
            )
        if hardening is not None:
            # Fixed-size frames: the padded cross product streams to the
            # client in chunks whose count is a pure function of the
            # (invariant) bound — no dummy top-up needed, the relation
            # padding already fixed |R_C|.
            hardening.cover.deliver_chunks(
                network,
                mediator_name,
                client.name,
                "das_server_result",
                list(server_result.pairs),
                bound=len(server_result.pairs),
                wrap_body=lambda chunk: ServerResult(pairs=tuple(chunk)),
            )
        else:
            network.send(
                mediator_name, client.name, "das_server_result", server_result
            )

        # Step 7: client decrypts and applies q_C.
        with timed(result, client.name, "decrypt_and_postprocess"):
            global_result, false_positives, dummy_pairs = _client_postprocess(
                client,
                server_result,
                schema_1,
                schema_2,
                outcome.join_attributes,
                config,
                engine,
                hardening=hardening,
            )

    result.global_result = global_result
    result.artifacts.update(
        {
            "index_tables": {
                source_1: states[source_1].index_table,
                source_2: states[source_2].index_table,
            },
            "server_query_pairs": len(server_query.pairs),
            "server_result_size": len(server_result),
            "false_positives": false_positives,
            "cond_s": str(
                server_query.condition(
                    f"{schema_1.relation_name}S", f"{schema_2.relation_name}S",
                    attribute,
                )
            ),
            "config": config,
        }
    )
    if hardening is not None:
        result.artifacts["dummy_pairs_discarded"] = dummy_pairs
    if config.setting == SOURCE_SETTING:
        # The distinguishing leakage of this setting: the translating
        # source learned the opposite source's index table.
        result.artifacts["translator_source"] = source_1
    return result
