"""Delivery phase with commutative encryption — Listing 3.

The commutative protocol (after Agrawal et al. [1], adapted to the MMM):

1. S_i chooses a secret commutative key e_i; for each a in
   ``domactive(R_i.A_join)`` it computes ``f_{e_i}(h(a))`` with the
   shared ideal hash h.
2. S_i hybrid-encrypts each tuple set ``Tup_i(a)`` for the client.
3. S_i sends the (arbitrarily ordered) message set
   ``M_i = {<f_{e_i}(h(a)), encrypt(Tup_i(a))>}`` to the mediator.
4. The mediator exchanges the message sets between the sources.
5./6. Each source applies its own key on top of the other's:
   ``f_{e_1}(f_{e_2}(h(a)))`` = ``f_{e_2}(f_{e_1}(h(a)))``, and returns
   the re-tagged messages to the mediator.
6. The mediator matches messages with identical first components —
   commutativity + bijectivity guarantee these are exactly the join
   values common to both active domains — and sends the combined
   ``<encrypt(Tup_1(a)), encrypt(Tup_2(a))>`` result messages to the
   client.
8. The client decrypts the tuple sets and builds the global result by
   crossing each matched pair of sets.

Footnote 1 of the paper suggests that, instead of echoing the (possibly
large) encrypted tuple sets to the opposite datasource, the mediator
should substitute fixed-length ID values and re-associate them on the
way back; ``CommutativeConfig(use_tuple_ids=True)`` enables exactly
that optimization (benchmark A3 measures the traffic it saves).
"""

from __future__ import annotations

import hashlib
import random
import secrets
from dataclasses import dataclass

from repro.core.assembly import combine_tuple_sets
from repro.core.federation import Federation
from repro.core.joinkeys import (
    JoinKey,
    active_key_domain,
    encode_key,
    group_by_key,
    key_of,
)
from repro.core.request import RequestPhaseOutcome
from repro.core.result import MediationResult
from repro.core.timing import timed
from repro.crypto import commutative as comm
from repro.crypto import groups, hybrid, symmetric
from repro.crypto.engine import CryptoEngine, get_engine
from repro.crypto.hashes import IdealHash
from repro.crypto.instrumentation import count_primitives
from repro.errors import ProtocolError, StorageError
from repro.mediation.credentials import public_keys_of
from repro.relational.encoding import decode_rows, encode_rows
from repro.relational.relation import Relation
from repro.storage.base import (
    KIND_COMM_DOUBLE,
    KIND_COMM_KEY,
    KIND_COMM_TAG,
    KIND_COMM_TUPLES,
    IndexCache,
)
from repro.storage.serialize import (
    deserialize_hybrid,
    deserialize_int,
    serialize_hybrid,
    serialize_int,
)

_ID_BYTES = 8


@dataclass(frozen=True)
class CommutativeConfig:
    """Tunable parameters of the commutative delivery phase."""

    group_bits: int = groups.TEST_GROUP_BITS
    #: Footnote-1 optimization: ship fixed-length IDs instead of echoing
    #: encrypted tuple sets through the opposite datasource.
    use_tuple_ids: bool = False
    #: Have the sources verify that the announced group modulus really is
    #: a safe prime before keying it (costly; off for benchmarks).
    verify_group: bool = False


@dataclass(frozen=True)
class TaggedMessage:
    """``<f_e(h(a)), payload>`` — one element of a message set M_i."""

    tag: int
    payload: hybrid.HybridCiphertext | bytes  # ciphertext, or ID token


def _shuffled(items: list) -> list:
    """Cryptographically shuffled copy (order must not leak join values)."""
    shuffled = list(items)
    random.SystemRandom().shuffle(shuffled)
    return shuffled


@dataclass
class _SourceState:
    key: comm.CommutativeKey
    tuple_ciphertexts: dict[JoinKey, hybrid.HybridCiphertext]


def _key_digest(key: comm.CommutativeKey) -> bytes:
    """Short binding digest of a commutative key (group + exponent).

    Cached tags and double-encryptions embed this digest in their cache
    keys, so entries computed under one key can never be served for
    another — a replaced key simply misses instead of mismatching.
    """
    return hashlib.sha256(
        serialize_int(key.group.p) + b"/" + serialize_int(key.exponent)
    ).digest()[:12]


def _recipient_digest(client_keys) -> bytes:
    fingerprints = sorted(hybrid.key_fingerprint(key) for key in client_keys)
    return hashlib.sha256(b"".join(fingerprints)).digest()[:16]


def _cached_key(
    cache: IndexCache | None,
    relation_name: str,
    group: comm.CommutativeGroup,
) -> comm.CommutativeKey:
    """The source's commutative key — persisted across the query series.

    The RFC 3526 groups are deterministic per bit size, so a persisted
    exponent stays valid across processes; the key lives under the
    current epoch and :meth:`DataSource.rotate_keys` retires it.
    """
    if cache is None:
        return comm.generate_key(group)
    slot = b"key:" + serialize_int(group.p)[:16]
    blob = cache.get(relation_name, KIND_COMM_KEY, slot)
    if blob is not None:
        try:
            return comm.CommutativeKey(group, deserialize_int(blob))
        except Exception:
            # Corrupt or out-of-range: fall through to a fresh key.
            cache.decode_failure(KIND_COMM_KEY)
    key = comm.generate_key(group)
    cache.put(relation_name, KIND_COMM_KEY, slot, serialize_int(key.exponent))
    return key


def _prepare_source(
    relation: Relation,
    join_attributes: tuple[str, ...],
    group: comm.CommutativeGroup,
    ideal_hash: IdealHash,
    client_keys,
    config: CommutativeConfig,
    engine: CryptoEngine | None = None,
    cache: IndexCache | None = None,
    hardening=None,
) -> tuple[_SourceState, list[TaggedMessage]]:
    """Listing 3 steps 1-3 at one datasource.

    With an index cache, the key, the per-value tags ``f_e(h(a))`` and
    the hybrid tuple-set ciphertexts all persist across the query series
    (amortization per arXiv 2103.05792); only values not seen before —
    or entries dropped by a mutation/rotation — are recomputed, as one
    engine batch.
    """
    engine = engine or get_engine()
    if config.verify_group and not group.verify():
        raise ProtocolError("announced commutative group failed verification")
    key = _cached_key(cache, relation.name, group)
    key_digest = _key_digest(key) if cache is not None else b""
    recipients = _recipient_digest(client_keys) if cache is not None else b""
    grouped = group_by_key(relation, join_attributes)
    join_keys = list(grouped)

    # Tags: serve cache hits, batch-compute the misses under the key.
    tags: list[int | None] = [None] * len(join_keys)
    pending_tags: list[int] = []
    if cache is not None:
        for position, join_key in enumerate(join_keys):
            blob = cache.get(
                relation.name,
                KIND_COMM_TAG,
                b"tag:" + key_digest + encode_key(join_key),
            )
            if blob is not None:
                try:
                    tags[position] = deserialize_int(blob)
                    continue
                except StorageError:
                    cache.decode_failure(KIND_COMM_TAG)
            pending_tags.append(position)
    else:
        pending_tags = list(range(len(join_keys)))
    if pending_tags:
        hashed = [
            ideal_hash(encode_key(join_keys[position]))
            for position in pending_tags
        ]
        fresh_tags = engine.batch_commutative_encrypt(key, hashed)
        for position, tag in zip(pending_tags, fresh_tags):
            tags[position] = tag
            if cache is not None:
                cache.put(
                    relation.name,
                    KIND_COMM_TAG,
                    b"tag:" + key_digest + encode_key(join_keys[position]),
                    serialize_int(tag),
                )

    # Tuple-set ciphertexts: keyed by recipient set + plaintext content.
    # Hardened runs wrap every tuple-set encoding to one uniform length
    # before anything downstream (cache slots, ciphertext bodies) can see
    # the per-value size; the client unwraps after decryption.
    encoded_sets = [encode_rows(grouped[join_key]) for join_key in join_keys]
    if hardening is not None:
        encoded_sets, _ = hardening.wrap_uniform(encoded_sets)
    ciphertexts: list[hybrid.HybridCiphertext | None] = [None] * len(join_keys)
    pending_sets: list[int] = []
    if cache is not None:
        set_slots = [
            b"tupct:" + recipients + encode_key(join_key)
            + hashlib.sha256(encoded).digest()[:16]
            for join_key, encoded in zip(join_keys, encoded_sets)
        ]
        for position, slot in enumerate(set_slots):
            blob = cache.get(relation.name, KIND_COMM_TUPLES, slot)
            if blob is not None:
                try:
                    ciphertexts[position] = deserialize_hybrid(blob)
                    continue
                except StorageError:
                    cache.decode_failure(KIND_COMM_TUPLES)
            pending_sets.append(position)
    else:
        pending_sets = list(range(len(join_keys)))
    if pending_sets:
        fresh = engine.batch_hybrid_encrypt(
            client_keys, [encoded_sets[position] for position in pending_sets]
        )
        for position, ciphertext in zip(pending_sets, fresh):
            ciphertexts[position] = ciphertext
            if cache is not None:
                cache.put(
                    relation.name,
                    KIND_COMM_TUPLES,
                    set_slots[position],
                    serialize_hybrid(ciphertext),
                )

    tuple_ciphertexts = dict(zip(join_keys, ciphertexts))
    messages = [
        TaggedMessage(tag=tag, payload=ciphertext)
        for tag, ciphertext in zip(tags, ciphertexts)
    ]
    return _SourceState(key, tuple_ciphertexts), _shuffled(messages)


def _double_encrypt(
    messages: list[TaggedMessage],
    key: comm.CommutativeKey,
    engine: CryptoEngine | None = None,
    cache: IndexCache | None = None,
    relation_name: str = "",
) -> list[TaggedMessage]:
    """Listing 3 steps 5/6 at one datasource: apply the own key on top.

    Double-encryptions cache by (own key, incoming tag): when both
    sources reuse persisted keys, the opposite tags repeat across the
    series and this step becomes pure lookups.
    """
    engine = engine or get_engine()
    key_digest = _key_digest(key) if cache is not None else b""
    doubled: list[int | None] = [None] * len(messages)
    pending: list[int] = []
    if cache is not None:
        for position, message in enumerate(messages):
            blob = cache.get(
                relation_name,
                KIND_COMM_DOUBLE,
                b"double:" + key_digest + serialize_int(message.tag),
            )
            if blob is not None:
                try:
                    doubled[position] = deserialize_int(blob)
                    continue
                except StorageError:
                    cache.decode_failure(KIND_COMM_DOUBLE)
            pending.append(position)
    else:
        pending = list(range(len(messages)))
    if pending:
        fresh = engine.batch_commutative_encrypt(
            key, [messages[position].tag for position in pending]
        )
        for position, tag in zip(pending, fresh):
            doubled[position] = tag
            if cache is not None:
                cache.put(
                    relation_name,
                    KIND_COMM_DOUBLE,
                    b"double:" + key_digest + serialize_int(messages[position].tag),
                    serialize_int(tag),
                )
    return _shuffled(
        [
            TaggedMessage(tag=tag, payload=message.payload)
            for tag, message in zip(doubled, messages)
        ]
    )


def run_commutative_delivery(
    federation: Federation,
    outcome: RequestPhaseOutcome,
    config: CommutativeConfig | None = None,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> MediationResult:
    """Execute the commutative delivery phase (Listing 3) over the bus."""
    config = config or CommutativeConfig()
    engine = engine or get_engine()
    client = federation.require_client()
    mediator_name = federation.mediator.name
    network = federation.network
    source_1, source_2 = outcome.source_names
    relation_1 = outcome.partial_results[source_1]
    relation_2 = outcome.partial_results[source_2]

    result = MediationResult(
        protocol="commutative" + ("[ids]" if config.use_tuple_ids else ""),
        query=outcome.query,
        global_result=Relation(relation_1.schema, []),
        network=network,
        primitive_counter=None,
    )

    with count_primitives() as counter:
        result.primitive_counter = counter
        client_keys = public_keys_of(
            outcome.forwarded_credentials[source_1]
            + outcome.forwarded_credentials[source_2]
        )
        # The mediator announces the shared group and hash parameters; the
        # paper assumes "both datasources use the same ideal hash function".
        group = groups.commutative_group(config.group_bits)
        ideal_hash = IdealHash(group.p)
        for source_name in (source_1, source_2):
            network.send(
                mediator_name,
                source_name,
                "commutative_setup",
                {"modulus": group.p, "hash_tag": ideal_hash.tag},
            )

        # Steps 1-3: each source builds and sends its message set M_i.
        states: dict[str, _SourceState] = {}
        message_sets: dict[str, list[TaggedMessage]] = {}
        for source_name, relation in (
            (source_1, relation_1),
            (source_2, relation_2),
        ):
            with timed(result, source_name, "hash_encrypt_round1"):
                state, messages = _prepare_source(
                    relation,
                    outcome.join_attributes,
                    group,
                    ideal_hash,
                    client_keys,
                    config,
                    engine,
                    cache=federation.source(source_name).index_cache(),
                    hardening=hardening,
                )
            states[source_name] = state
            message_sets[source_name] = messages
            network.send(source_name, mediator_name, "commutative_m_set", messages)

        # Step 4: the mediator exchanges the message sets (optionally
        # substituting ID tokens for the payloads, footnote 1).
        id_table: dict[bytes, hybrid.HybridCiphertext] = {}

        def outbound(messages: list[TaggedMessage]) -> list[TaggedMessage]:
            if not config.use_tuple_ids:
                return messages
            substituted = []
            for message in messages:
                token = secrets.token_bytes(_ID_BYTES)
                while token in id_table:
                    token = secrets.token_bytes(_ID_BYTES)
                id_table[token] = message.payload
                substituted.append(TaggedMessage(tag=message.tag, payload=token))
            return substituted

        forwarded_to_2 = outbound(message_sets[source_1])
        forwarded_to_1 = outbound(message_sets[source_2])
        network.send(mediator_name, source_2, "commutative_exchange", forwarded_to_2)
        network.send(mediator_name, source_1, "commutative_exchange", forwarded_to_1)

        # Steps 5-6: sources double-encrypt and return.
        with timed(result, source_1, "double_encrypt"):
            response_1 = _double_encrypt(
                forwarded_to_1,
                states[source_1].key,
                engine,
                cache=federation.source(source_1).index_cache(),
                relation_name=relation_1.name,
            )
        network.send(source_1, mediator_name, "commutative_double", response_1)
        with timed(result, source_2, "double_encrypt"):
            response_2 = _double_encrypt(
                forwarded_to_2,
                states[source_2].key,
                engine,
                cache=federation.source(source_2).index_cache(),
                relation_name=relation_2.name,
            )
        network.send(source_2, mediator_name, "commutative_double", response_2)

        # Step 7: the mediator matches identical first components.
        def resolve(payload):
            if config.use_tuple_ids:
                if payload not in id_table:
                    raise ProtocolError("datasource returned an unknown ID token")
                return id_table[payload]
            return payload

        with timed(result, mediator_name, "match"):
            # response_1 tags derive from M_2, so payloads are Tup_2 sets;
            # response_2 payloads are Tup_1 sets.
            tup_2_by_tag = {m.tag: resolve(m.payload) for m in response_1}
            result_messages = []
            for message in response_2:
                if message.tag in tup_2_by_tag:
                    result_messages.append(
                        (resolve(message.payload), tup_2_by_tag[message.tag])
                    )
        if hardening is not None:
            # The intersection size is the mediator's headline leak (Table
            # 1 row "number of values in common").  Pad the result channel
            # to min(|M_1|, |M_2|) — active-domain sizes are adjacency
            # invariants — with dummy pairs whose ciphertext bodies match
            # the (uniform) per-source body lengths, shuffled so dummy
            # positions carry no signal, delivered as fixed-size frames.
            overhead = symmetric.ciphertext_overhead()

            def dummy_pair():
                body_1 = len(message_sets[source_1][0].payload.body)
                body_2 = len(message_sets[source_2][0].payload.body)
                return (
                    hybrid.encrypt(client_keys, hardening.dummy(body_1 - overhead)),
                    hybrid.encrypt(client_keys, hardening.dummy(body_2 - overhead)),
                )

            delivered = hardening.cover.deliver_chunks(
                network,
                mediator_name,
                client.name,
                "commutative_result",
                result_messages,
                bound=min(
                    len(message_sets[source_1]), len(message_sets[source_2])
                ),
                dummy_factory=dummy_pair,
                shuffle=True,
            )
        else:
            network.send(
                mediator_name, client.name, "commutative_result", result_messages
            )
            delivered = result_messages

        # Step 8: the client decrypts and constructs the global result.
        dummy_pairs = 0
        with timed(result, client.name, "decrypt_and_combine"):
            plaintexts_1 = client.decrypt_hybrid_many(
                [pair[0] for pair in delivered], engine=engine
            )
            plaintexts_2 = client.decrypt_hybrid_many(
                [pair[1] for pair in delivered], engine=engine
            )
            matched = []
            for plaintext_1, plaintext_2 in zip(plaintexts_1, plaintexts_2):
                if hardening is not None:
                    plaintext_1 = hardening.unwrap(plaintext_1)
                    plaintext_2 = hardening.unwrap(plaintext_2)
                    if plaintext_1 is None and plaintext_2 is None:
                        dummy_pairs += 1
                        continue
                    if plaintext_1 is None or plaintext_2 is None:
                        raise ProtocolError(
                            "commutative result pair mixes a real tuple set "
                            "with a dummy"
                        )
                rows_1 = decode_rows(plaintext_1, relation_1.schema)
                rows_2 = decode_rows(plaintext_2, relation_2.schema)
                probe = Relation(relation_1.schema, rows_1)
                join_key = key_of(probe, rows_1[0], outcome.join_attributes)
                matched.append((join_key, rows_1, rows_2))
            global_result = combine_tuple_sets(
                relation_1.schema,
                relation_2.schema,
                outcome.join_attributes,
                matched,
            )

    result.global_result = global_result
    result.artifacts.update(
        {
            "active_domain_sizes": {
                source_1: len(active_key_domain(relation_1, outcome.join_attributes)),
                source_2: len(active_key_domain(relation_2, outcome.join_attributes)),
            },
            "intersection_size": len(result_messages),
            "id_table_entries": len(id_table),
            "config": config,
        }
    )
    if hardening is not None:
        result.artifacts["dummy_pairs_discarded"] = dummy_pairs
    return result
