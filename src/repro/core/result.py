"""Protocol run results: the global result plus everything observable.

A :class:`MediationResult` bundles what a protocol run produced (the
decrypted global result at the client) with what it *exposed* (the full
network transcript, per-party views, primitive counters and timings) —
the raw material for the leakage, conformance and performance analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.instrumentation import PrimitiveCounter
from repro.transport.base import Transport
from repro.relational.relation import Relation


@dataclass
class StepTiming:
    """Wall-clock duration of one protocol step at one party.

    ``ok`` is False when the step raised: the duration up to the
    failure is still recorded, and analyses can tell an aborted run
    from a completed one.
    """

    party: str
    step: str
    seconds: float
    ok: bool = True


@dataclass
class MediationResult:
    """Outcome of one complete mediated join-query run."""

    protocol: str
    query: str
    global_result: Relation
    network: Transport
    primitive_counter: PrimitiveCounter
    timings: list[StepTiming] = field(default_factory=list)
    #: Protocol-specific intermediate artifacts (index tables, matched
    #: pair counts, polynomial degrees, ...) keyed by a stable name.
    artifacts: dict[str, Any] = field(default_factory=dict)

    # -- convenience accessors ------------------------------------------------

    def total_bytes(self) -> int:
        return self.network.total_bytes()

    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def seconds_at(self, party: str) -> float:
        return sum(t.seconds for t in self.timings if t.party == party)

    def interaction_count(self, a: str, b: str) -> int:
        return self.network.interaction_count(a, b)

    def add_timing(
        self, party: str, step: str, seconds: float, ok: bool = True
    ) -> None:
        self.timings.append(StepTiming(party, step, seconds, ok))

    def failed_steps(self) -> list[StepTiming]:
        """Timings of steps that raised instead of completing."""
        return [t for t in self.timings if not t.ok]

    def summary(self) -> str:
        lines = [
            f"protocol: {self.protocol}",
            f"query:    {self.query}",
            f"result:   {len(self.global_result)} rows",
            f"traffic:  {self.total_bytes()} bytes over "
            f"{len(self.network.transcript)} messages",
            f"time:     {self.total_seconds():.4f}s across "
            f"{len(self.timings)} steps",
        ]
        failed = self.failed_steps()
        if failed:
            names = ", ".join(f"{t.party}/{t.step}" for t in failed)
            lines.append(f"failed:   {names}")
        return "\n".join(lines)

    @property
    def ok(self) -> bool:
        """True — pairs with :attr:`RunFailure.ok` for uniform handling."""
        return True


@dataclass
class RunFailure:
    """A protocol run that did not finish — structured, not a traceback.

    Returned by :func:`repro.core.runner.run_join_query` under
    ``on_failure="return"`` when the run is interrupted (a crashed
    party, exhausted retries, an expired deadline).  It preserves the
    *partial* observables — the transcript recorded before the failure
    and any injected-fault events — so a chaos run can still be
    analysed, compared, and exported like a successful one.
    """

    protocol: str
    query: str
    #: Where the run died: ``"request"``, ``"delivery"``, or
    #: ``"postprocessing"``.
    phase: str
    #: The raised error's class name and message (the error object
    #: itself is deliberately not kept: a RunFailure is plain data).
    error_type: str
    error_message: str
    network: Transport | None = None
    #: Deterministic fault-event summaries, when the transport carried
    #: a :class:`~repro.faults.transport.FaultyTransport`.
    fault_events: list[str] = field(default_factory=list)
    artifacts: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return False

    def messages_delivered(self) -> int:
        return len(self.network.transcript) if self.network is not None else 0

    def summary(self) -> str:
        lines = [
            f"protocol: {self.protocol}",
            f"query:    {self.query}",
            f"FAILED:   {self.error_type} during the {self.phase} phase",
            f"error:    {self.error_message}",
            f"partial:  {self.messages_delivered()} messages delivered "
            "before the failure",
        ]
        if self.fault_events:
            lines.append("injected faults:")
            lines.extend(f"  {event}" for event in self.fault_events)
        return "\n".join(lines)
