"""Delivery phase with homomorphic encryption (private matching) — Listing 4.

The PM protocol (after Freedman, Nissim, Pinkas [12], adapted to the MMM):

1. The client owns the only homomorphic key pair; the public key is
   distributed with his credentials (Section 5.1).
2./3. Each source S_i builds the polynomial ``P_i`` whose roots are the
   elements of ``domactive(R_i.A_join)``, encrypts the coefficients under
   the client's public key, and sends them to the mediator.
4. The mediator forwards each encrypted polynomial to the *opposite*
   source.
5./6. For each own value a with fresh random r, S_i computes
   ``E(r * P_other(a) + (a || Tup_i(a)))`` — Equation (1) with payload —
   and returns all values to the mediator.
7. The mediator sends the n + m encrypted values to the client.
8. The client decrypts everything; well-formed ``(a || Tup)`` payloads
   survive exactly for join values in the intersection, and matched pairs
   are combined into the global result.

Footnote 2 (large tuple sets): with ``payload_mode="session_key"`` the
polynomial carries only a fresh session key and an ID token; the tuple
set itself is symmetric-encrypted and shipped in a side table via the
mediator.  The client can open precisely the side-table entries whose
session keys it recovered — i.e. those in the join.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from dataclasses import dataclass
from typing import Any

from repro.core.assembly import combine_tuple_sets
from repro.core.federation import Federation
from repro.core.joinkeys import (
    JoinKey,
    active_key_domain,
    group_by_key,
    int_to_key,
    key_to_int,
)
from repro.core.payload import (
    ID_TOKEN_BYTES,
    decode_payload,
    encode_payload,
    split_session_body,
)
from repro.core.request import RequestPhaseOutcome
from repro.core.result import MediationResult
from repro.core.timing import timed
from repro.crypto import hybrid
from repro.crypto.engine import CryptoEngine, get_engine
from repro.crypto.homomorphic import AdditiveHomomorphicScheme, PaillierScheme
from repro.crypto.instrumentation import count_primitives, record
from repro.crypto.paillier import PaillierCiphertext
from repro.crypto.polynomial import (
    EncryptedPolynomial,
    encrypt_polynomial,
    from_roots,
)
from repro.errors import EncodingError, ProtocolError, StorageError
from repro.relational.encoding import decode_rows, encode_rows
from repro.relational.relation import Relation, Row
from repro.storage.base import KIND_PM_COEFFS, IndexCache
from repro.storage.serialize import deserialize_int_list, serialize_int_list

INLINE_MODE = "inline"
SESSION_KEY_MODE = "session_key"


def _cached_encrypt_polynomial(
    scheme: AdditiveHomomorphicScheme,
    public_key: Any,
    plain_coefficients: list[int],
    cache: IndexCache | None,
    relation_name: str,
    engine: CryptoEngine | None,
) -> EncryptedPolynomial:
    """Encrypt P_i's coefficients, amortizing across the query series.

    Paillier ciphertexts are plain integers bound to the public key, so
    the encrypted coefficient vector persists as an integer list keyed
    by (public-key fingerprint, coefficient digest).  Schemes with
    non-integer ciphertexts (EC-ElGamal points) skip the cache.
    """
    cacheable = cache is not None and isinstance(scheme, PaillierScheme)
    slot = b""
    if cacheable:
        digest = hashlib.sha256()
        for coefficient in plain_coefficients:
            digest.update(coefficient.to_bytes(
                (coefficient.bit_length() + 7) // 8 or 1, "big"))
            digest.update(b"/")
        slot = (
            b"pmcoef:"
            + hybrid_fingerprint(public_key)
            + digest.digest()[:16]
        )
        blob = cache.get(relation_name, KIND_PM_COEFFS, slot)
        if blob is not None:
            try:
                values = deserialize_int_list(blob)
                if len(values) != len(plain_coefficients):
                    raise StorageError("cached coefficient count mismatch")
                return EncryptedPolynomial(
                    scheme=scheme,
                    public_key=public_key,
                    coefficients=tuple(
                        PaillierCiphertext(value, public_key)
                        for value in values
                    ),
                )
            except Exception:
                cache.decode_failure(KIND_PM_COEFFS)
    encrypted = encrypt_polynomial(
        scheme, public_key, plain_coefficients, engine=engine
    )
    if cacheable:
        cache.put(
            relation_name,
            KIND_PM_COEFFS,
            slot,
            serialize_int_list(
                [ciphertext.value for ciphertext in encrypted.coefficients]
            ),
        )
    return encrypted


def hybrid_fingerprint(public_key: Any) -> bytes:
    """Stable fingerprint of a Paillier public key (by modulus)."""
    n = getattr(public_key, "n", None)
    if n is None:
        return b"\x00" * 16
    return hashlib.sha256(
        b"paillier/" + n.to_bytes((n.bit_length() + 7) // 8, "big")
    ).digest()[:16]


@dataclass(frozen=True)
class PMConfig:
    """Tunable parameters of the private-matching delivery phase."""

    payload_mode: str = SESSION_KEY_MODE
    #: Upper bound on the canonical join-key encoding, so roots provably
    #: fit the homomorphic message space.
    max_key_bytes: int = 48

    def __post_init__(self) -> None:
        if self.payload_mode not in (INLINE_MODE, SESSION_KEY_MODE):
            raise ProtocolError(f"unknown payload mode {self.payload_mode!r}")


@dataclass
class _SourceState:
    keys: tuple[JoinKey, ...]
    groups: dict[JoinKey, tuple[Row, ...]]
    #: session-key mode: id token -> symmetric ciphertext of the tuple set.
    side_table: dict[bytes, bytes]


def _build_polynomial(
    relation: Relation,
    join_attributes: tuple[str, ...],
    scheme: AdditiveHomomorphicScheme,
    public_key: Any,
    max_key_bytes: int,
) -> tuple[list[int], _SourceState]:
    """Listing 4 steps 2/3 at one source: coefficients of P_i."""
    modulus = scheme.plaintext_bound(public_key)
    keys = active_key_domain(relation, join_attributes)
    roots = [key_to_int(key, max_key_bytes) for key in keys]
    for root in roots:
        if root >= modulus:
            raise EncodingError(
                "join-key root exceeds the homomorphic message space; "
                "increase the homomorphic key size"
            )
    coefficients = from_roots(roots, modulus)
    state = _SourceState(
        keys=keys,
        groups=group_by_key(relation, join_attributes),
        side_table={},
    )
    return coefficients, state


def _evaluate_for_source(
    state: _SourceState,
    encrypted_polynomial: EncryptedPolynomial,
    config: PMConfig,
    scheme: AdditiveHomomorphicScheme,
    public_key: Any,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> list[Any]:
    """Listing 4 steps 5/6: E(r * P_other(a) + (a || payload)) per value."""
    engine = engine or get_engine()
    modulus = scheme.plaintext_bound(public_key)
    # The side-table ciphertexts are the only data-sized observables of
    # this protocol (everything else is |domactive|-counted); hardened
    # runs wrap the tuple-set encodings to one uniform length per source.
    encoded_sets: dict[JoinKey, bytes] = {}
    if config.payload_mode == SESSION_KEY_MODE:
        encoded = [encode_rows(state.groups[join_key]) for join_key in state.keys]
        if hardening is not None:
            encoded, _ = hardening.wrap_uniform(encoded)
        encoded_sets = dict(zip(state.keys, encoded))
    # Payload encoding and mask drawing stay in the protocol driver (the
    # masks are protocol randomness); the expensive oblivious Horner
    # evaluations run as one engine batch.
    jobs = []
    for join_key in state.keys:
        root = key_to_int(join_key, config.max_key_bytes)
        rows = state.groups[join_key]
        if config.payload_mode == INLINE_MODE:
            body = encode_rows(rows)
        else:
            session_key = secrets.token_bytes(32)
            token = secrets.token_bytes(ID_TOKEN_BYTES)
            while token in state.side_table:
                token = secrets.token_bytes(ID_TOKEN_BYTES)
            state.side_table[token] = hybrid.session_encrypt(
                session_key, encoded_sets[join_key]
            )
            body = session_key + token
        payload = encode_payload(join_key, body, modulus)
        record("random.pm_mask")
        mask = 1 + secrets.randbelow(modulus - 1)
        jobs.append((root, mask, payload))
    evaluations = engine.batch_poly_eval(encrypted_polynomial, jobs)
    # "Arbitrarily ordered": the order must not reveal the value order.
    random.SystemRandom().shuffle(evaluations)
    return evaluations


def _client_decrypt_side(
    client,
    evaluations: list[Any],
    side_table: dict[bytes, bytes],
    schema,
    config: PMConfig,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> dict[JoinKey, tuple[Row, ...]]:
    """Listing 4 step 8 (one side): recover the surviving tuple sets."""
    engine = engine or get_engine()
    recovered: dict[JoinKey, tuple[Row, ...]] = {}
    plaintexts = client.decrypt_homomorphic_many(evaluations, engine=engine)
    for plaintext in plaintexts:
        payload = decode_payload(plaintext)
        if payload is None:
            continue  # a masked non-match: random value, correctly rejected
        join_key = int_to_key(int.from_bytes(b"\x01" + payload.key_bytes, "big"))
        if config.payload_mode == INLINE_MODE:
            rows = decode_rows(payload.body, schema)
        else:
            session_key, token = split_session_body(payload.body)
            if token not in side_table:
                raise ProtocolError("side table is missing a matched ID token")
            blob = hybrid.session_decrypt(session_key, side_table[token])
            if hardening is not None:
                blob = hardening.unwrap(blob)
                if blob is None:
                    raise ProtocolError(
                        "matched side-table entry decrypted to a dummy"
                    )
            rows = decode_rows(blob, schema)
        if join_key in recovered:
            raise ProtocolError(f"duplicate join key {join_key!r} in payloads")
        recovered[join_key] = rows
    return recovered


def run_private_matching_delivery(
    federation: Federation,
    outcome: RequestPhaseOutcome,
    config: PMConfig | None = None,
    engine: CryptoEngine | None = None,
    hardening=None,
) -> MediationResult:
    """Execute the private-matching delivery phase (Listing 4)."""
    config = config or PMConfig()
    engine = engine or get_engine()
    if hardening is not None and config.payload_mode == INLINE_MODE:
        raise ProtocolError(
            "hardened mode requires the session-key payload mode: inline "
            "tuple-set payloads have no uniform wrapping path"
        )
    client = federation.require_client()
    if client.homomorphic_scheme is None:
        raise ProtocolError(
            "the private-matching protocol requires the client to own a "
            "homomorphic key pair (see setup_client)"
        )
    scheme = client.homomorphic_scheme
    public_key = client.homomorphic_public_key
    mediator_name = federation.mediator.name
    network = federation.network
    source_1, source_2 = outcome.source_names
    relation_1 = outcome.partial_results[source_1]
    relation_2 = outcome.partial_results[source_2]

    result = MediationResult(
        protocol=f"private-matching[{config.payload_mode}]",
        query=outcome.query,
        global_result=Relation(relation_1.schema, []),
        network=network,
        primitive_counter=None,
    )

    with count_primitives() as counter:
        result.primitive_counter = counter
        # Step 1 (alteration to the preparatory/request phase): the
        # client's homomorphic public key is distributed with the
        # credentials — modelled as an explicit distribution message.
        network.send(client.name, mediator_name, "pm_homomorphic_key", public_key)
        for source_name in (source_1, source_2):
            network.send(
                mediator_name, source_name, "pm_homomorphic_key", public_key
            )

        # Steps 2/3: both sources build and encrypt their polynomials.
        coefficients: dict[str, EncryptedPolynomial] = {}
        states: dict[str, _SourceState] = {}
        for source_name, relation in (
            (source_1, relation_1),
            (source_2, relation_2),
        ):
            with timed(result, source_name, "build_polynomial"):
                plain_coefficients, state = _build_polynomial(
                    relation,
                    outcome.join_attributes,
                    scheme,
                    public_key,
                    config.max_key_bytes,
                )
                encrypted = _cached_encrypt_polynomial(
                    scheme,
                    public_key,
                    plain_coefficients,
                    federation.source(source_name).index_cache(),
                    relation.name,
                    engine,
                )
            states[source_name] = state
            coefficients[source_name] = encrypted
            network.send(
                source_name,
                mediator_name,
                "pm_encrypted_coefficients",
                list(encrypted.coefficients),
            )

        # Step 4: mediator forwards to the opposite source.
        network.send(
            mediator_name,
            source_2,
            "pm_encrypted_coefficients",
            list(coefficients[source_1].coefficients),
        )
        network.send(
            mediator_name,
            source_1,
            "pm_encrypted_coefficients",
            list(coefficients[source_2].coefficients),
        )

        # Steps 5/6: oblivious evaluations at both sources.
        evaluations: dict[str, list[Any]] = {}
        for source_name, opposite in ((source_1, source_2), (source_2, source_1)):
            with timed(result, source_name, "evaluate_polynomial"):
                evaluations[source_name] = _evaluate_for_source(
                    states[source_name],
                    coefficients[opposite],
                    config,
                    scheme,
                    public_key,
                    engine,
                    hardening=hardening,
                )
            network.send(
                source_name, mediator_name, "pm_evaluations",
                evaluations[source_name],
            )
            if config.payload_mode == SESSION_KEY_MODE:
                network.send(
                    source_name,
                    mediator_name,
                    "pm_side_table",
                    states[source_name].side_table,
                )

        # Step 7: mediator sends the n + m values (and side tables) on.
        network.send(
            mediator_name,
            client.name,
            "pm_evaluations",
            {
                source_1: evaluations[source_1],
                source_2: evaluations[source_2],
            },
        )
        side_tables: dict[str, dict[bytes, bytes]] = {
            source_1: states[source_1].side_table,
            source_2: states[source_2].side_table,
        }
        if config.payload_mode == SESSION_KEY_MODE:
            network.send(mediator_name, client.name, "pm_side_tables", side_tables)

        # Step 8: client decrypts, matches, and combines.
        with timed(result, client.name, "decrypt_and_match"):
            recovered_1 = _client_decrypt_side(
                client,
                evaluations[source_1],
                side_tables[source_1],
                relation_1.schema,
                config,
                engine,
                hardening=hardening,
            )
            recovered_2 = _client_decrypt_side(
                client,
                evaluations[source_2],
                side_tables[source_2],
                relation_2.schema,
                config,
                engine,
                hardening=hardening,
            )
            matched = [
                (join_key, recovered_1[join_key], recovered_2[join_key])
                for join_key in sorted(
                    set(recovered_1) & set(recovered_2),
                    key=lambda key: tuple((type(v).__name__, v) for v in key),
                )
            ]
            global_result = combine_tuple_sets(
                relation_1.schema,
                relation_2.schema,
                outcome.join_attributes,
                matched,
            )

    result.global_result = global_result
    result.artifacts.update(
        {
            "polynomial_degrees": {
                source_1: coefficients[source_1].degree,
                source_2: coefficients[source_2].degree,
            },
            "evaluations_sent": {
                source_1: len(evaluations[source_1]),
                source_2: len(evaluations[source_2]),
            },
            "recovered_payloads": {
                source_1: len(recovered_1),
                source_2: len(recovered_2),
            },
            "matched_keys": len(matched),
            "config": config,
        }
    )
    return result
