"""Mediator hierarchies and successive joins — the Section 8 extension.

*"Moreover, in a mediator hierarchy one mediator can act as a datasource
for other mediators.  Therefore, the case in which several join queries
are executed successively has to be considered."*

We implement successive joins left-to-right: for a chain
``R_1 ⋈ R_2 ⋈ ... ⋈ R_k`` the first two relations are joined under the
chosen delivery protocol; the decrypted intermediate result is then
re-hosted behind a *delegate datasource* — playing the role of the lower
mediator acting as a datasource — in a fresh federation together with
the next relation's source, and the protocol runs again.  The end client
(and its key material) is shared across all stages, so every stage's
partial results are still encrypted end-to-end for the same principal.

The returned :class:`HierarchyResult` keeps every stage's
:class:`~repro.core.result.MediationResult` so transcripts remain
auditable per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.federation import Federation
from repro.core.result import MediationResult
from repro.core.runner import run_join_query
from repro.errors import ProtocolError, QueryError
from repro.mediation.access_control import allow_all
from repro.mediation.mediator import Mediator
from repro.relational import sql
from repro.relational.algebra import Join, PartialQuery
from repro.relational.relation import Relation


@dataclass
class HierarchyResult:
    """Outcome of a successive-join execution."""

    query: str
    protocol: str
    global_result: Relation
    stages: list[MediationResult] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(stage.total_bytes() for stage in self.stages)

    def total_seconds(self) -> float:
        return sum(stage.total_seconds() for stage in self.stages)


def chain_relations(query: str) -> list[str]:
    """Relation names of a left-deep natural-join chain, in order."""
    tree = sql.parse(query)
    names: list[str] = []

    def walk(node) -> None:
        if isinstance(node, PartialQuery):
            names.append(node.relation_name)
            return
        if isinstance(node, Join):
            walk(node.left)
            walk(node.right)
            return
        child = getattr(node, "child", None)
        if child is not None:
            walk(child)
            return
        raise QueryError("successive joins support natural-join chains only")

    walk(tree)
    if len(names) < 2:
        raise QueryError("a join chain needs at least two relations")
    return names


def run_successive_joins(
    federation: Federation,
    query: str,
    protocol: str = "commutative",
    config=None,
    delegate_name: str = "lower-mediator",
) -> HierarchyResult:
    """Execute a multi-relation natural-join chain stage by stage."""
    client = federation.require_client()
    names = chain_relations(query)
    if len(names) == 2:
        result = run_join_query(federation, query, protocol=protocol, config=config)
        return HierarchyResult(
            query=query,
            protocol=protocol,
            global_result=result.global_result,
            stages=[result],
        )

    stages: list[MediationResult] = []
    # Stage 1 runs in the original federation.
    first_query = f"select * from {names[0]} natural join {names[1]}"
    stage = run_join_query(federation, first_query, protocol=protocol, config=config)
    stages.append(stage)
    intermediate = stage.global_result

    for depth, next_name in enumerate(names[2:], start=1):
        next_source_name = federation.mediator.registry.get(next_name)
        if next_source_name is None:
            raise QueryError(f"no datasource manages {next_name!r}")
        next_source = federation.source(next_source_name)
        if next_name not in next_source.relations:
            raise ProtocolError(
                f"datasource {next_source_name} lost relation {next_name!r}"
            )
        # Build the upper federation: the previous stage's result is
        # re-hosted behind a delegate source (the lower mediator in its
        # datasource role), alongside the next real source.
        upper = Federation(
            ca=federation.ca,
            mediator=Mediator(name=f"mediator-l{depth}"),
        )
        delegate = f"{delegate_name}-l{depth}"
        hosted = intermediate.rename(f"J{depth}")
        upper.add_source(delegate, [(hosted, allow_all())])
        upper.add_source(
            f"{next_source_name}-l{depth}",
            [(next_source.relations[next_name], allow_all())],
        )
        upper.attach_client(client)
        stage_query = (
            f"select * from {hosted.name} natural join {next_name}"
        )
        stage = run_join_query(upper, stage_query, protocol=protocol, config=config)
        stages.append(stage)
        intermediate = stage.global_result

    return HierarchyResult(
        query=query,
        protocol=protocol,
        global_result=intermediate.rename("_".join(names)),
        stages=stages,
    )
