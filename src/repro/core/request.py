"""The basic MMM request phase — Listing 1.

1. The client sends query ``q`` (requiring the JOIN of R1 and R2) with a
   set of credentials CR to the mediator.
2. The mediator localizes the datasources S1 and S2 and decomposes ``q``
   into partial queries; it selects the credential subsets CR1 and CR2.
3. For each source, the mediator sends the triple <q_i, CR_i, A_i>.
4. S_i checks the credentials; if authorization is granted, q_i is
   executed with R_i as the (plaintext, still local) result.

The delivery phase — protocol-specific — then encrypts and transmits
those partial results.  :func:`run_request_phase` executes steps 1-4 over
the federation's message bus and returns everything the delivery phases
need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.federation import Federation
from repro.mediation.credentials import Credential
from repro.mediation.mediator import JoinDecomposition
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass
class RequestPhaseOutcome:
    """Everything the delivery phase consumes."""

    query: str
    decomposition: JoinDecomposition
    #: source name -> the plaintext partial result R_i (held AT the
    #: source; it never crossed the bus in plaintext).
    partial_results: dict[str, Relation]
    #: source name -> credential subset the mediator forwarded.
    forwarded_credentials: dict[str, list[Credential]]
    join_attributes: tuple[str, ...]

    @property
    def source_names(self) -> tuple[str, ...]:
        return self.decomposition.source_names

    def schema_of(self, source_name: str) -> Schema:
        return self.partial_results[source_name].schema


def run_request_phase(federation: Federation, query: str) -> RequestPhaseOutcome:
    """Execute Listing 1 over the federation's message bus."""
    client = federation.require_client()
    mediator = federation.mediator
    network = federation.network

    # Step 1: client -> mediator: query plus credential set CR.
    network.send(
        client.name,
        mediator.name,
        "global_query",
        {"query": query, "credentials": client.credentials},
    )

    # Step 2: mediator localizes sources, decomposes q, selects CR_i.
    decomposition = mediator.decompose_join(query)

    partial_results: dict[str, Relation] = {}
    forwarded: dict[str, list[Credential]] = {}
    for partial_query, source_name in zip(
        decomposition.partial_queries, decomposition.source_names
    ):
        credentials = mediator.select_credentials(source_name, client.credentials)
        forwarded[source_name] = credentials
        # Step 3: mediator -> S_i: <q_i, CR_i, A_i>.
        network.send(
            mediator.name,
            source_name,
            "partial_query",
            {
                "sql": partial_query.sql,
                "credentials": credentials,
                "join_attributes": decomposition.join_attributes,
            },
        )
        # Step 4: S_i checks CR_i and executes q_i (locally).
        source = federation.source(source_name)
        partial_results[source_name] = source.execute_partial_query(
            partial_query, credentials
        )

    return RequestPhaseOutcome(
        query=query,
        decomposition=decomposition,
        partial_results=partial_results,
        forwarded_credentials=forwarded,
        join_attributes=decomposition.join_attributes,
    )
