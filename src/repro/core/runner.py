"""End-to-end orchestration: request phase + chosen delivery phase.

:func:`run_join_query` is the library's primary entry point: build a
:class:`~repro.core.federation.Federation`, attach a client, then run a
global join query under any of the three delivery protocols.  The
returned :class:`~repro.core.result.MediationResult` carries the global
result and the full transcript for analysis.
"""

from __future__ import annotations

import contextlib
from typing import Any

from repro.core.commutative import CommutativeConfig, run_commutative_delivery
from repro.core.das import DASConfig, run_das_delivery
from repro.core.federation import Federation
from repro.core.private_matching import PMConfig, run_private_matching_delivery
from repro.core.request import RequestPhaseOutcome, run_request_phase
from repro.core.result import MediationResult, RunFailure
from repro.crypto.engine import CryptoEngine
from repro.deadline import deadline
from repro.errors import ProtocolError, ReproError
from repro.hardening import resolve_hardening
from repro.relational.algebra import evaluate_above_join
from repro.relational.relation import Relation
from repro.session import session_scope
from repro.telemetry import tracing
from repro.telemetry.observables import observables_artifact

#: Protocol registry: name -> (delivery function, config class).
PROTOCOLS = {
    "das": (run_das_delivery, DASConfig),
    "commutative": (run_commutative_delivery, CommutativeConfig),
    "private-matching": (run_private_matching_delivery, PMConfig),
}


def run_join_query(
    federation: Federation,
    query: str,
    protocol: str = "commutative",
    config: Any = None,
    engine: CryptoEngine | None = None,
    *,
    on_failure: str = "raise",
    deadline_seconds: float | None = None,
    session_id: str | None = None,
    hardening: Any = None,
) -> MediationResult | RunFailure:
    """Run a global join query end to end under the named protocol.

    ``protocol`` is one of ``"das"``, ``"commutative"`` (the paper's
    recommendation: "the commutative approach seems to be the most
    efficient one"), or ``"private-matching"``.  ``config`` is the
    protocol's config dataclass (:class:`DASConfig`,
    :class:`CommutativeConfig`, or :class:`PMConfig`) or None for
    defaults.  ``engine`` selects the crypto execution engine (serial,
    pooled, or legacy); None uses the process-wide installed engine.

    Robustness knobs (see ``docs/robustness.md``):

    * ``deadline_seconds`` installs a :mod:`repro.deadline` budget for
      the whole run; every transport wait below shortens itself to the
      remaining budget and the run fails with
      :class:`~repro.errors.DeadlineExceeded` once it is spent.
    * ``on_failure="return"`` degrades gracefully: a run interrupted by
      a :class:`~repro.errors.ReproError` (crashed party, exhausted
      retries, expired deadline) returns a structured
      :class:`~repro.core.result.RunFailure` — carrying the partial
      transcript and any injected-fault events — instead of raising.
      Usage errors (unknown protocol, wrong config type) always raise.
    * ``session_id`` runs the query inside a
      :func:`~repro.session.session_scope`: every transport send, fault
      decision, and span below carries the id, and endpoints key their
      per-session state by it.  ``None`` leaves any enclosing scope in
      force (or runs session-less, the legacy behaviour).
    * ``hardening`` opts into the leakage-hardened oblivious mode
      (``True``, a :class:`~repro.hardening.PaddingPolicy`, or a
      prepared :class:`~repro.hardening.Hardening` context); ``None``
      falls back to ``federation.hardening``.  See ``docs/security.md``
      ("Hardened mode").
    """
    if protocol not in PROTOCOLS:
        raise ProtocolError(
            f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
        )
    delivery, config_type = PROTOCOLS[protocol]
    if config is not None and not isinstance(config, config_type):
        raise ProtocolError(
            f"protocol {protocol!r} expects a {config_type.__name__}, "
            f"got {type(config).__name__}"
        )
    if on_failure not in ("raise", "return"):
        raise ProtocolError(
            f"on_failure must be 'raise' or 'return', got {on_failure!r}"
        )
    context = resolve_hardening(hardening, federation.hardening)
    client_party = federation.client.name if federation.client else "client"
    scope = (
        session_scope(session_id)
        if session_id is not None
        else contextlib.nullcontext()
    )
    phase = "request"
    try:
        with scope, deadline(deadline_seconds), tracing.span(
            "run_join_query", client_party, kind="run", protocol=protocol
        ):
            with tracing.span("request_phase", client_party, kind="phase"):
                outcome = run_request_phase(federation, query)
            phase = "delivery"
            with tracing.span(
                "delivery", client_party, kind="phase", protocol=protocol
            ):
                result = delivery(
                    federation, outcome, config, engine=engine,
                    hardening=context,
                )
            # The protocols deliver the JOIN; remaining operators of the
            # global query (selection, projection) are the client's local
            # post-work.
            phase = "postprocessing"
            tree = outcome.decomposition.tree
            join_rows = len(result.global_result)
            result.global_result = evaluate_above_join(
                tree, result.global_result
            )
            result.artifacts["join_rows_before_postprocessing"] = join_rows
            result.artifacts["crypto"] = crypto_context(engine)
            result.artifacts["observables"] = observables_artifact(result)
            storage_stats = _collect_storage_stats(federation)
            if storage_stats is not None:
                result.artifacts["storage_cache"] = storage_stats
            if context is not None:
                result.artifacts["hardening"] = context.artifact()
                context.record_metrics(protocol)
            return result
    except ReproError as exc:
        if on_failure != "return":
            raise
        return _describe_failure(federation, query, protocol, phase, exc)


def crypto_context(engine: CryptoEngine | None = None) -> dict[str, Any]:
    """Self-description of the crypto configuration a run executed under.

    Recorded in ``result.artifacts["crypto"]`` so audit records, bench
    JSON, and load reports name the bigint backend and engine mode that
    produced their numbers.
    """
    from repro.crypto.engine import get_engine

    active = engine if engine is not None else get_engine()
    return {
        "backend": active.backend_name,
        "engine_mode": active.mode,
        "workers": active.workers,
    }


def _collect_storage_stats(federation: Federation) -> dict[str, Any] | None:
    """Aggregate per-source index-cache statistics for ``result.artifacts``.

    Returns None when the federation has no storage backend so storage-less
    runs keep their artifact dict unchanged (and tests comparing artifacts
    across configurations stay meaningful).
    """
    if federation.storage is None:
        return None
    totals = {"hits": 0, "misses": 0, "puts": 0, "errors": 0}
    per_source: dict[str, dict[str, int]] = {}
    for name, source in sorted(federation.sources.items()):
        cache = source.index_cache()
        if cache is None:
            continue
        stats = cache.stats.as_dict()
        per_source[name] = stats
        for key in totals:
            totals[key] += stats[key]
    return {
        "backend": federation.storage.describe(),
        "sources": per_source,
        **totals,
    }


def _describe_failure(
    federation: Federation,
    query: str,
    protocol: str,
    phase: str,
    error: ReproError,
) -> RunFailure:
    """Structured degradation: partial observables instead of a traceback."""
    network = federation.network
    events = getattr(network, "fault_events", [])
    return RunFailure(
        protocol=protocol,
        query=query,
        phase=phase,
        error_type=type(error).__name__,
        error_message=str(error),
        network=network,
        fault_events=[event.summary() for event in events],
    )


def reference_join(
    federation: Federation, query: str, outcome: RequestPhaseOutcome | None = None
) -> Relation:
    """The plaintext result the protocols must reproduce.

    Evaluates the global query directly over the (access-controlled)
    partial results — the ground truth every protocol's decrypted global
    result is compared against in tests.

    NOTE: this deliberately bypasses the encryption machinery and exists
    for verification only; it also re-runs the request phase unless an
    ``outcome`` is supplied, so transcripts of a protocol run are not
    polluted.
    """
    if outcome is None:
        outcome = run_request_phase(federation, query)
    env = {
        partial_query.relation_name: outcome.partial_results[source_name]
        for partial_query, source_name in zip(
            outcome.decomposition.partial_queries,
            outcome.decomposition.source_names,
        )
    }
    return outcome.decomposition.tree.evaluate(env)
