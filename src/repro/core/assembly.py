"""Assembling the global result from matched tuple sets.

Listing 3 step 8 / Listing 4 step 8: the client "constructs tuples from
the sets Tup_1(a) and Tup_2(a)" — a cross product of each matched pair
of tuple sets, merged on the join attributes.  This module implements
that client-side construction and the result schema derivation shared by
all three protocols.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.joinkeys import JoinKey, key_of
from repro.errors import ProtocolError
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema


def result_schema(
    schema_1: Schema, schema_2: Schema, name: str | None = None
) -> Schema:
    """Schema of the global result (natural-join schema)."""
    return schema_1.join_schema(
        schema_2, name or f"{schema_1.relation_name}_join_{schema_2.relation_name}"
    )


def combine_tuple_sets(
    schema_1: Schema,
    schema_2: Schema,
    join_attributes: tuple[str, ...],
    matched: Iterable[tuple[JoinKey, tuple[Row, ...], tuple[Row, ...]]],
    name: str | None = None,
) -> Relation:
    """Cross-product each matched pair of tuple sets into joined rows.

    ``matched`` yields ``(key, Tup_1(key), Tup_2(key))`` triples.  Every
    row in both sets must actually carry ``key`` on the join attributes
    — a mismatch indicates a corrupted or forged protocol message and
    raises :class:`ProtocolError` (fail closed rather than fabricate
    result rows).
    """
    schema = result_schema(schema_1, schema_2, name)
    left_names = set(schema_1.names())
    extra_positions = [
        schema_2.position(n) for n in schema_2.names() if n not in left_names
    ]
    # Build a probe relation per side to reuse value lookup; Relations are
    # immutable so this is cheap bookkeeping, not data copying.
    rows: list[Row] = []
    for key, tuples_1, tuples_2 in matched:
        probe_1 = Relation(schema_1, tuples_1)
        probe_2 = Relation(schema_2, tuples_2)
        for row in probe_1:
            if key_of(probe_1, row, join_attributes) != key:
                raise ProtocolError(
                    f"tuple {row!r} does not carry join key {key!r}"
                )
        for row in probe_2:
            if key_of(probe_2, row, join_attributes) != key:
                raise ProtocolError(
                    f"tuple {row!r} does not carry join key {key!r}"
                )
        for row_1 in tuples_1:
            for row_2 in tuples_2:
                rows.append(row_1 + tuple(row_2[i] for i in extra_positions))
    return Relation(schema, rows)
