"""The paper's primary contribution: three secure-join delivery protocols.

* :mod:`~repro.core.request` — the common MMM request phase (Listing 1)
* :mod:`~repro.core.das` — DAS delivery (Listing 2)
* :mod:`~repro.core.commutative` — commutative delivery (Listing 3)
* :mod:`~repro.core.private_matching` — private matching (Listing 4)
* :mod:`~repro.core.runner` — end-to-end orchestration
* :mod:`~repro.core.federation` — federation wiring
* :mod:`~repro.core.hierarchy` — mediator hierarchies (Section 8)
"""

from repro.core.commutative import CommutativeConfig, run_commutative_delivery
from repro.core.das import DASConfig, run_das_delivery
from repro.core.federation import Federation
from repro.core.private_matching import PMConfig, run_private_matching_delivery
from repro.core.request import run_request_phase
from repro.core.result import MediationResult, RunFailure
from repro.core.runner import PROTOCOLS, reference_join, run_join_query

__all__ = [
    "CommutativeConfig",
    "DASConfig",
    "Federation",
    "MediationResult",
    "PMConfig",
    "PROTOCOLS",
    "RunFailure",
    "reference_join",
    "run_commutative_delivery",
    "run_das_delivery",
    "run_join_query",
    "run_private_matching_delivery",
    "run_request_phase",
]
