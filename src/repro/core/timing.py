"""Step timing helper shared by the delivery-phase implementations.

:func:`timed` is the single instrumentation point every protocol step
passes through.  Besides the original wall-clock recording into
:class:`~repro.core.result.MediationResult`, it now

* opens a telemetry span (named after the step, attributed to the
  party) when a tracer is installed, so step structure appears in
  distributed traces,
* observes the duration into the ``repro_step_seconds`` histogram of
  the installed metrics registry, and
* records the duration *even when the step raises*, marking the
  :class:`~repro.core.result.StepTiming` (and the span, and the
  ``repro_step_failures_total`` counter) as failed — a crashed run's
  partial timings are analysable instead of silently truncated.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.result import MediationResult
from repro.telemetry import metrics, tracing

#: Histogram of step durations, labelled by party and step.
STEP_SECONDS_METRIC = "repro_step_seconds"
#: Counter of steps that raised, labelled by party and step.
STEP_FAILURES_METRIC = "repro_step_failures_total"


@contextmanager
def timed(result: MediationResult, party: str, step: str) -> Iterator[None]:
    """Record the wall-clock duration of one protocol step."""
    registry = metrics.get_registry()
    started = time.perf_counter()
    ok = True
    with tracing.span(step, party, kind="step"):
        try:
            yield
        except BaseException:
            ok = False
            raise
        finally:
            seconds = time.perf_counter() - started
            result.add_timing(party, step, seconds, ok=ok)
            if registry is not None:
                labels = {"party": party, "step": step}
                registry.histogram(
                    STEP_SECONDS_METRIC, labels,
                    help_text="Protocol step wall-clock duration in seconds",
                ).observe(seconds)
                if not ok:
                    registry.counter(
                        STEP_FAILURES_METRIC, labels,
                        help_text="Protocol steps that raised an exception",
                    ).inc()
