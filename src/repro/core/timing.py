"""Step timing helper shared by the delivery-phase implementations."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.result import MediationResult


@contextmanager
def timed(result: MediationResult, party: str, step: str) -> Iterator[None]:
    """Record the wall-clock duration of one protocol step."""
    started = time.perf_counter()
    try:
        yield
    finally:
        result.add_timing(party, step, time.perf_counter() - started)
