"""Payload encoding for the private-matching protocol.

Section 5: the sender "can also concatenate his a'_l-value with payload
data py ... the chooser can only retrieve py if the corresponding
a'_l-value is in the intersection".  In the MMM adaptation the payload is
the tuple set ``Tup_i(a)``; footnote 2 refines this for large tuple sets:
*"the session key and an ID value are encrypted in the polynomial whereas
each tuple set is encrypted with its corresponding session key and mapped
to the ID value in a table"*.

Both variants are implemented:

* **inline** — the tuple-set bytes ride inside the homomorphic plaintext,
* **session-key** (default) — a fresh 32-byte session key plus an 8-byte
  ID token ride inside; the tuple set travels in a side table encrypted
  under the session key.

Encoding layout (before integer conversion)::

    0x01 | MAGIC(2) | key_len(2) | key_bytes | body_len(3) | body | check(6)

The leading sentinel preserves leading zeros across the int round trip;
the 6-byte truncated-SHA256 checksum makes a *random* plaintext (the
decryption of a masked non-match) parse as valid with probability about
2^-64 — the client's step-8 "check for decrypted values of the form
(a || Tup)" is thereby sound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.joinkeys import JoinKey, encode_key
from repro.errors import EncodingError

_MAGIC = b"PM"
_CHECK_BYTES = 6

#: Fixed sizes of the session-key variant body.
SESSION_KEY_BYTES = 32
ID_TOKEN_BYTES = 8


@dataclass(frozen=True)
class DecodedPayload:
    """A successfully authenticated payload: the join key and body."""

    key_bytes: bytes
    body: bytes


def _checksum(data: bytes) -> bytes:
    return hashlib.sha256(b"repro/pm-payload" + data).digest()[:_CHECK_BYTES]


def encode_payload(join_key: JoinKey, body: bytes, plaintext_bound: int) -> int:
    """Pack ``(a || body)`` into a homomorphic plaintext integer.

    Raises :class:`EncodingError` when the encoding exceeds the scheme's
    message space — the caller should then switch to the session-key
    variant or a larger key.
    """
    key_bytes = encode_key(join_key)
    if len(key_bytes) > 0xFFFF:
        raise EncodingError("join key too long for payload encoding")
    if len(body) > 0xFFFFFF:
        raise EncodingError("payload body too long for payload encoding")
    inner = (
        _MAGIC
        + len(key_bytes).to_bytes(2, "big")
        + key_bytes
        + len(body).to_bytes(3, "big")
        + body
    )
    encoded = b"\x01" + inner + _checksum(inner)
    value = int.from_bytes(encoded, "big")
    if value >= plaintext_bound:
        raise EncodingError(
            f"payload of {len(encoded)} bytes does not fit the homomorphic "
            f"message space (~{plaintext_bound.bit_length()} bits); use the "
            "session-key variant or a larger homomorphic key"
        )
    return value


def decode_payload(value: int) -> DecodedPayload | None:
    """Parse and authenticate a decrypted plaintext.

    Returns None for values that are not well-formed payloads — exactly
    the "random value" outcomes of non-matching polynomial evaluations.
    """
    if value <= 0:
        return None
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
    if raw[:1] != b"\x01" or len(raw) < 1 + 2 + 2 + 3 + _CHECK_BYTES:
        return None
    inner, check = raw[1:-_CHECK_BYTES], raw[-_CHECK_BYTES:]
    if _checksum(inner) != check:
        return None
    if inner[:2] != _MAGIC:
        return None
    key_length = int.from_bytes(inner[2:4], "big")
    offset = 4
    key_bytes = inner[offset:offset + key_length]
    if len(key_bytes) != key_length:
        return None
    offset += key_length
    if offset + 3 > len(inner):
        return None
    body_length = int.from_bytes(inner[offset:offset + 3], "big")
    offset += 3
    body = inner[offset:offset + body_length]
    if len(body) != body_length or offset + body_length != len(inner):
        return None
    return DecodedPayload(key_bytes=key_bytes, body=body)


def split_session_body(body: bytes) -> tuple[bytes, bytes]:
    """Split a session-key-variant body into (session_key, id_token)."""
    if len(body) != SESSION_KEY_BYTES + ID_TOKEN_BYTES:
        raise EncodingError("malformed session-key payload body")
    return body[:SESSION_KEY_BYTES], body[SESSION_KEY_BYTES:]


def payload_capacity(plaintext_bound: int, join_key: JoinKey) -> int:
    """Largest inline body (bytes) that fits the message space."""
    overhead = 1 + 2 + 2 + len(encode_key(join_key)) + 3 + _CHECK_BYTES
    total = (plaintext_bound.bit_length() - 1) // 8  # stay strictly below
    return max(0, total - overhead)
