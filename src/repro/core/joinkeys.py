"""Join keys: single- and multi-attribute join handling.

The paper assumes "there is just one join attribute A_join common to R1
and R2" and flags the multi-attribute case as future work (Section 8).
We implement the general case once and let the single-attribute case be
its specialisation: a *join key* is the tuple of a row's values on the
ordered join attributes.  All three protocols operate on join keys:

* the commutative protocol hashes the key's canonical byte encoding,
* the private-matching protocol encodes the key as an integer root,
* the DAS protocol partitions the key domain.

Key encodings are canonical (deterministic, self-delimiting), so both
datasources independently map equal keys to equal hash inputs/roots.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.relational.encoding import encode_value
from repro.relational.relation import Relation, Row
from repro.relational.schema import Value

#: A join key: the values of the join attributes, in attribute order.
JoinKey = tuple[Value, ...]


def key_of(relation: Relation, row: Row, attributes: tuple[str, ...]) -> JoinKey:
    """Extract a row's join key."""
    return tuple(relation.value(row, attribute) for attribute in attributes)


def active_key_domain(
    relation: Relation, attributes: tuple[str, ...]
) -> tuple[JoinKey, ...]:
    """``domactive`` of the join key: distinct keys, deterministic order."""
    keys = {key_of(relation, row, attributes) for row in relation}
    return tuple(sorted(keys, key=_sort_key))


def group_by_key(
    relation: Relation, attributes: tuple[str, ...]
) -> dict[JoinKey, tuple[Row, ...]]:
    """All ``Tup_i(a)`` tuple sets, keyed by join key."""
    groups: dict[JoinKey, list[Row]] = {}
    for row in relation:
        groups.setdefault(key_of(relation, row, attributes), []).append(row)
    return {key: tuple(rows) for key, rows in groups.items()}


def encode_key(key: JoinKey) -> bytes:
    """Canonical byte encoding (input to the ideal hash)."""
    parts = [len(key).to_bytes(2, "big")]
    for value in key:
        encoded = encode_value(value)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def key_to_int(key: JoinKey, max_bytes: int = 48) -> int:
    """Bijective integer encoding of a join key (polynomial root).

    A sentinel byte 0x01 precedes the canonical encoding so leading zero
    bytes survive the round trip; ``max_bytes`` bounds the encoding so
    callers can guarantee the root fits the homomorphic message space.
    """
    encoded = encode_key(key)
    if len(encoded) > max_bytes:
        raise EncodingError(
            f"join key encoding of {len(encoded)} bytes exceeds bound "
            f"{max_bytes}; use the session-key payload variant or a larger "
            "homomorphic modulus"
        )
    return int.from_bytes(b"\x01" + encoded, "big")


def int_to_key(encoded: int) -> JoinKey:
    """Inverse of :func:`key_to_int`."""
    if encoded <= 0:
        raise EncodingError("invalid encoded join key")
    raw = encoded.to_bytes((encoded.bit_length() + 7) // 8, "big")
    if raw[:1] != b"\x01":
        raise EncodingError("missing join-key sentinel byte")
    data = raw[1:]
    if len(data) < 2:
        raise EncodingError("truncated join-key encoding")
    count = int.from_bytes(data[:2], "big")
    offset = 2
    values: list[Value] = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise EncodingError("truncated join-key field header")
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        field = data[offset:offset + length]
        if len(field) != length:
            raise EncodingError("truncated join-key field")
        offset += length
        values.append(_decode_value(field))
    if offset != len(data):
        raise EncodingError("trailing bytes in join-key encoding")
    return tuple(values)


def _decode_value(field: bytes) -> Value:
    if not field:
        raise EncodingError("empty join-key field")
    tag, body = field[:1], field[1:]
    if tag == b"i":
        return int(body.decode("ascii"))
    if tag == b"s":
        return body.decode("utf-8")
    if tag == b"b":
        return body == b"1"
    raise EncodingError(f"unknown join-key value tag {tag!r}")


def _sort_key(key: JoinKey) -> tuple:
    return tuple((type(v).__name__, v) for v in key)
