"""Wiring a mediated federation: parties, bus, and setup helpers.

A :class:`Federation` owns one network, one certification authority, one
mediator, one client, and the contracted datasources — the "contract
based confederation" of Section 1.  It is the object examples and the
runner build once and then issue queries against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MediationError
from repro.hardening import PaddingPolicy
from repro.mediation.access_control import AccessPolicy
from repro.mediation.ca import CertificationAuthority
from repro.mediation.client import Client
from repro.mediation.datasource import DataSource
from repro.mediation.mediator import Mediator
from repro.mediation.network import Network
from repro.relational.relation import Relation
from repro.storage.base import StorageBackend
from repro.transport.base import Transport


@dataclass
class Federation:
    """One mediated information system instance.

    ``network`` accepts any :class:`~repro.transport.base.Transport`:
    the in-process bus (default) or a :class:`repro.transport.TcpTransport`
    wired to per-party endpoints — protocols never know the difference.
    """

    ca: CertificationAuthority
    network: Transport = field(default_factory=Network)
    mediator: Mediator = field(default_factory=Mediator)
    sources: dict[str, DataSource] = field(default_factory=dict)
    client: Client | None = None
    #: Optional shared storage backend (see :mod:`repro.storage`): every
    #: contracted source persists its relations in it (namespaced by
    #: source name) and amortizes encrypted indexes across queries; the
    #: mediator pushes the DAS server query down into it.
    storage: StorageBackend | None = None
    #: Federation-wide default for the leakage-hardened oblivious mode:
    #: a :class:`~repro.hardening.PaddingPolicy` here makes every run
    #: hardened unless the ``run_join_query`` caller overrides it.
    hardening: PaddingPolicy | None = None

    def __post_init__(self) -> None:
        self.network.register(self.mediator.name)
        if self.storage is not None:
            self.mediator.storage = self.storage

    # -- wiring -------------------------------------------------------------

    def attach_storage(self, backend: StorageBackend) -> None:
        """Bind a storage backend to the mediator and every source."""
        self.storage = backend
        self.mediator.storage = backend
        for source in self.sources.values():
            source.attach_storage(backend)

    def add_source(
        self,
        name: str,
        relations: list[tuple[Relation, AccessPolicy | None]],
    ) -> DataSource:
        """Contract a datasource supplying the given relations."""
        if name in self.sources:
            raise MediationError(f"datasource {name!r} already contracted")
        source = DataSource(
            name=name, ca_key=self.ca.verification_key, storage=self.storage
        )
        for relation, policy in relations:
            source.add_relation(relation, policy)
        self.sources[name] = source
        self.network.register(name)
        schemas = [relation.schema for relation, _ in relations]
        self.mediator.register_source(
            name, *schemas, property_names=source.relevant_property_names
        )
        return source

    def attach_client(self, client: Client) -> None:
        if self.client is not None:
            raise MediationError("a client is already attached")
        self.client = client
        self.network.register(client.name)

    def require_client(self) -> Client:
        if self.client is None:
            raise MediationError("no client attached to the federation")
        return self.client

    def source(self, name: str) -> DataSource:
        if name not in self.sources:
            raise MediationError(f"unknown datasource {name!r}")
        return self.sources[name]
