"""repro — Secure Mediation of Join Queries by Processing Ciphertexts.

A complete reproduction of Biskup, Tsatedem, Wiese (ICDE Workshops 2007):
a mediated information system in which an untrusted mediator computes
JOIN queries over *encrypted* partial results, under three delivery
protocols — DAS bucketization, commutative encryption, and private
matching with homomorphic encryption — plus the credential-based access
control architecture they are embedded in.

Quickstart::

    from repro import Federation, CertificationAuthority, setup_client
    from repro import run_join_query
    from repro.mediation.access_control import allow_all
    from repro.relational import schema, relation

    ca = CertificationAuthority()
    federation = Federation(ca=ca)
    federation.add_source("S1", [(relation_1, allow_all())])
    federation.add_source("S2", [(relation_2, allow_all())])
    federation.attach_client(setup_client(ca, "alice", {("role", "analyst")}))

    result = run_join_query(
        federation, "select * from R1 natural join R2",
        protocol="commutative",
    )
    print(result.global_result.pretty())
"""

from repro.core import (
    CommutativeConfig,
    DASConfig,
    Federation,
    MediationResult,
    PMConfig,
    RunFailure,
    reference_join,
    run_join_query,
)
from repro.mediation import CertificationAuthority, setup_client

__version__ = "1.0.0"

__all__ = [
    "CertificationAuthority",
    "CommutativeConfig",
    "DASConfig",
    "Federation",
    "MediationResult",
    "PMConfig",
    "RunFailure",
    "reference_join",
    "run_join_query",
    "setup_client",
    "__version__",
]
