"""Deadline propagation from the runner down through transport calls.

A :class:`Deadline` is an absolute point on the monotonic clock plus
the budget it was created with.  The runner installs one for the whole
query (``run_join_query(..., deadline_seconds=...)``); every blocking
wait below it — TCP connects, acknowledgement reads, fault-injected
delays — shortens its own timeout to the remaining budget and raises
:class:`~repro.errors.DeadlineExceeded` once nothing is left.  The
deadline lives in a :mod:`contextvars` variable, so propagation follows
the call stack with no plumbing through protocol signatures.

Design notes:

* the deadline is a *ceiling*, not a replacement, for per-operation
  timeouts: an acknowledgement wait uses ``min(io_timeout, remaining)``,
* with no deadline installed every helper degrades to a pass-through,
  mirroring the opt-in design of :mod:`repro.telemetry`,
* :class:`DeadlineExceeded` subclasses :class:`~repro.errors.
  NetworkError`, so hardened callers treat budget exhaustion like any
  other delivery failure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.errors import DeadlineExceeded


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("budget", "_expires_at")

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds}")
        self.budget = float(seconds)
        self._expires_at = time.monotonic() + self.budget

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget}, remaining={self.remaining():.3f})"


_current_deadline: ContextVar[Deadline | None] = ContextVar(
    "repro_current_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The innermost installed deadline, or None."""
    return _current_deadline.get()


@contextmanager
def deadline(seconds: float | None) -> Iterator[Deadline | None]:
    """Install a deadline for the duration of the block.

    ``seconds=None`` is a no-op passthrough so callers can forward an
    optional configuration value unconditionally.
    """
    if seconds is None:
        yield None
        return
    installed = Deadline(seconds)
    token = _current_deadline.set(installed)
    try:
        yield installed
    finally:
        _current_deadline.reset(token)


def effective_timeout(timeout: float) -> float:
    """Shorten a per-operation timeout to the remaining deadline budget.

    Raises :class:`DeadlineExceeded` when the installed deadline has
    already expired — waiting any longer cannot succeed.
    """
    installed = _current_deadline.get()
    if installed is None:
        return timeout
    remaining = installed.remaining()
    if remaining <= 0:
        raise DeadlineExceeded(
            f"deadline of {installed.budget}s exhausted before the "
            f"operation (timeout {timeout}s) could start"
        )
    return min(timeout, remaining)


def check_deadline(context: str) -> None:
    """Raise :class:`DeadlineExceeded` if the installed deadline expired."""
    installed = _current_deadline.get()
    if installed is not None and installed.expired():
        raise DeadlineExceeded(
            f"deadline of {installed.budget}s exhausted during {context}"
        )
