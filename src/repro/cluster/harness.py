"""In-process router + shard fleets: the cluster on loopback ports.

Everything here is real networking — every frame crosses real sockets
through the real :class:`~repro.cluster.router.ShardRouter` to real
:class:`~repro.transport.server.PartyServer` shards — just hosted
inside one process on a private event loop, the same trick
:class:`~repro.transport.tcp.TcpTransport` uses for locally hosted
endpoints.  Two entry points:

* :class:`LocalCluster` — N mediator shards behind a router, plus any
  source endpoints, with direct handles on every server for tests and
  ``repro loadgen --cluster`` (drain a shard, kill a shard, read its
  records).
* :class:`ClusterTransport` — a :class:`TcpTransport` whose
  ``mediator`` endpoint *is* a private cluster: drop-in wherever a
  transport is expected (the differential leakage audit's
  ``--transport cluster`` carrier), closing the fleet with the
  transport.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Mapping

from repro.cluster.router import ShardRouter
from repro.errors import NetworkError
from repro.transport.server import PartyServer
from repro.transport.tcp import RetryPolicy, TcpTransport


class LocalCluster:
    """A live router + N-shard mediator fleet on loopback ports.

    Shard labels are ``{party}-{k}`` for ``k`` in ``1..shards`` —
    the same labels ``repro serve mediator --shard k/N`` derives — so
    in-process placement matches a multi-process deployment of the
    same fleet shape.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        party: str = "mediator",
        sources: tuple[str, ...] = (),
        shard_options: Mapping[str, Any] | None = None,
        source_options: Mapping[str, Any] | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        if shards < 1:
            raise NetworkError(f"a cluster needs >= 1 shard, got {shards}")
        self.party = party
        self._host = host
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster", daemon=True
        )
        self._thread.start()
        self._closed = False
        self.shard_servers: dict[str, PartyServer] = {}
        self.source_servers: dict[str, PartyServer] = {}
        self.endpoints: dict[str, tuple[str, int]] = {}
        try:
            shard_endpoints: dict[str, tuple[str, int]] = {}
            for index in range(1, shards + 1):
                label = f"{party}-{index}"
                server = PartyServer(
                    party, host=host, port=0, **dict(shard_options or {})
                )
                shard_endpoints[label] = self._run(server.start())
                self.shard_servers[label] = server
            for source in sources:
                server = PartyServer(
                    source, host=host, port=0, **dict(source_options or {})
                )
                self.endpoints[source] = self._run(server.start())
                self.source_servers[source] = server
            self.router = ShardRouter(shard_endpoints, party=party, host=host)
            self.endpoints[party] = self._run(self.router.start())
        except BaseException:
            self.close()
            raise

    # -- loop plumbing -----------------------------------------------------

    def _run(self, coroutine) -> Any:
        if self._closed:
            coroutine.close()
            raise NetworkError("cluster is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- convenience -------------------------------------------------------

    @property
    def router_endpoint(self) -> tuple[str, int]:
        return self.endpoints[self.party]

    @property
    def shard_labels(self) -> list[str]:
        return sorted(self.shard_servers)

    def drain(self, label: str) -> None:
        """Begin draining one shard: it refuses new sessions with BUSY
        (the router re-maps its ring segment) while in-flight sessions
        finish."""
        server = self.shard_servers[label]
        self._loop.call_soon_threadsafe(server.drain)

    def kill(self, label: str) -> None:
        """Stop one shard outright — the ungraceful failure."""
        self._run(self.shard_servers[label].stop())

    def stats(self) -> dict:
        """The router's ``repro-router/1`` statistics document."""
        return self.router.stats()

    def shard_records(self) -> dict[str, int]:
        """Data messages recorded per shard (the balance evidence)."""
        return {
            label: len(server.records)
            for label, server in sorted(self.shard_servers.items())
        }

    def telemetry_snapshots(self) -> list[dict]:
        """Every hosted endpoint's telemetry snapshot (shards first)."""
        snapshots = [
            server.telemetry_snapshot()
            for _, server in sorted(self.shard_servers.items())
        ]
        snapshots.extend(
            server.telemetry_snapshot()
            for _, server in sorted(self.source_servers.items())
        )
        return snapshots

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            if hasattr(self, "router"):
                await self.router.stop()
            for server in self.shard_servers.values():
                await server.stop()
            for server in self.source_servers.values():
                await server.stop()

        future = asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        try:
            future.result(timeout=5.0)
        except Exception:
            future.cancel()
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            if not self._thread.is_alive():
                self._loop.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterTransport(TcpTransport):
    """A TcpTransport whose mediator endpoint is a private shard fleet.

    Registering the mediator party handshakes the router; every other
    party is hosted locally exactly as a plain :class:`TcpTransport`
    would.  Used as the ``cluster`` carrier of the differential
    leakage audit (``repro audit --differential --transport cluster``)
    and by the byte-identity suites: with ``shards=1`` the routed path
    must be byte-for-byte the single-mediator path.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        party: str = "mediator",
        retry: RetryPolicy | None = None,
        host: str = "127.0.0.1",
        server_options: Mapping[str, Any] | None = None,
        shard_options: Mapping[str, Any] | None = None,
    ) -> None:
        self.cluster = LocalCluster(
            shards,
            party=party,
            shard_options=shard_options if shard_options is not None
            else server_options,
            host=host,
        )
        try:
            super().__init__(
                endpoints={party: self.cluster.router_endpoint},
                retry=retry,
                host=host,
                server_options=server_options,
            )
        except BaseException:
            self.cluster.close()
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            self.cluster.close()
