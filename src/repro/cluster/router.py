"""The session-affine shard router: one mediator address, N shards.

:class:`ShardRouter` listens where clients expect the mediator and
proxies the existing frame protocol to a fleet of mediator shard
endpoints (each an ordinary :class:`~repro.transport.server.PartyServer`
started with ``repro serve mediator --shard K/N``).  It is a *frame*
router, not a protocol participant:

* **DATA frames are forwarded verbatim.**  The router peeks only the
  envelope's routing slots (:func:`repro.transport.codec.peek_envelope`
  — sequence, sender, receiver, kind, trace, request id, session id)
  and never decodes the body, so the routed byte stream a shard
  receives is byte-for-byte the stream a single mediator would have
  received, and the router learns nothing the network observer does
  not already see (``docs/security.md``).
* **Sessions are sticky.**  The first frame of a session is placed by
  the consistent-hash ring (:class:`~repro.cluster.ring.HashRing` over
  the session id) and every later frame — across client reconnects —
  follows the recorded affinity, because all per-session protocol
  state (views, dedupe windows, telemetry) lives on exactly one shard.
* **BUSY re-maps the ring segment.**  A shard that answers BUSY to a
  *new* session (draining, or at session capacity) is skipped and the
  ring's next preference shard is tried; only when every shard refuses
  does the client see BUSY and back off under its own retry policy.
  This is the whole drain/rebalance protocol: drain a shard, and new
  sessions flow around it while its in-flight sessions finish.
* **Legacy traffic degrades gracefully.**  Session-less envelopes share
  the ``"legacy"`` affinity slot, so a pre-session client talks to one
  consistent shard — exactly the single-mediator contract.

Control frames: HELLO is answered locally (the router *is* the
mediator endpoint as far as handshakes go), session-scoped FETCH and
TELEMETRY go to the session's shard, global FETCH/TELEMETRY aggregate
over every shard (the router adds its own ``route:`` spans, which is
what stitches a distributed trace across router and shards), and the
new STATS frame reports the router's own routing table — per-shard
sessions, forwarded frames, busy redirects, and failures — as a
``repro-router/1`` document (see ``repro loadgen --cluster``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.session import LEGACY_SESSION
from repro.telemetry.exporters import prometheus_exposition
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import SpanContext, Tracer
from repro.transport import codec

#: Counter of frames the router forwarded, labelled by shard.
ROUTER_FRAMES_METRIC = "repro_router_frames_total"
#: Counter of new-session placements, labelled by shard.
ROUTER_SESSIONS_METRIC = "repro_router_sessions_total"
#: Counter of BUSY refusals that re-mapped a new session to the ring's
#: next preference shard.
ROUTER_REDIRECTS_METRIC = "repro_router_busy_redirects_total"
#: Counter of shard I/O failures observed while forwarding.
ROUTER_FAILURES_METRIC = "repro_router_failures_total"

#: Seconds the router waits for a shard to answer one forwarded frame.
#: Generous — a frame's answer includes the shard's full protocol step.
DEFAULT_SHARD_TIMEOUT = 60.0
#: Seconds the router waits for a TCP connect to a shard.
DEFAULT_CONNECT_TIMEOUT = 2.0


@dataclass
class RouterStats:
    """Mutable per-shard routing counters (rendered by :meth:`ShardRouter.stats`)."""

    sessions: int = 0
    frames: int = 0
    busy_redirects: int = 0
    failures: int = 0


@dataclass
class _Shard:
    """One downstream mediator shard endpoint."""

    label: str
    host: str
    port: int
    stats: RouterStats = field(default_factory=RouterStats)


class _Channel:
    """Per-downstream-connection state: one upstream socket per shard.

    Dedicated upstream connections per client connection preserve frame
    ordering trivially (a client's frames to one shard travel one
    stream) and make teardown symmetric: the client disconnecting
    closes exactly its own upstream sockets.
    """

    def __init__(self) -> None:
        self.upstreams: dict[
            str, tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}

    def drop(self, label: str) -> None:
        connection = self.upstreams.pop(label, None)
        if connection is not None:
            connection[1].close()

    def close(self) -> None:
        for label in list(self.upstreams):
            self.drop(label)


class ShardRouter:
    """Session-affine frame router in front of N mediator shards.

    All coroutines run on one event loop — the ``repro serve router``
    CLI drives it with ``asyncio.run``, the in-process
    :class:`~repro.cluster.harness.LocalCluster` from its background
    loop thread.
    """

    def __init__(
        self,
        shards: dict[str, tuple[str, int]],
        *,
        party: str = "mediator",
        host: str = "127.0.0.1",
        port: int = 0,
        shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        if not shards:
            raise NetworkError("a shard router needs at least one shard")
        from repro.cluster.ring import HashRing

        self.party = party
        self.host = host
        self.port = port
        self.shard_timeout = shard_timeout
        self.connect_timeout = connect_timeout
        self._shards: dict[str, _Shard] = {
            label: _Shard(label, endpoint[0], endpoint[1])
            for label, endpoint in shards.items()
        }
        self.ring = HashRing(list(self._shards))
        #: session id -> shard label; the stickiness table.  Lives for
        #: the router's lifetime (entries are dropped on SESSION close),
        #: so affinity survives client reconnects.
        self._affinity: dict[str, str] = {}
        #: Serializes the *first* frame of each session so concurrent
        #: pooled connections cannot race a session onto two shards.
        self._placing: dict[str, asyncio.Lock] = {}
        #: Router-local telemetry, merged into aggregated TELEMETRY
        #: answers so one stitched trace spans router and shards.
        self.tracer = Tracer(service="repro.router")
        self.registry = MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._channels: set[_Channel] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise NetworkError("shard router already started")
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            raise NetworkError(
                f"cannot bind shard router on {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for channel in list(self._channels):
            channel.close()
        self._channels.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- introspection -----------------------------------------------------

    @property
    def shard_labels(self) -> list[str]:
        return sorted(self._shards)

    def affinity_of(self, session_id: str) -> str | None:
        """The shard a session is pinned to, if placed."""
        return self._affinity.get(session_id)

    def stats(self) -> dict:
        """The ``repro-router/1`` routing-statistics document."""
        placed: dict[str, int] = {}
        for label in self._affinity.values():
            placed[label] = placed.get(label, 0) + 1
        return {
            "schema": "repro-router/1",
            "party": self.party,
            "sessions_routed": len(self._affinity),
            "shards": [
                {
                    "label": shard.label,
                    "endpoint": f"{shard.host}:{shard.port}",
                    "sessions": shard.stats.sessions,
                    "live_sessions": placed.get(shard.label, 0),
                    "frames": shard.stats.frames,
                    "busy_redirects": shard.stats.busy_redirects,
                    "failures": shard.stats.failures,
                }
                for shard in sorted(
                    self._shards.values(), key=lambda shard: shard.label
                )
            ],
        }

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        channel = _Channel()
        self._channels.add(channel)
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame_type, payload = await codec.read_frame(reader)
                except (NetworkError, ConnectionError, asyncio.TimeoutError):
                    return  # client went away or sent garbage
                try:
                    done = await self._dispatch(
                        frame_type, payload, writer, channel
                    )
                except ConnectionError:
                    return
                if done:
                    return
        except asyncio.CancelledError:
            return  # loop shutdown cancelled this connection mid-read
        finally:
            self._channels.discard(channel)
            self._writers.discard(writer)
            channel.close()
            writer.close()

    async def _dispatch(
        self,
        frame_type: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        channel: _Channel,
    ) -> bool:
        """Route one frame; returns True when the connection must close."""
        if frame_type == codec.DATA:
            return await self._data(payload, writer, channel)
        if frame_type == codec.HELLO:
            # The router *is* the mediator endpoint for handshakes.
            await codec.write_frame(
                writer, codec.OK, codec.encode_value({"party": self.party})
            )
            return False
        if frame_type == codec.SESSION:
            return await self._session(payload, writer, channel)
        if frame_type in (codec.FETCH, codec.TELEMETRY):
            return await self._query(frame_type, payload, writer, channel)
        if frame_type == codec.STATS:
            await codec.write_frame(
                writer, codec.STATS_DATA, codec.encode_value(self.stats())
            )
            return False
        await codec.write_frame(
            writer,
            codec.ERROR,
            codec.encode_value(
                {"error": f"unexpected frame type 0x{frame_type:02x}"}
            ),
        )
        return False

    # -- forwarding --------------------------------------------------------

    async def _connect(
        self, shard: _Shard
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                self.connect_timeout,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise NetworkError(
                f"cannot reach shard {shard.label!r} at "
                f"{shard.host}:{shard.port}: {exc}"
            ) from exc

    async def _forward(
        self, label: str, frame_type: int, payload: bytes, channel: _Channel
    ) -> tuple[int, bytes]:
        """One frame to one shard, one response back — verbatim bytes.

        A stale pooled upstream (the shard restarted between frames) is
        retried once on a fresh connection; a fresh connection failing
        marks a real shard failure and propagates.
        """
        shard = self._shards[label]
        connection = channel.upstreams.get(label)
        fresh = connection is None
        if connection is None:
            connection = await self._connect(shard)
            channel.upstreams[label] = connection
        reader, upstream_writer = connection
        try:
            await codec.write_frame(upstream_writer, frame_type, payload)
            response = await codec.read_frame(reader, self.shard_timeout)
        except (
            NetworkError, ConnectionError, OSError, asyncio.TimeoutError
        ) as exc:
            channel.drop(label)
            if not fresh:
                return await self._forward(label, frame_type, payload, channel)
            shard.stats.failures += 1
            self.registry.counter(
                ROUTER_FAILURES_METRIC,
                {"shard": label},
                help_text="Shard I/O failures observed by the router",
            ).inc()
            raise NetworkError(
                f"shard {label!r} failed mid-frame: {exc}"
            ) from exc
        shard.stats.frames += 1
        self.registry.counter(
            ROUTER_FRAMES_METRIC,
            {"shard": label},
            help_text="Frames forwarded to a mediator shard",
        ).inc()
        return response

    def _candidates(self, session_key: str) -> list[str]:
        """Shards to try for an unplaced session, in preference order."""
        return self.ring.owners(session_key)

    async def _place(
        self,
        session_key: str,
        frame_type: int,
        payload: bytes,
        channel: _Channel,
    ) -> tuple[int, bytes] | None:
        """Place a new session: walk the ring until a shard accepts.

        Forwards the session's first frame as the placement probe —
        BUSY (draining or full shard) and I/O failures advance to the
        ring's next preference shard.  Returns the accepting shard's
        response, the last BUSY when every shard refused, or ``None``
        when every shard failed outright.
        """
        last_busy: tuple[int, bytes] | None = None
        candidates = self._candidates(session_key)
        for index, label in enumerate(candidates):
            try:
                frame = await self._forward(
                    label, frame_type, payload, channel
                )
            except NetworkError:
                continue
            if frame[0] == codec.BUSY:
                last_busy = frame
                self._shards[label].stats.busy_redirects += 1
                self.registry.counter(
                    ROUTER_REDIRECTS_METRIC,
                    {"shard": label},
                    help_text=(
                        "New sessions redirected off a BUSY (draining or "
                        "full) shard"
                    ),
                ).inc()
                continue
            if frame[0] != codec.ERROR:
                self._affinity[session_key] = label
                self._shards[label].stats.sessions += 1
                self.registry.counter(
                    ROUTER_SESSIONS_METRIC,
                    {"shard": label, "failover": str(index > 0).lower()},
                    help_text="New sessions placed on a shard",
                ).inc()
            return frame
        return last_busy

    def _placement_lock(self, session_key: str) -> asyncio.Lock:
        lock = self._placing.get(session_key)
        if lock is None:
            lock = self._placing[session_key] = asyncio.Lock()
        return lock

    async def _route(
        self,
        session_key: str,
        frame_type: int,
        payload: bytes,
        channel: _Channel,
    ) -> tuple[int, bytes] | None:
        """Sticky-or-place routing for one session-keyed frame."""
        label = self._affinity.get(session_key)
        if label is not None:
            return await self._forward(label, frame_type, payload, channel)
        try:
            async with self._placement_lock(session_key):
                # Re-check: a concurrent frame of the same session may
                # have placed it while we waited on the lock.
                label = self._affinity.get(session_key)
                if label is not None:
                    return await self._forward(
                        label, frame_type, payload, channel
                    )
                return await self._place(
                    session_key, frame_type, payload, channel
                )
        finally:
            # Only retire the lock once the session is actually placed;
            # a failed placement keeps it so concurrent retries of the
            # same session still serialize on one lock object.
            if session_key in self._affinity:
                self._placing.pop(session_key, None)

    # -- frame handlers ----------------------------------------------------

    async def _data(
        self, payload: bytes, writer: asyncio.StreamWriter, channel: _Channel
    ) -> bool:
        try:
            sequence, _sender, _receiver, kind, _body, trace, _request_id, \
                session_id = codec.peek_envelope(payload)
        except Exception as exc:
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value({"error": f"undecodable envelope: {exc}"}),
            )
            return False
        session_key = session_id if session_id is not None else LEGACY_SESSION
        span = None
        parent = SpanContext.from_wire(trace)
        if parent is not None:
            attributes: dict = {
                "kind": "route",
                "sequence": sequence,
                "wire_bytes": codec.FRAME_HEADER_BYTES + len(payload),
            }
            if session_id is not None:
                attributes["session"] = session_id
            span = self.tracer.start_span(
                f"route:{kind}", "router", parent=parent, attributes=attributes
            )
        try:
            response = await self._route(
                session_key, codec.DATA, payload, channel
            )
        except NetworkError:
            # The session's shard is gone; its shared-nothing state
            # went with it.  Drop the connection: an honest failure the
            # client's retry policy surfaces as NetworkError.
            if span is not None:
                span.attributes["error"] = "shard failed"
                self.tracer.end_span(span)
            return True
        if span is not None:
            shard = self._affinity.get(session_key)
            if shard is not None:
                span.attributes["shard"] = shard
            self.tracer.end_span(span)
        if response is None:
            return True  # every shard failed outright
        await codec.write_frame(writer, response[0], response[1])
        return False

    async def _session(
        self, payload: bytes, writer: asyncio.StreamWriter, channel: _Channel
    ) -> bool:
        """SESSION open routes like a first frame; close follows affinity."""
        try:
            request = codec.decode_value(payload)
            operation = request["op"]
            session_id = request["session"]
            if operation not in ("open", "close") or not isinstance(
                session_id, str
            ) or not session_id:
                raise ValueError(f"malformed session request {request!r}")
        except Exception as exc:
            await codec.write_frame(
                writer,
                codec.ERROR,
                codec.encode_value({"error": f"bad SESSION frame: {exc}"}),
            )
            return False
        if operation == "open":
            try:
                response = await self._route(
                    session_id, codec.SESSION, payload, channel
                )
            except NetworkError:
                return True
            if response is None:
                return True
        else:
            label = self._affinity.pop(session_id, None)
            if label is None:
                # Unknown session: answer the idempotent close locally
                # (the shards never saw the session either).
                response = (
                    codec.OK,
                    codec.encode_value(
                        {
                            "party": self.party,
                            "op": "close",
                            "session": session_id,
                        }
                    ),
                )
            else:
                try:
                    response = await self._forward(
                        label, codec.SESSION, payload, channel
                    )
                except NetworkError:
                    return True
        await codec.write_frame(writer, response[0], response[1])
        return False

    async def _query(
        self,
        frame_type: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        channel: _Channel,
    ) -> bool:
        """FETCH/VIEW and TELEMETRY: session-scoped to the session's
        shard, global aggregated across every shard."""
        session_id = self._requested_session(payload)
        if session_id is not None:
            label = self._affinity.get(session_id) or self.ring.owner(
                session_id
            )
            try:
                response = await self._forward(
                    label, frame_type, payload, channel
                )
            except NetworkError:
                return True
            if frame_type == codec.TELEMETRY and response[0] == \
                    codec.TELEMETRY_DATA:
                response = self._merge_telemetry([response[1]], session_id)
            await codec.write_frame(writer, response[0], response[1])
            return False
        payloads: list[bytes] = []
        expected = codec.VIEW if frame_type == codec.FETCH else \
            codec.TELEMETRY_DATA
        for label in self.shard_labels:
            try:
                shard_type, shard_payload = await self._forward(
                    label, frame_type, payload, channel
                )
            except NetworkError:
                continue  # a dead shard contributes nothing
            if shard_type == expected:
                payloads.append(shard_payload)
        if frame_type == codec.FETCH:
            view: list = []
            for shard_payload in payloads:
                part = codec.decode_value(shard_payload)
                if isinstance(part, list):
                    view.extend(part)
            await codec.write_frame(
                writer, codec.VIEW, codec.encode_value(view)
            )
            return False
        response = self._merge_telemetry(payloads, None)
        await codec.write_frame(writer, response[0], response[1])
        return False

    def _merge_telemetry(
        self, payloads: list[bytes], session_id: str | None
    ) -> tuple[int, bytes]:
        """Shard snapshots + the router's own spans, as one snapshot.

        This is the cross-shard stitching point: shard ``recv:`` spans
        and router ``route:`` spans share the client's trace ids, so
        the harvested result renders as one distributed trace.
        """
        spans: list[dict] = []
        merged = MetricsRegistry()
        for payload in payloads:
            snapshot = codec.decode_value(payload)
            if not isinstance(snapshot, dict):
                continue
            part = snapshot.get("spans", [])
            if isinstance(part, list):
                spans.extend(part)
            metrics = snapshot.get("metrics")
            if metrics:
                merged.merge(metrics)
        router_spans = [span.to_dict() for span in self.tracer.spans]
        if session_id is not None:
            router_spans = [
                span
                for span in router_spans
                if span.get("attributes", {}).get("session") == session_id
            ]
        spans.extend(router_spans)
        merged.merge(self.registry.snapshot())
        snapshot = {
            "party": self.party,
            "spans": spans,
            "metrics": merged.snapshot(),
            "exposition": prometheus_exposition(merged),
        }
        return codec.TELEMETRY_DATA, codec.encode_value(snapshot)

    @staticmethod
    def _requested_session(payload: bytes) -> str | None:
        """The ``session`` filter of a FETCH/TELEMETRY payload, if any."""
        try:
            request = codec.decode_value(payload)
        except Exception:
            return None
        if isinstance(request, dict):
            session_id = request.get("session")
            if isinstance(session_id, str) and session_id:
                return session_id
        return None


def fetch_router_stats(host: str, port: int, timeout: float = 10.0) -> dict:
    """One-shot STATS request against a running shard router.

    Used by ``repro loadgen --cluster --remote`` to fold per-shard
    routing statistics into the load report.
    """

    async def _fetch() -> dict:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise NetworkError(
                f"cannot reach router at {host}:{port}: {exc}"
            ) from exc
        try:
            await codec.write_frame(writer, codec.STATS, codec.encode_value({}))
            frame_type, payload = await codec.read_frame(reader, timeout)
        except asyncio.TimeoutError as exc:
            raise NetworkError(
                f"timed out after {timeout}s waiting for router stats from "
                f"{host}:{port}"
            ) from exc
        finally:
            writer.close()
        value = codec.decode_value(payload)
        if frame_type == codec.ERROR:
            detail = value.get("error") if isinstance(value, dict) else value
            raise NetworkError(
                f"endpoint at {host}:{port} reported: {detail} (is it a "
                f"shard router?)"
            )
        if frame_type != codec.STATS_DATA or not isinstance(value, dict):
            raise NetworkError(
                f"endpoint at {host}:{port} answered with unexpected frame "
                f"type 0x{frame_type:02x}"
            )
        return value

    return asyncio.run(_fetch())
