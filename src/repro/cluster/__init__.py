"""Horizontal mediator scale-out: a sharded fleet behind a session-affine
router.

The paper's mediator is one logical party; this package makes it an
*elastic service* (cf. arXiv 1312.4012, arXiv 2103.05792) without
changing a byte of what any protocol party — or any adversary — sees:

* :class:`~repro.cluster.ring.HashRing` — deterministic consistent
  hashing of session ids onto shard labels, with virtual nodes so load
  spreads evenly and shard removal only re-maps the removed shard's
  segment.
* :class:`~repro.cluster.router.ShardRouter` — a frame-level TCP proxy
  that speaks the existing wire protocol on behalf of the mediator,
  pins every session to one shard (shared-nothing
  :class:`~repro.session.SessionRegistry` state stays shard-local), and
  fails new sessions over on BUSY — which is how shard drain rebalances
  the ring.
* :class:`~repro.cluster.harness.LocalCluster` /
  :class:`~repro.cluster.harness.ClusterTransport` — in-process
  router + N-shard fleets on loopback ports, for tests, benchmarks,
  and ``repro loadgen --cluster``.

See ``docs/cluster.md`` for the ring layout, the drain protocol, and
the failure semantics.
"""

from repro.cluster.harness import ClusterTransport, LocalCluster
from repro.cluster.ring import HashRing
from repro.cluster.router import RouterStats, ShardRouter, fetch_router_stats

__all__ = [
    "ClusterTransport",
    "HashRing",
    "LocalCluster",
    "RouterStats",
    "ShardRouter",
    "fetch_router_stats",
]
