"""Consistent hashing of session ids onto mediator shards.

The router pins every session to one shard for its whole lifetime
(shared-nothing :class:`~repro.session.SessionRegistry` state lives on
exactly one shard), so the placement function must be:

* **deterministic** — every router instance, restarted or replicated,
  maps the same session id to the same shard given the same shard set;
* **minimal under change** — removing a shard re-maps only the keys
  that shard owned; adding one steals only the segment it now owns
  (classic consistent hashing, Karger et al.);
* **balanced** — virtual nodes (``replicas`` points per shard on the
  ring) keep the largest segment within a small factor of the mean.

Hashing is SHA-256 over UTF-8 — stable across processes, platforms,
and Python versions (``hash()`` is salted per process and useless
here).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ProtocolError

#: Virtual nodes per shard.  64 keeps segment sizes within ~25% of the
#: mean for small fleets while ring construction stays trivial.
DEFAULT_REPLICAS = 64


def _point(key: str) -> int:
    """A stable 64-bit ring position for a key."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring of shard labels with virtual nodes."""

    def __init__(
        self, shards: list[str] | tuple[str, ...] = (),
        *, replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ProtocolError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []       # sorted ring positions
        self._owners: dict[int, str] = {}  # position -> shard label
        self._shards: set[str] = set()
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------

    def add(self, shard: str) -> None:
        """Add a shard's virtual nodes to the ring (idempotent)."""
        if not shard:
            raise ProtocolError("shard label must be non-empty")
        if shard in self._shards:
            return
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = _point(f"{shard}#{replica}")
            # A 64-bit collision between distinct labels is effectively
            # impossible; first writer keeps the point.
            if point not in self._owners:
                self._owners[point] = shard
                bisect.insort(self._points, point)

    def remove(self, shard: str) -> None:
        """Remove a shard's virtual nodes (idempotent)."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        doomed = [
            point for point, owner in self._owners.items() if owner == shard
        ]
        for point in doomed:
            del self._owners[point]
        doomed_set = set(doomed)
        self._points = [p for p in self._points if p not in doomed_set]

    @property
    def shards(self) -> list[str]:
        """Member shard labels, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    # -- placement ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key``: the first virtual node at or after
        the key's ring position, wrapping at the top."""
        owners = self.owners(key)
        if not owners:
            raise ProtocolError("cannot place a key on an empty ring")
        return owners[0]

    def owners(self, key: str) -> list[str]:
        """Every shard in *preference order* for ``key``.

        The first entry is the owner; the rest are the failover order a
        router walks when the owner refuses a new session (draining or
        at capacity).  Walking the ring clockwise and keeping the first
        occurrence of each shard makes the order deterministic and —
        crucially — makes failover placement agree across routers.
        """
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, _point(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            shard = self._owners[point]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self._shards):
                    break
        return seen
