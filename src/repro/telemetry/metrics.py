"""The metrics registry: counters, gauges, and histograms.

One registry absorbs the repo's three historical measurement paths
behind a single API:

* **primitive invocation counts** — :func:`repro.crypto.instrumentation.
  record` forwards every operation into
  :data:`PRIMITIVE_OPS_METRIC` next to the legacy
  :class:`~repro.crypto.instrumentation.PrimitiveCounter` stack, so the
  Table 2 totals are available as Prometheus counters with identical
  values,
* **per-link message traffic** — :class:`repro.transport.base.Transport`
  counts messages and bytes per ``(transport, sender, receiver, kind)``,
* **step latencies** — :func:`repro.core.timing.timed` observes each
  protocol step into a histogram and counts failures.

The model follows the Prometheus exposition format: a metric *family*
(name, kind, help) owns one instrument per label set.  Counters only go
up, gauges go anywhere, histograms record cumulative bucket counts plus
``sum``/``count``.  :func:`repro.telemetry.exporters.
prometheus_exposition` renders a registry; :meth:`MetricsRegistry.
snapshot` / :meth:`MetricsRegistry.merge` serialize and recombine
registries across the TCP process boundary (endpoint fetch) and the
crypto engine's pool workers.

Installation mirrors the tracer: :func:`set_registry` /
:func:`use_metrics` install one registry process-wide, and every
instrumented site degrades to a single global read when none is
installed.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.errors import TelemetryError

#: Family name the crypto instrumentation layer forwards into.
PRIMITIVE_OPS_METRIC = "repro_crypto_primitive_ops_total"

#: Latency buckets (seconds) sized for protocol steps: sub-millisecond
#: bookkeeping through multi-second big-integer batches.
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any] | None) -> LabelSet:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise TelemetryError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)  # cumulative at render
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        # values above the last bound land only in the implicit +Inf
        # bucket, which is rendered as `count`.

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf excluded."""
        running = 0
        out = []
        for bound, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return out

    def quantile(self, fraction: float) -> float:
        """Estimate the ``fraction``-quantile from the bucket counts.

        Prometheus-style linear interpolation inside the target bucket.
        Boundary semantics: ``fraction <= 0`` returns 0.0 (every
        observation exceeds nothing), ``fraction >= 1`` the upper bound
        of the highest occupied bucket; observations above the last
        bound (the implicit +Inf bucket) clamp to the last finite bound
        — the estimate cannot exceed what the layout can resolve.
        An empty histogram has no quantiles and returns 0.0.
        """
        if not 0.0 <= fraction <= 1.0:
            raise TelemetryError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        if self.count == 0 or fraction == 0.0:
            return 0.0
        rank = fraction * self.count
        previous_bound, previous_cumulative = 0.0, 0
        for bound, cumulative in self.cumulative():
            if rank <= cumulative:
                in_bucket = cumulative - previous_cumulative
                if in_bucket == 0:
                    return bound
                position = (rank - previous_cumulative) / in_bucket
                return previous_bound + position * (bound - previous_bound)
            previous_bound, previous_cumulative = bound, cumulative
        # rank falls in the +Inf bucket: clamp to the last finite bound.
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric family: shared name/kind/help, children per label set."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self, name: str, kind: str, help_text: str,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[LabelSet, Any] = {}

    def child(self, key: LabelSet) -> Any:
        instrument = self.children.get(key)
        if instrument is None:
            if self.kind == "histogram":
                instrument = Histogram(self.buckets or DEFAULT_SECONDS_BUCKETS)
            else:
                instrument = _KINDS[self.kind]()
            self.children[key] = instrument
        return instrument


class MetricsRegistry:
    """Registry of metric families; thread-safe, serializable."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.RLock()

    # -- instrument access ------------------------------------------------

    def _family(
        self, name: str, kind: str, help_text: str,
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        if not _METRIC_NAME.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(
        self, name: str, labels: Mapping[str, Any] | None = None,
        help_text: str = "",
    ) -> Counter:
        if not name.endswith("_total"):
            raise TelemetryError(
                f"counter {name!r} must end in '_total' (Prometheus convention)"
            )
        family = self._family(name, "counter", help_text)
        with self._lock:
            return family.child(_label_key(labels))

    def gauge(
        self, name: str, labels: Mapping[str, Any] | None = None,
        help_text: str = "",
    ) -> Gauge:
        family = self._family(name, "gauge", help_text)
        with self._lock:
            return family.child(_label_key(labels))

    def histogram(
        self, name: str, labels: Mapping[str, Any] | None = None,
        help_text: str = "", buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        family = self._family(name, "histogram", help_text, buckets)
        with self._lock:
            return family.child(_label_key(labels))

    # -- the instrumentation shim -----------------------------------------

    def record_primitive(self, operation: str, amount: int = 1) -> None:
        """Absorb one :func:`repro.crypto.instrumentation.record` call."""
        self.counter(
            PRIMITIVE_OPS_METRIC,
            {"operation": operation},
            help_text="Crypto primitive invocations by operation name",
        ).inc(amount)

    def primitive_counts(self) -> dict[str, int]:
        """Operation -> total, shaped like ``PrimitiveCounter.counts``."""
        with self._lock:
            family = self._families.get(PRIMITIVE_OPS_METRIC)
            if family is None:
                return {}
            return {
                dict(key)["operation"]: int(child.value)
                for key, child in family.children.items()
            }

    # -- queries ----------------------------------------------------------

    def value(self, name: str, labels: Mapping[str, Any] | None = None) -> float:
        """Current value of one counter/gauge child (0.0 when absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            child = family.children.get(_label_key(labels))
            if child is None:
                return 0.0
            if isinstance(child, Histogram):
                raise TelemetryError(f"{name!r} is a histogram; read its fields")
            return child.value

    def total(self, name: str) -> float:
        """Sum of a family's children (counter/gauge values)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            return sum(
                child.sum if isinstance(child, Histogram) else child.value
                for child in family.children.values()
            )

    def families(self) -> list[tuple[str, str, str, dict[LabelSet, Any]]]:
        """``(name, kind, help, children)`` rows, name-ordered."""
        with self._lock:
            return [
                (f.name, f.kind, f.help, dict(f.children))
                for f in sorted(self._families.values(), key=lambda f: f.name)
            ]

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able snapshot of every family and child."""
        out: dict[str, Any] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                children = []
                for key, child in family.children.items():
                    entry: dict[str, Any] = {"labels": dict(key)}
                    if isinstance(child, Histogram):
                        entry["buckets"] = list(child.buckets)
                        entry["bucket_counts"] = list(child.bucket_counts)
                        entry["sum"] = child.sum
                        entry["count"] = child.count
                    else:
                        entry["value"] = child.value
                    children.append(entry)
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "children": children,
                }
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges
        take the incoming value (last write wins)."""
        for name, data in snapshot.items():
            kind = data.get("kind")
            if kind not in _KINDS:
                raise TelemetryError(f"snapshot has unknown kind {kind!r}")
            for entry in data.get("children", ()):
                labels = entry.get("labels") or None
                if kind == "counter":
                    self.counter(name, labels, data.get("help", "")).inc(
                        float(entry["value"])
                    )
                elif kind == "gauge":
                    self.gauge(name, labels, data.get("help", "")).set(
                        float(entry["value"])
                    )
                else:
                    incoming_buckets = tuple(entry["buckets"])
                    histogram = self.histogram(
                        name, labels, data.get("help", ""),
                        buckets=incoming_buckets,
                    )
                    if histogram.buckets != incoming_buckets:
                        raise TelemetryError(
                            f"histogram {name!r} bucket layouts differ"
                        )
                    for index, count in enumerate(entry["bucket_counts"]):
                        histogram.bucket_counts[index] += int(count)
                    histogram.sum += float(entry["sum"])
                    histogram.count += int(entry["count"])


# ---------------------------------------------------------------------------
# Process-wide installation.
# ---------------------------------------------------------------------------

_installed_registry: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry | None:
    return _installed_registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` process-wide; returns the previous one."""
    global _installed_registry
    previous, _installed_registry = _installed_registry, registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (tests and benchmarks)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
