"""Exporters: Chrome trace-event JSON, Prometheus text, JSON snapshots.

Three standard output formats for the telemetry subsystem:

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Every span
  becomes one complete ("X") event; parties map to process rows so a
  distributed run renders as client/mediator/S1/S2 swimlanes.
* :func:`prometheus_exposition` — the text exposition format
  (version 0.0.4) scrapeable by Prometheus, served by
  :class:`repro.transport.server.PartyServer` and written by the CLI's
  ``--metrics-out``.
* :func:`registry_snapshot_json` — the JSON snapshot the benchmarks
  consume and the endpoints ship over the TELEMETRY control verb.

Each format has a matching ``validate_*`` checker returning a list of
problems (empty = valid); the CI telemetry job and the exporter tests
run these instead of depending on external tooling (promtool, a
browser) the container does not have.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Iterable

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.tracing import Span

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


# ---------------------------------------------------------------------------
# Chrome trace events.
# ---------------------------------------------------------------------------

def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Render spans as a Trace Event Format document.

    Parties become processes (``pid``) with ``process_name`` metadata,
    so Perfetto shows one labelled track per party.  Span identity and
    parent/child edges travel in ``args`` for programmatic consumers.
    """
    spans = list(spans)
    parties = sorted({span.party for span in spans})
    pid_of = {party: index + 1 for index, party in enumerate(parties)}
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid_of[party],
            "tid": 0,
            "args": {"name": party},
        }
        for party in parties
    ]
    for span in sorted(spans, key=lambda s: s.start):
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "pid": pid_of[span.party],
                "tid": 0,
                "ts": span.start * 1_000_000.0,
                "dur": max(span.seconds, 0.0) * 1_000_000.0,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "party": span.party,
                    "status": span.status,
                    **span.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=2, default=str)
        handle.write("\n")


def validate_chrome_trace(document: Any) -> list[str]:
    """Schema check for :func:`chrome_trace` output; [] when valid."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"{where}: unexpected phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0 or (
                    isinstance(value, float) and not math.isfinite(value)
                ):
                    problems.append(
                        f"{where}: {field} must be a non-negative number"
                    )
            args = event.get("args")
            if not isinstance(args, dict) or not args.get("trace_id"):
                problems.append(f"{where}: args.trace_id missing")
            elif not args.get("span_id"):
                problems.append(f"{where}: args.span_id missing")
    span_ids = {
        event["args"]["span_id"]
        for event in events
        if isinstance(event, dict) and event.get("ph") == "X"
        and isinstance(event.get("args"), dict) and event["args"].get("span_id")
    }
    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent_id")
        if parent is not None and parent not in span_ids:
            problems.append(
                f"traceEvents[{index}]: parent_id {parent!r} names no span"
            )
    return problems


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"' for name, value in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, children in registry.families():
        lines.append(f"# HELP {name} {help_text or name}")
        lines.append(f"# TYPE {name} {kind}")
        for key, child in sorted(children.items()):
            labels = list(key)
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    bucket_labels = labels + [("le", _format_value(bound))]
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = labels + [("le", "+Inf")]
                lines.append(
                    f"{name}_bucket{_render_labels(inf_labels)} {child.count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(f"{name}_count{_render_labels(labels)} {child.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_exposition(registry))


def validate_exposition(text: str) -> list[str]:
    """Lint a text exposition; returns problems ([] = valid).

    Checks the structural rules Prometheus enforces at scrape time:
    HELP/TYPE precede samples, metric and label names match the naming
    grammar, counter names end in ``_total``, sample values parse, and
    histogram bucket counts are monotonically non-decreasing with a
    terminal ``+Inf`` bucket equal to ``_count``.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {number}: malformed TYPE line")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP ") or line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if not match:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name, labels = match.group("name"), match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels[1:-1]):
                if not _LABEL_PAIR.match(pair):
                    problems.append(f"line {number}: bad label pair {pair!r}")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family_kind = typed.get(name) or typed.get(base)
        if family_kind is None:
            problems.append(f"line {number}: sample {name!r} has no TYPE line")
            continue
        if family_kind == "counter" and not name.endswith("_total"):
            problems.append(f"line {number}: counter {name!r} lacks _total")
        if family_kind == "histogram":
            series = f"{base}{labels or ''}"
            value = float(match.group("value").replace("Inf", "inf"))
            if name.endswith("_bucket"):
                bound_match = re.search(r'le="([^"]+)"', labels or "")
                if bound_match is None:
                    problems.append(f"line {number}: bucket without le label")
                    continue
                raw_bound = bound_match.group(1)
                bound = math.inf if raw_bound == "+Inf" else float(raw_bound)
                key = re.sub(r',?le="[^"]*"', "", series).replace("{}", "")
                buckets.setdefault(key, []).append((bound, value))
            elif name.endswith("_count"):
                counts[series] = value
    for series, pairs in buckets.items():
        pairs.sort(key=lambda p: p[0])
        cumulative = [count for _, count in pairs]
        if cumulative != sorted(cumulative):
            problems.append(f"{series}: bucket counts decrease")
        if pairs and pairs[-1][0] != math.inf:
            problems.append(f"{series}: missing +Inf bucket")
        elif series in counts and pairs[-1][1] != counts[series]:
            problems.append(f"{series}: +Inf bucket differs from _count")
    return problems


def _split_label_pairs(body: str) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes."""
    pairs, current, in_string, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\" and in_string:
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_string = not in_string
            current.append(char)
            continue
        if char == "," and not in_string:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


# ---------------------------------------------------------------------------
# JSON snapshots.
# ---------------------------------------------------------------------------

def registry_snapshot_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as pretty JSON (benchmark artifact format)."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


def write_metrics(path: str, registry: MetricsRegistry) -> None:
    """Write a registry to ``path``: ``.json`` gets the snapshot, any
    other extension the Prometheus text exposition."""
    if path.endswith(".json"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(registry_snapshot_json(registry) + "\n")
    else:
        write_prometheus(path, registry)
