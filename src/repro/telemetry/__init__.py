"""Unified telemetry: distributed tracing, metrics, exporters, logging.

This package supersedes the repo's three historical ad-hoc measurement
mechanisms with one coherent layer:

* :mod:`repro.telemetry.tracing` — ``contextvars``-based spans around
  every protocol step, message delivery, endpoint receipt, and crypto
  batch; trace context propagates through the TCP envelope and into
  crypto-engine pool workers, so a distributed run yields one trace.
* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of
  counters/gauges/histograms absorbing primitive invocation counts
  (the Table 2 data), per-link message bytes, and step latencies.
  :class:`repro.crypto.instrumentation.PrimitiveCounter`,
  :func:`repro.core.timing.timed`, and the transport transcript remain
  as compatibility surfaces feeding the same registry.
* :mod:`repro.telemetry.exporters` — Chrome trace-event JSON (open in
  Perfetto), Prometheus text exposition, and JSON snapshots.
* :mod:`repro.telemetry.logsetup` — structured per-party logging.

See ``docs/observability.md`` for the span model, the envelope
propagation format, and how to read a trace.
"""

from repro.telemetry.metrics import (
    PRIMITIVE_OPS_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_metrics,
)
from repro.telemetry.tracing import (
    Span,
    SpanContext,
    Tracer,
    current_context,
    current_span,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)
from repro.telemetry.exporters import (
    chrome_trace,
    prometheus_exposition,
    registry_snapshot_json,
    validate_chrome_trace,
    validate_exposition,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.logsetup import configure_logging, party_logger
from repro.telemetry.observables import (
    ObservableTrace,
    ObservedMessage,
    adversary_traces,
    network_trace_from_records,
    observables_artifact,
    size_bucket,
)
from repro.telemetry.scrape import MetricsScrapeServer

__all__ = [
    "PRIMITIVE_OPS_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScrapeServer",
    "ObservableTrace",
    "ObservedMessage",
    "adversary_traces",
    "network_trace_from_records",
    "observables_artifact",
    "size_bucket",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "current_context",
    "current_span",
    "get_registry",
    "get_tracer",
    "party_logger",
    "prometheus_exposition",
    "registry_snapshot_json",
    "set_registry",
    "set_tracer",
    "span",
    "use_metrics",
    "use_tracer",
    "validate_chrome_trace",
    "validate_exposition",
    "write_chrome_trace",
    "write_metrics",
]
