"""Adversary's-eye observable traces distilled from run telemetry.

The transcript, views, metrics, and timings the telemetry stack records
are *our* instrumentation; what matters for leakage is the slice of it
each **adversary** can see.  Following the semi-honest model of the
paper (and the observable-distribution attacks of "Oblivious Query
Processing", arXiv 1312.4012), three adversary classes are modelled:

* ``network`` — a passive wire observer: sees every message's link
  (sender -> receiver), kind framing, and size, but no plaintext.
* ``mediator`` — honest-but-curious mediator: its own
  :class:`~repro.transport.base.PartyView` plus whatever structure the
  received ciphertext carries (row counts, DAS partition indexes).
* ``datasource:<name>`` — a curious datasource: its own view only.

:func:`adversary_traces` distills a
:class:`~repro.core.result.MediationResult` into one
:class:`ObservableTrace` per adversary.  The capture path is the shared
:class:`~repro.transport.base.Transport` transcript, so traces are
built identically for the in-process bus and the TCP transport; a
stitched multi-process run additionally yields the network observer's
trace from endpoint records via :func:`network_trace_from_records`.

Exact byte counts jitter run-to-run (big-integer ciphertexts have
minimal encodings, and the crypto layer draws from ``secrets``), so all
size observations are quantized to power-of-two buckets
(:func:`size_bucket`) — coarse enough to be deterministic for a seeded
workload, fine enough that a size-channel regression moves a message
across buckets.  Wall-clock latencies are inherently nondeterministic;
they are captured (bucketed per protocol step) but kept out of the
deterministic artifact unless explicitly requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import ProtocolError
from repro.telemetry.metrics import DEFAULT_SECONDS_BUCKETS

#: Floor of the power-of-two size quantizer: everything at or below this
#: many bytes is one bucket (envelope-only messages are indistinguishable).
MIN_SIZE_BUCKET = 64


def size_bucket(size_bytes: int) -> int:
    """Quantize a byte count to the smallest power of two that covers it.

    The bucket *is* its upper bound (64, 128, 256, ...), so bucket labels
    order naturally and survive JSON round-trips.
    """
    bucket = MIN_SIZE_BUCKET
    while bucket < size_bytes:
        bucket *= 2
    return bucket


def latency_bucket(seconds: float) -> str:
    """Quantize a step latency to the registry's histogram bucket label."""
    for bound in DEFAULT_SECONDS_BUCKETS:
        if seconds <= bound:
            return f"le_{bound:g}"
    return "le_inf"


def observable_items(body: Any) -> int | None:
    """The body cardinality an adversary can count without decrypting.

    Tuple-wise encryption keeps collection *structure* observable even
    though values are ciphertext: a relation of n encrypted rows is
    visibly n items.  Opaque blobs (bytes, strings) and scalars return
    None — their internals are not countable.  Envelope dicts (``{"relation":
    ...}``) report the largest collection they carry, falling back to
    their own key count.
    """
    if body is None or isinstance(body, (bytes, bytearray, str)):
        return None
    if isinstance(body, Mapping):
        inner = [observable_items(value) for value in body.values()]
        inner = [count for count in inner if count is not None]
        return max(inner, default=len(body))
    if isinstance(body, (list, tuple, set, frozenset)):
        return len(body)
    try:
        return len(body)
    except TypeError:
        return None


@dataclass(frozen=True)
class ObservedMessage:
    """One message as one adversary perceives it.

    ``direction`` is ``"sent"``/``"received"`` for a party adversary and
    ``"wire"`` for the network observer; ``items`` is None when the body
    cardinality is not observable to this adversary.
    """

    position: int
    link: str
    kind: str
    direction: str
    size_bucket: int
    items: int | None = None

    def event(self) -> str:
        """The (link, kind, size bucket) triple as one sequence token."""
        return f"{self.link}|{self.kind}|{self.size_bucket}"


@dataclass
class ObservableTrace:
    """Everything one adversary observes during a protocol run."""

    adversary: str
    protocol: str
    transport: str
    messages: list[ObservedMessage] = field(default_factory=list)
    #: step name -> latency bucket label -> count (the adversary's own
    #: steps; empty for the network observer).
    latency_buckets: dict[str, dict[str, int]] = field(default_factory=dict)
    #: DAS partition index -> row count, as received (mediator only).
    bucket_frequencies: dict[str, int] = field(default_factory=dict)
    #: message kind -> observed body cardinalities, in arrival order.
    result_sizes: dict[str, list[int]] = field(default_factory=dict)

    # -- distributions -----------------------------------------------------

    def kind_counts(self) -> dict[str, int]:
        """Messages per ``link|kind`` (the interaction-pattern histogram)."""
        counts: dict[str, int] = {}
        for message in self.messages:
            key = f"{message.link}|{message.kind}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def size_histogram(self) -> dict[str, int]:
        """Messages per ``link|kind|size_bucket`` (the size-channel view)."""
        counts: dict[str, int] = {}
        for message in self.messages:
            counts[message.event()] = counts.get(message.event(), 0) + 1
        return counts

    def event_sequence(self) -> list[str]:
        """Ordered ``link|kind|size_bucket`` tokens (the traffic shape)."""
        return [message.event() for message in self.messages]

    def cardinality_totals(self) -> dict[str, int]:
        """Message kind -> total observable body items."""
        return {
            kind: sum(sizes) for kind, sizes in sorted(self.result_sizes.items())
        }

    def bucket_frequency_shape(self) -> list[int]:
        """The DAS partition histogram's shape: counts, largest first.

        Partition index values are salted per run, so the labels are
        incomparable across runs; the multiset of counts — what the
        paper's partition-inference attacks exploit — is deterministic
        for a seeded workload and is what the audit compares.
        """
        return sorted(self.bucket_frequencies.values(), reverse=True)

    def summary(self) -> dict[str, Any]:
        """Compact JSON-able digest (stored in artifacts and audit docs).

        DAS partition labels are keyed hashes and differ across client
        keys, so the digest reports the frequency histogram's *shape*
        (sorted counts) — the part an adversary learns and the part that
        is deterministic for a seeded workload.
        """
        return {
            "messages": len(self.messages),
            "kinds": dict(sorted(self.kind_counts().items())),
            "size_histogram": dict(sorted(self.size_histogram().items())),
            "cardinalities": self.cardinality_totals(),
            "bucket_frequency_shape": self.bucket_frequency_shape(),
        }

    def to_dict(self, include_timing: bool = False) -> dict[str, Any]:
        """Full JSON-able form; timing only on request (nondeterministic)."""
        document: dict[str, Any] = {
            "adversary": self.adversary,
            "protocol": self.protocol,
            "transport": self.transport,
            "messages": [
                {
                    "position": m.position,
                    "link": m.link,
                    "kind": m.kind,
                    "direction": m.direction,
                    "size_bucket": m.size_bucket,
                    "items": m.items,
                }
                for m in self.messages
            ],
            "bucket_frequencies": dict(sorted(self.bucket_frequencies.items())),
            "result_sizes": {
                kind: list(sizes)
                for kind, sizes in sorted(self.result_sizes.items())
            },
        }
        if include_timing:
            document["latency_buckets"] = {
                step: dict(sorted(buckets.items()))
                for step, buckets in sorted(self.latency_buckets.items())
            }
        return document


# ---------------------------------------------------------------------------
# Role detection.
# ---------------------------------------------------------------------------

#: Message kinds only a datasource sends to the mediator.
_SOURCE_TO_MEDIATOR_KINDS = {
    "das_encrypted_partial_result",
    "commutative_m_set",
    "pm_encrypted_coefficients",
}


def detect_roles(transport: Any) -> dict[str, Any]:
    """Classify registered parties from the transcript alone.

    Returns ``{"client": name, "mediator": name, "sources": [names]}``.
    The client is the party that *sends* the global query; the mediator
    both receives it and receives source ciphertext material; everyone
    else is a datasource.
    """
    client = mediator = None
    for party in transport.parties():
        view = transport.view(party)
        if any(m.kind == "global_query" for m in view.sent):
            client = party
        received_kinds = {m.kind for m in view.received}
        if received_kinds & _SOURCE_TO_MEDIATOR_KINDS and (
            "global_query" in received_kinds
        ):
            mediator = party
    if client is None or mediator is None:
        raise ProtocolError(
            "could not classify parties from the transcript "
            f"(client={client!r}, mediator={mediator!r})"
        )
    sources = [
        party for party in transport.parties()
        if party not in (client, mediator)
    ]
    return {"client": client, "mediator": mediator, "sources": sources}


# ---------------------------------------------------------------------------
# Trace builders.
# ---------------------------------------------------------------------------

def _observed(message: Any, position: int, direction: str,
              with_items: bool,
              aliases: Mapping[str, str] | None = None) -> ObservedMessage:
    aliases = aliases or {}
    sender = aliases.get(message.sender, message.sender)
    receiver = aliases.get(message.receiver, message.receiver)
    return ObservedMessage(
        position=position,
        link=f"{sender}->{receiver}",
        kind=message.kind,
        direction=direction,
        size_bucket=size_bucket(message.size_bytes),
        items=observable_items(message.body) if with_items else None,
    )


def _record_body(trace: ObservableTrace, message: Any) -> None:
    """Fold one received message's observable structure into the trace."""
    items = observable_items(message.body)
    if items is not None:
        trace.result_sizes.setdefault(message.kind, []).append(items)
    if message.kind != "das_encrypted_partial_result":
        return
    relation = message.body.get("relation") if isinstance(
        message.body, Mapping
    ) else None
    rows = getattr(relation, "rows", None)
    if rows is None:
        return
    for row in rows:
        index = getattr(row, "index_value", None)
        if index is not None:
            key = str(index)
            trace.bucket_frequencies[key] = (
                trace.bucket_frequencies.get(key, 0) + 1
            )


def _party_latencies(timings: Iterable[Any], party: str) -> dict[str, dict[str, int]]:
    buckets: dict[str, dict[str, int]] = {}
    for timing in timings:
        if timing.party != party:
            continue
        label = latency_bucket(timing.seconds)
        step = buckets.setdefault(timing.step, {})
        step[label] = step.get(label, 0) + 1
    return buckets


def network_observer_trace(
    transport: Any, protocol: str,
    aliases: Mapping[str, str] | None = None,
) -> ObservableTrace:
    """The passive wire observer: every message's framing, no bodies."""
    trace = ObservableTrace(
        adversary="network",
        protocol=protocol,
        transport=type(transport).__name__,
    )
    for position, message in enumerate(transport.transcript):
        trace.messages.append(
            _observed(message, position, "wire", False, aliases)
        )
    return trace


def party_trace(
    transport: Any, party: str, adversary: str, protocol: str,
    timings: Iterable[Any] = (),
    aliases: Mapping[str, str] | None = None,
) -> ObservableTrace:
    """A semi-honest party's trace: its own view plus ciphertext structure."""
    trace = ObservableTrace(
        adversary=adversary,
        protocol=protocol,
        transport=type(transport).__name__,
    )
    view = transport.view(party)
    for position, message in enumerate(view.observed_messages()):
        direction = "sent" if message.sender == party else "received"
        trace.messages.append(
            _observed(message, position, direction, True, aliases)
        )
        # Both directions carry knowledge: a party knows what it sends
        # (the mediator computed |R_C| itself — a Table 1 cell) as well
        # as the structure of the ciphertext it receives.
        _record_body(trace, message)
    trace.latency_buckets = _party_latencies(timings, party)
    return trace


def adversary_traces(result: Any, *, roles: Mapping[str, Any] | None = None,
                     ) -> dict[str, ObservableTrace]:
    """One :class:`ObservableTrace` per adversary, from a finished run.

    ``result`` is a :class:`~repro.core.result.MediationResult`; the
    adversary set is the network observer, the mediator, and every
    datasource.  Identical for bus and TCP runs — both record the full
    transcript in the driving process.
    """
    protocol = result.protocol.split("[", 1)[0]
    transport = result.network
    timings = getattr(result, "timings", ())
    resolved = dict(roles) if roles is not None else detect_roles(transport)
    # Deployment-chosen party names are presentation, not observable
    # structure: canonicalize the client and mediator so traces (and the
    # committed leakage baseline) compare across differently-named
    # clients.  Datasource names are kept — which source a message came
    # from *is* part of the traffic shape.
    aliases = {resolved["client"]: "client", resolved["mediator"]: "mediator"}
    traces = {
        "network": network_observer_trace(transport, protocol, aliases),
        "mediator": party_trace(
            transport, resolved["mediator"], "mediator", protocol, timings,
            aliases,
        ),
    }
    for source in resolved["sources"]:
        traces[f"datasource:{source}"] = party_trace(
            transport, source, f"datasource:{source}", protocol, timings,
            aliases,
        )
    return traces


def network_trace_from_records(
    records: Iterable[Any], protocol: str, transport: str = "TcpTransport",
) -> ObservableTrace:
    """The wire observer's trace rebuilt from endpoint ``RemoteRecord``s.

    A stitched multi-process run has no single transcript object; the
    endpoints' receive records (``sequence``/``sender``/``receiver``/
    ``kind``/``wire_bytes``) carry the same framing the network observer
    sees, so the trace shape matches :func:`network_observer_trace` —
    kinds, links, and counts are identical, sizes land in the same
    power-of-two buckets as actual wire bytes.
    """
    trace = ObservableTrace(
        adversary="network", protocol=protocol, transport=transport
    )
    ordered = sorted(records, key=lambda record: record.sequence)
    for position, record in enumerate(ordered):
        trace.messages.append(
            ObservedMessage(
                position=position,
                link=f"{record.sender}->{record.receiver}",
                kind=record.kind,
                direction="wire",
                size_bucket=size_bucket(record.wire_bytes),
                items=None,
            )
        )
    return trace


def observables_artifact(result: Any) -> dict[str, Any]:
    """Per-adversary summaries for ``result.artifacts["observables"]``."""
    try:
        traces = adversary_traces(result)
    except ProtocolError:
        # A transcript without a recognizable mediator (partial run,
        # exotic topology) simply yields no observable summary.
        return {}
    return {name: trace.summary() for name, trace in sorted(traces.items())}
