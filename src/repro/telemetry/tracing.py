"""Span-based distributed tracing for the mediation protocols.

A protocol run is a tree of **spans**: the root covers the whole query,
protocol steps (``timed``), message deliveries (``send:<kind>``),
endpoint receipts (``recv:<kind>``), and crypto-engine batches
(``crypto:<unit>``) nest below it.  Every span carries the party it ran
at, so one trace reconstructs the paper's Figure 1/2 interaction
diagram with real timings attached.

Three pieces:

* :class:`Span` / :class:`SpanContext` — the recorded unit and its
  propagatable identity ``(trace_id, span_id)``,
* :class:`Tracer` — a collector; :meth:`Tracer.span` opens a child of
  the current span (a :mod:`contextvars` variable, so nesting follows
  the call stack even across the engine's batch helpers),
* module-level installation — :func:`set_tracer` / :func:`use_tracer`
  install one tracer process-wide; :func:`span` is the no-op-when-idle
  entry point the instrumented code calls.  With no tracer installed a
  span costs one global read, mirroring the opt-in design of
  :mod:`repro.crypto.instrumentation`.

Cross-process stitching: the TCP envelope carries the sending span's
``(trace_id, span_id)`` (see :mod:`repro.transport.codec`), receiving
endpoints record ``recv:`` spans under that parent, and the crypto
engine ships the batch span's context into its pool workers — so one
``repro query --transport tcp`` against three ``serve`` processes
yields a single stitched trace.

Span and trace IDs are drawn from :func:`os.urandom` directly so
telemetry never perturbs the :mod:`random` module state the protocols'
shuffles rely on.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import TelemetryError
from repro.session import current_session_id

#: W3C-trace-context-sized identifiers (hex strings).
TRACE_ID_BYTES = 16
SPAN_ID_BYTES = 8


def new_trace_id() -> str:
    return os.urandom(TRACE_ID_BYTES).hex()


def new_span_id() -> str:
    return os.urandom(SPAN_ID_BYTES).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of one span."""

    trace_id: str
    span_id: str

    def to_wire(self) -> tuple[str, str]:
        """Compact form carried in the TCP message envelope."""
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(raw: Any) -> "SpanContext | None":
        """Inverse of :meth:`to_wire`; tolerates absent/malformed input."""
        if (
            isinstance(raw, (tuple, list))
            and len(raw) == 2
            and all(isinstance(part, str) and part for part in raw)
        ):
            return SpanContext(trace_id=raw[0], span_id=raw[1])
        return None


@dataclass
class Span:
    """One traced unit of work at one party."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    party: str
    #: Wall-clock start (epoch seconds) — comparable across processes.
    start: float
    #: Monotonic duration in seconds; 0.0 while the span is open.
    seconds: float = 0.0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)
    _perf_start: float | None = field(
        default=None, repr=False, compare=False
    )

    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def end(self) -> float:
        return self.start + self.seconds

    def to_dict(self) -> dict[str, Any]:
        """Wire/JSON form (used by endpoint fetch and worker replay)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "party": self.party,
            "start": self.start,
            "seconds": self.seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Span":
        try:
            return Span(
                trace_id=data["trace_id"],
                span_id=data["span_id"],
                parent_id=data.get("parent_id"),
                name=data["name"],
                party=data["party"],
                start=float(data["start"]),
                seconds=float(data.get("seconds", 0.0)),
                status=data.get("status", "ok"),
                attributes=dict(data.get("attributes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed span record: {exc}") from exc


#: The innermost open span of the current logical context.
_current_span: ContextVar[Span | None] = ContextVar(
    "repro_current_span", default=None
)


class Tracer:
    """Collects the spans of one trace (or, on endpoints, of many).

    The tracer owns a default ``trace_id`` for root spans; spans opened
    under an explicit or ambient parent inherit the parent's trace ID
    instead, which is how endpoint collectors record spans belonging to
    a remote caller's trace.
    """

    def __init__(self, trace_id: str | None = None, service: str = "repro"):
        self.trace_id = trace_id or new_trace_id()
        self.service = service
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    # -- span lifecycle ---------------------------------------------------

    def start_span(
        self,
        name: str,
        party: str,
        parent: SpanContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span; ``parent`` defaults to the current span."""
        if parent is None:
            ambient = _current_span.get()
            parent = ambient.context() if ambient is not None else None
        span = Span(
            trace_id=parent.trace_id if parent else self.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id if parent else None,
            name=name,
            party=party,
            start=time.time(),
            attributes=dict(attributes or {}),
            _perf_start=time.perf_counter(),
        )
        with self._lock:
            self.spans.append(span)
        return span

    def end_span(self, span: Span, status: str | None = None) -> None:
        if span._perf_start is not None:
            span.seconds = time.perf_counter() - span._perf_start
            span._perf_start = None
        if status is not None:
            span.status = status

    @contextmanager
    def span(
        self,
        name: str,
        party: str,
        parent: SpanContext | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Open a span, make it current, close it on exit.

        An escaping exception marks the span ``status="error"`` before
        re-raising — failures stay visible in the trace.
        """
        span = self.start_span(name, party, parent=parent, attributes=attributes)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            _current_span.reset(token)
            self.end_span(span)

    # -- collection -------------------------------------------------------

    def adopt(self, spans: Iterable[Span]) -> None:
        """Absorb spans recorded elsewhere (endpoints, pool workers)."""
        with self._lock:
            self.spans.extend(spans)

    def parties(self) -> set[str]:
        with self._lock:
            return {span.party for span in self.spans}

    def trace_ids(self) -> set[str]:
        with self._lock:
            return {span.trace_id for span in self.spans}

    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: str) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.parent_id == span_id]


# ---------------------------------------------------------------------------
# Process-wide installation (mirrors repro.crypto.engine.set_engine).
# ---------------------------------------------------------------------------

_installed_tracer: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _installed_tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _installed_tracer
    previous, _installed_tracer = _installed_tracer, tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` (tests and benchmarks)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def current_span() -> Span | None:
    return _current_span.get()


def current_context() -> SpanContext | None:
    span = _current_span.get()
    return span.context() if span is not None else None


@contextmanager
def span(name: str, party: str, **attributes: Any) -> Iterator[Span | None]:
    """Open a span on the installed tracer; a no-op when none is set.

    When a :func:`repro.session.session_scope` is active, the span is
    automatically tagged with its ``session`` id — this is what lets a
    multi-session trace be filtered back into per-session timelines.
    """
    tracer = _installed_tracer
    if tracer is None:
        yield None
        return
    if "session" not in attributes:
        session_id = current_session_id()
        if session_id is not None:
            attributes["session"] = session_id
    with tracer.span(name, party, attributes=attributes) as opened:
        yield opened
