"""A minimal asyncio HTTP endpoint serving Prometheus text exposition.

``repro serve --metrics-port N`` attaches one of these next to the
party's TCP endpoint so a long-running process can be scraped live
(``GET /metrics``) instead of relying on ``--metrics-out`` file
snapshots.  The exposition body is produced on every request by the
``render`` callable — typically
``lambda: prometheus_exposition(server.registry)`` — so the scrape
always reflects the registry's current state.

Deliberately tiny: GET-only, one response per connection, no TLS, no
keep-alive.  That is all a Prometheus scraper needs and all a
reproduction repo should carry.
"""

from __future__ import annotations

import asyncio
from typing import Callable

#: Content type of the Prometheus text exposition format.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Paths answered with the exposition (anything else is 404).
_METRIC_PATHS = ("/metrics", "/")


class MetricsScrapeServer:
    """Serve ``render()`` as a Prometheus scrape target."""

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and return ``(host, port)`` (port resolved when 0)."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self._host, self._port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def port(self) -> int:
        return self._port

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers; a scraper sends few and we need none.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            writer.write(self._respond(request_line))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # a vanished scraper is not an error
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _respond(self, request_line: bytes) -> bytes:
        parts = request_line.split()
        if len(parts) < 2 or parts[0] != b"GET":
            return _response(405, "text/plain", "method not allowed\n")
        path = parts[1].split(b"?", 1)[0].decode("latin-1", "replace")
        if path not in _METRIC_PATHS:
            return _response(404, "text/plain", "not found\n")
        try:
            body = self._render()
        except Exception as exc:  # a broken renderer must not kill the loop
            return _response(500, "text/plain", f"render error: {exc}\n")
        return _response(200, EXPOSITION_CONTENT_TYPE, body)


_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error"}


def _response(status: int, content_type: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload
