"""Structured per-party logging for the CLI and the serve endpoints.

``repro serve`` historically wrote bare ``print`` lines; this module
routes everything through :mod:`logging` with one configuration point
(:func:`configure_logging`, wired to the CLI ``--log-level`` flag) and
per-party named loggers (:func:`party_logger`), so multi-process demos
produce timestamped, party-attributed, filterable output.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

from repro.errors import TelemetryError

#: The root of the library's logger namespace.
ROOT_LOGGER = "repro"

LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def parse_level(level: str) -> int:
    """``--log-level`` string -> :mod:`logging` level constant."""
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise TelemetryError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def configure_logging(level: str = "info", stream: TextIO | None = None) -> None:
    """Install (or retune) the library's stream handler.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers, so tests and long-lived processes can reconfigure freely.
    Only the ``repro`` logger namespace is touched — applications
    embedding the library keep control of their own root logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(parse_level(level))
    for handler in logger.handlers:
        if getattr(handler, "_repro_handler", False):
            handler.setStream(stream or sys.stderr)
            return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    handler._repro_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False


def party_logger(party: str) -> logging.Logger:
    """The logger one party's endpoint and protocol code log through."""
    return logging.getLogger(f"{ROOT_LOGGER}.party.{party}")
