"""Listing and figure conformance: checking transcripts against the paper.

* :func:`expected_flow` gives, per protocol, the message-kind sequence
  the paper's listings prescribe (Listing 1 request phase + Listing 2/3/4
  delivery phase).
* :func:`check_flow` compares an actual transcript against it.
* :func:`architecture_edges` extracts the communication topology, which
  must match Figures 1/2: client <-> mediator <-> sources, and *no*
  client <-> source or source <-> source edge (everything passes through
  the mediator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.views import client_party, mediator_party, source_parties
from repro.core.result import MediationResult
from repro.errors import ProtocolError

#: (kind, sender role, receiver role) per protocol step; roles are
#: "client", "mediator", "source" (any source), "source1"/"source2"
#: (dispatch order).  A kind may repeat (one message per source).
REQUEST_FLOW = [
    ("global_query", "client", "mediator"),
    ("partial_query", "mediator", "source"),
    ("partial_query", "mediator", "source"),
]

DELIVERY_FLOWS: dict[str, list[tuple[str, str, str]]] = {
    "das": [
        ("das_encrypted_partial_result", "source", "mediator"),
        ("das_encrypted_partial_result", "source", "mediator"),
        ("das_encrypted_index_tables", "mediator", "client"),
        ("das_server_query", "client", "mediator"),
        ("das_server_result", "mediator", "client"),
    ],
    "commutative": [
        ("commutative_setup", "mediator", "source"),
        ("commutative_setup", "mediator", "source"),
        ("commutative_m_set", "source", "mediator"),
        ("commutative_m_set", "source", "mediator"),
        ("commutative_exchange", "mediator", "source"),
        ("commutative_exchange", "mediator", "source"),
        ("commutative_double", "source", "mediator"),
        ("commutative_double", "source", "mediator"),
        ("commutative_result", "mediator", "client"),
    ],
    "private-matching": [
        ("pm_homomorphic_key", "client", "mediator"),
        ("pm_homomorphic_key", "mediator", "source"),
        ("pm_homomorphic_key", "mediator", "source"),
        ("pm_encrypted_coefficients", "source", "mediator"),
        ("pm_encrypted_coefficients", "source", "mediator"),
        ("pm_encrypted_coefficients", "mediator", "source"),
        ("pm_encrypted_coefficients", "mediator", "source"),
        ("pm_evaluations", "source", "mediator"),
        ("pm_evaluations", "source", "mediator"),
        ("pm_evaluations", "mediator", "client"),
    ],
}

#: Kinds that only appear in certain configurations and may interleave.
OPTIONAL_KINDS = {"pm_side_table", "pm_side_tables"}


@dataclass
class FlowCheck:
    """Outcome of a conformance check."""

    protocol: str
    conforms: bool
    mismatches: list[str]
    actual_flow: list[str]


#: The insecure mediator-setting DAS baseline skips steps 4-5.
DAS_MEDIATOR_SETTING_FLOW = [
    ("das_encrypted_partial_result", "source", "mediator"),
    ("das_encrypted_partial_result", "source", "mediator"),
    ("das_server_result", "mediator", "client"),
]

#: Source setting: the translating source receives the opposite table
#: and returns the server query itself.
DAS_SOURCE_SETTING_FLOW = [
    ("das_encrypted_partial_result", "source", "mediator"),
    ("das_encrypted_partial_result", "source", "mediator"),
    ("das_index_table_for_translator", "mediator", "source"),
    ("das_server_query", "source", "mediator"),
    ("das_server_result", "mediator", "client"),
]


def expected_flow(protocol: str) -> list[tuple[str, str, str]]:
    if protocol == "das[mediator]":
        return REQUEST_FLOW + DAS_MEDIATOR_SETTING_FLOW
    if protocol == "das[source]":
        return REQUEST_FLOW + DAS_SOURCE_SETTING_FLOW
    base = protocol.split("[", 1)[0]
    if base not in DELIVERY_FLOWS:
        raise ProtocolError(f"no expected flow for protocol {protocol!r}")
    return REQUEST_FLOW + DELIVERY_FLOWS[base]


def _role_of(party: str, client: str, mediator: str, sources: tuple[str, ...]) -> str:
    if party == client:
        return "client"
    if party == mediator:
        return "mediator"
    if party in sources:
        return "source"
    return "unknown"


def check_flow(result: MediationResult) -> FlowCheck:
    """Compare a run's transcript against the paper's prescribed flow."""
    network = result.network
    client = client_party(network)
    mediator = mediator_party(network)
    sources = source_parties(network)
    expected = expected_flow(result.protocol)
    actual = [
        (
            message.kind,
            _role_of(message.sender, client, mediator, sources),
            _role_of(message.receiver, client, mediator, sources),
        )
        for message in network.transcript
        if message.kind not in OPTIONAL_KINDS
    ]
    mismatches = []
    for index, (have, want) in enumerate(zip(actual, expected)):
        if have != want:
            mismatches.append(f"step {index}: expected {want}, saw {have}")
    if len(actual) != len(expected):
        mismatches.append(
            f"flow length: expected {len(expected)} steps, saw {len(actual)}"
        )
    return FlowCheck(
        protocol=result.protocol,
        conforms=not mismatches,
        mismatches=mismatches,
        actual_flow=[" -> ".join(step) for step in actual],
    )


def architecture_edges(result: MediationResult) -> dict[str, bool]:
    """Check the Figure 1/2 star topology around the mediator.

    Returns named boolean facts; all must hold for conformance:
    the client and every source talk to the mediator, and no message
    bypasses it.
    """
    network = result.network
    client = client_party(network)
    mediator = mediator_party(network)
    sources = source_parties(network)
    edges = network.edges()
    facts = {
        "client<->mediator": tuple(sorted((client, mediator))) in edges,
        "no client<->source": not any(
            tuple(sorted((client, source))) in edges for source in sources
        ),
        "no source<->source": not any(
            tuple(sorted((a, b))) in edges
            for a in sources
            for b in sources
            if a < b
        ),
    }
    for source in sources:
        facts[f"{source}<->mediator"] = tuple(sorted((source, mediator))) in edges
    return facts
