"""Exporting protocol runs for external auditing.

Serializes a :class:`~repro.core.result.MediationResult` — transcript
metadata, leakage report, primitive profile, timings — into a single
JSON-compatible dictionary.  Ciphertext payloads are exported as sizes
and fingerprints only: the export exists to *audit* a run, not to leak
it a second time.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.analysis.leakage import analyze
from repro.analysis.primitives import primitive_profile
from repro.core.result import MediationResult


def _body_fingerprint(body: Any) -> str:
    from repro.analysis.views import iter_byte_material

    digest = hashlib.sha256()
    for fragment in iter_byte_material(body):
        digest.update(len(fragment).to_bytes(4, "big"))
        digest.update(fragment)
    return digest.hexdigest()[:16]


def export_run(result: MediationResult) -> dict[str, Any]:
    """A JSON-compatible audit record of one protocol run."""
    leakage = analyze(result)
    profile = primitive_profile(result)
    return {
        "protocol": result.protocol,
        "query": result.query,
        "result_rows": len(result.global_result),
        "result_schema": list(result.global_result.schema.names()),
        "transcript": [
            {
                "sequence": message.sequence,
                "sender": message.sender,
                "receiver": message.receiver,
                "kind": message.kind,
                "size_bytes": message.size_bytes,
                "body_fingerprint": _body_fingerprint(message.body),
            }
            for message in result.network.transcript
        ],
        "totals": {
            "bytes": result.total_bytes(),
            "messages": len(result.network.transcript),
            "seconds": result.total_seconds(),
        },
        "timings": [
            {"party": t.party, "step": t.step, "seconds": t.seconds}
            for t in result.timings
        ],
        "leakage": {
            "mediator_learns": dict(leakage.mediator_learns),
            "client_learns": dict(leakage.client_learns),
            "notes": list(leakage.notes),
        },
        "primitives": {
            "categories": dict(profile.categories),
            "operations": dict(profile.operations),
        },
    }


def export_run_json(result: MediationResult, indent: int = 2) -> str:
    """The audit record as a JSON string."""
    return json.dumps(export_run(result), indent=indent, sort_keys=True)
