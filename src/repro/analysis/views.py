"""Flattening message bodies into the byte material a party observed.

Semi-honest leakage analysis asks: *given everything a party saw, what
can it compute?*  The first step is mechanising "everything it saw" —
this module walks arbitrary message bodies (dataclasses, containers,
ciphertexts, integers) and collects every byte string and integer that
crossed the wire, so scanners can search a party's view for plaintext
material that should never be there.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator

from repro.mediation.network import Message, PartyView


def iter_byte_material(body: Any) -> Iterator[bytes]:
    """Yield every byte string reachable inside a message body.

    Integers are included via their big-endian encodings (ciphertext
    integers, tags, index values); container structure is flattened.
    """
    if body is None or isinstance(body, bool):
        return
    if isinstance(body, (bytes, bytearray)):
        yield bytes(body)
        return
    if isinstance(body, str):
        yield body.encode("utf-8")
        return
    if isinstance(body, int):
        yield body.to_bytes(max(1, (body.bit_length() + 7) // 8), "big")
        return
    if isinstance(body, dict):
        for key, value in body.items():
            yield from iter_byte_material(key)
            yield from iter_byte_material(value)
        return
    if isinstance(body, (list, tuple, set, frozenset)):
        for item in body:
            yield from iter_byte_material(item)
        return
    if dataclasses.is_dataclass(body) and not isinstance(body, type):
        for field in dataclasses.fields(body):
            yield from iter_byte_material(getattr(body, field.name))
        return
    if hasattr(body, "to_bytes") and callable(body.to_bytes):
        try:
            yield body.to_bytes()
            return
        except TypeError:
            pass
    # Objects with no byte representation contribute their repr (covers
    # e.g. Relation or Schema objects, whose reprs name attributes).
    yield repr(body).encode("utf-8")


def view_material(view: PartyView, received_only: bool = True) -> bytes:
    """All byte material in a party's view, concatenated with separators.

    By default only *received* messages count — what a party sent it
    already knew.  Separators prevent false matches across fragment
    boundaries.
    """
    messages: list[Message] = (
        view.received if received_only else view.observed_messages()
    )
    fragments: list[bytes] = []
    for message in messages:
        for fragment in iter_byte_material(message.body):
            fragments.append(fragment)
    return b"\x00\xff\x00".join(fragments)


def contains_material(view: PartyView, needle: bytes, min_length: int = 4) -> bool:
    """Does the party's received material contain ``needle``?

    ``min_length`` guards against trivially short needles (1-2 byte
    integers occur in random ciphertext bytes by chance).
    """
    if len(needle) < min_length:
        raise ValueError(
            f"needle of {len(needle)} bytes is too short for a meaningful scan"
        )
    return needle in view_material(view)


# ---------------------------------------------------------------------------
# Role detection from transcripts
# ---------------------------------------------------------------------------


def client_party(network) -> str:
    """The party that issued the global query."""
    for message in network.transcript:
        if message.kind == "global_query":
            return message.sender
    raise LookupError("no global_query message in the transcript")


def mediator_party(network) -> str:
    """The party that received the global query."""
    for message in network.transcript:
        if message.kind == "global_query":
            return message.receiver
    raise LookupError("no global_query message in the transcript")


def source_parties(network) -> tuple[str, ...]:
    """The parties that received partial queries, in dispatch order."""
    sources = []
    for message in network.transcript:
        if message.kind == "partial_query" and message.receiver not in sources:
            sources.append(message.receiver)
    if not sources:
        raise LookupError("no partial_query messages in the transcript")
    return tuple(sources)
