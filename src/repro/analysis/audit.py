"""Differential leakage audit: adjacent workloads, adversary by adversary.

Table 1 says *what kind* of quantity each party learns; this module
measures *how much the observables move* when the input moves by one
tuple — the differential view of leakage used by the encrypted-database
literature ("Information Flows in Encrypted Databases", arXiv
1605.01092).  The auditor:

1. generates a seeded workload and its **adjacent** twin (one tuple's
   join value replaced, :func:`adjacent_workload`),
2. runs the same join query over both, under each protocol, capturing
   per-adversary :class:`~repro.telemetry.observables.ObservableTrace`s,
3. compares each adversary's observable distributions with explicit
   distance metrics (:func:`trace_distances`), and
4. emits a deterministic ``repro-leakage/1`` JSON document whose
   ``gate`` section makes today's distances a CI-enforceable envelope
   (``scripts/check_leakage_regression.py``).

Determinism: workloads are seeded and all size observations are
power-of-two buckets, so the document is byte-identical across runs of
the same code — crypto randomness moves bytes *within* buckets, never
across.  Wall-clock timing distances are computed only when
``include_timing`` is set and are never gated.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.federation import Federation
from repro.errors import ParameterError
from repro.relational.datagen import Workload, WorkloadSpec, generate
from repro.relational.relation import Relation
from repro.telemetry.observables import ObservableTrace, adversary_traces

#: Schema tag of the leakage-audit artifact.
LEAKAGE_SCHEMA = "repro-leakage/1"

#: Protocols audited by default (every delivery protocol).
AUDIT_PROTOCOLS = ("commutative", "das", "private-matching")

#: Gate policy per distance metric: distribution distances get a
#: relative tolerance plus a small absolute slack (a zero-distance
#: baseline must not make the gate infinitely strict); count deltas are
#: integers, gated by absolute slack alone.
DEFAULT_GATE_RULES: dict[str, dict[str, float | str]] = {
    "messages_tv": {"direction": "max", "tolerance": 0.25, "slack": 0.05},
    "kinds_tv": {"direction": "max", "tolerance": 0.25, "slack": 0.05},
    "sequence_divergence": {"direction": "max", "tolerance": 0.25, "slack": 0.05},
    "bucket_frequency_tv": {"direction": "max", "tolerance": 0.25, "slack": 0.05},
    "max_count_delta": {"direction": "max", "tolerance": 0.0, "slack": 2.0},
    "max_bucket_count_delta": {"direction": "max", "tolerance": 0.0, "slack": 2.0},
    "max_bucket_frequency_delta": {
        "direction": "max", "tolerance": 0.0, "slack": 2.0,
    },
    "max_cardinality_delta": {"direction": "max", "tolerance": 0.0, "slack": 4.0},
}

#: Epsilon for hardened-mode TV distances: the hardened envelope is
#: "indistinguishable up to rounding", not "within today's leakage".
HARDENED_EPSILON = 0.01

#: Gate policy for hardened audits: TV distances at most epsilon, every
#: count/bucket/cardinality delta exactly zero.  This is the mechanical
#: success criterion of the oblivious mode — see docs/security.md
#: ("Hardened mode").
HARDENED_GATE_RULES: dict[str, dict[str, float | str]] = {
    "messages_tv": {
        "direction": "max", "tolerance": 0.0, "slack": HARDENED_EPSILON,
    },
    "kinds_tv": {
        "direction": "max", "tolerance": 0.0, "slack": HARDENED_EPSILON,
    },
    "sequence_divergence": {
        "direction": "max", "tolerance": 0.0, "slack": HARDENED_EPSILON,
    },
    "bucket_frequency_tv": {
        "direction": "max", "tolerance": 0.0, "slack": HARDENED_EPSILON,
    },
    "max_count_delta": {"direction": "max", "tolerance": 0.0, "slack": 0.0},
    "max_bucket_count_delta": {
        "direction": "max", "tolerance": 0.0, "slack": 0.0,
    },
    "max_bucket_frequency_delta": {
        "direction": "max", "tolerance": 0.0, "slack": 0.0,
    },
    "max_cardinality_delta": {"direction": "max", "tolerance": 0.0, "slack": 0.0},
}


@dataclass(frozen=True)
class AuditConfig:
    """Parameters of one differential audit."""

    protocols: tuple[str, ...] = AUDIT_PROTOCOLS
    transport: str = "bus"
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    rsa_bits: int = 1024
    paillier_bits: int = 1024
    #: Wrap the carrier in the size-leaking canary decorator
    #: (:class:`~repro.faults.leaky.LeakyTransport`).
    canary: bool = False
    canary_pads_per_item: int = 4
    canary_pad_bytes: int = 32
    #: Include (nondeterministic, ungated) step-latency distances.
    include_timing: bool = False
    #: Audit the leakage-hardened oblivious mode: runs execute with
    #: ``hardening=True`` and the gate uses :data:`HARDENED_GATE_RULES`
    #: (TV <= epsilon, all deltas zero).  Combined with ``canary``, the
    #: protocol runs deliberately execute *unhardened* while the
    #: document still claims (and gates) hardened distances — modelling
    #: a deployment whose padding layer silently regressed, which the
    #: zero-slack hardened gate must flag under ``--expect-fail``.
    hardened: bool = False

    def __post_init__(self) -> None:
        if self.transport not in ("bus", "tcp", "cluster"):
            raise ParameterError(
                f"transport must be 'bus', 'tcp', or 'cluster', "
                f"got {self.transport!r}"
            )
        unknown = set(self.protocols) - set(AUDIT_PROTOCOLS)
        if unknown:
            raise ParameterError(f"unknown audit protocols {sorted(unknown)}")


# ---------------------------------------------------------------------------
# Adjacent workloads.
# ---------------------------------------------------------------------------

def adjacent_workload(workload: Workload) -> tuple[Workload, dict[str, Any]]:
    """The canonical neighbouring input: one join value moved.

    Every tuple of ``relation_1`` carrying the first *shared* join value
    is rewritten to a fresh value outside both active domains — the
    smallest semantic change that moves the join size, the active-domain
    intersection, and the DAS bucket occupancy at once.  Returns the new
    workload plus a JSON-able perturbation descriptor.
    """
    if not workload.shared_values:
        raise ParameterError("adjacent_workload needs at least one shared value")
    victim = workload.shared_values[0]
    relation = workload.relation_1
    join_attribute = workload.spec.join_attribute
    names = [attribute.name for attribute in relation.schema.attributes]
    position = names.index(join_attribute)
    taken = set(relation.active_domain(join_attribute)) | set(
        workload.relation_2.active_domain(join_attribute)
    )
    if isinstance(victim, int):
        replacement: Any = max(
            (v for v in taken if isinstance(v, int)), default=0
        ) + 1
    else:
        replacement = f"adjacent-{victim}"
        while replacement in taken:
            replacement = f"x{replacement}"
    rows = [
        tuple(
            replacement if index == position and value == victim else value
            for index, value in enumerate(row)
        )
        for row in relation.rows
    ]
    perturbed = Relation(relation.schema, rows)
    adjacent = Workload(
        spec=workload.spec,
        relation_1=perturbed,
        relation_2=workload.relation_2,
        shared_values=tuple(
            value for value in workload.shared_values if value != victim
        ),
    )
    return adjacent, {
        "relation": relation.name,
        "join_attribute": join_attribute,
        "replaced_value": str(victim),
        "replacement": str(replacement),
        "rows_rewritten": sum(1 for row in relation.rows if row[position] == victim),
    }


# ---------------------------------------------------------------------------
# Distance metrics.
# ---------------------------------------------------------------------------

def _total_variation(a: Mapping[str, int], b: Mapping[str, int]) -> float:
    """Total variation distance between two count distributions."""
    total_a, total_b = sum(a.values()), sum(b.values())
    if total_a == 0 and total_b == 0:
        return 0.0
    distance = 0.0
    for key in set(a) | set(b):
        p = a.get(key, 0) / total_a if total_a else 0.0
        q = b.get(key, 0) / total_b if total_b else 0.0
        distance += abs(p - q)
    return distance / 2.0


def _max_delta(a: Mapping[str, int], b: Mapping[str, int]) -> int:
    return max(
        (abs(a.get(key, 0) - b.get(key, 0)) for key in set(a) | set(b)),
        default=0,
    )


def _sequence_divergence(a: list[str], b: list[str]) -> float:
    """Fraction of positions where the ordered event streams differ."""
    length = max(len(a), len(b))
    if length == 0:
        return 0.0
    mismatches = sum(
        1 for x, y in zip(a, b) if x != y
    ) + abs(len(a) - len(b))
    return mismatches / length


def _frequency_ranks(trace: ObservableTrace) -> dict[str, int]:
    """Rank-labelled DAS bucket histogram (labels are salted per run,
    so only the rank-aligned shape is comparable across runs)."""
    return {
        f"rank_{position}": count
        for position, count in enumerate(trace.bucket_frequency_shape())
    }


def _timing_distribution(trace: ObservableTrace) -> dict[str, int]:
    flat: dict[str, int] = {}
    for step, buckets in trace.latency_buckets.items():
        for label, count in buckets.items():
            flat[f"{step}|{label}"] = flat.get(f"{step}|{label}", 0) + count
    return flat


def trace_distances(
    base: ObservableTrace, adjacent: ObservableTrace,
    include_timing: bool = False,
) -> dict[str, float]:
    """Explicit distances between one adversary's two observable traces.

    All values are deterministic for seeded workloads except
    ``timing_tv`` (only present with ``include_timing``, never gated).
    """
    distances = {
        "messages_tv": _total_variation(
            base.size_histogram(), adjacent.size_histogram()
        ),
        "kinds_tv": _total_variation(base.kind_counts(), adjacent.kind_counts()),
        "max_count_delta": float(
            _max_delta(base.kind_counts(), adjacent.kind_counts())
        ),
        "max_bucket_count_delta": float(
            _max_delta(base.size_histogram(), adjacent.size_histogram())
        ),
        "max_cardinality_delta": float(
            _max_delta(base.cardinality_totals(), adjacent.cardinality_totals())
        ),
        "bucket_frequency_tv": _total_variation(
            _frequency_ranks(base), _frequency_ranks(adjacent)
        ),
        "max_bucket_frequency_delta": float(
            _max_delta(_frequency_ranks(base), _frequency_ranks(adjacent))
        ),
        "sequence_divergence": _sequence_divergence(
            base.event_sequence(), adjacent.event_sequence()
        ),
    }
    if include_timing:
        distances["timing_tv"] = _total_variation(
            _timing_distribution(base), _timing_distribution(adjacent)
        )
    return {name: round(value, 6) for name, value in distances.items()}


# ---------------------------------------------------------------------------
# The auditor.
# ---------------------------------------------------------------------------

def _make_transport(config: AuditConfig) -> Any:
    if config.transport == "tcp":
        from repro.transport.tcp import TcpTransport

        carrier: Any = TcpTransport()
    elif config.transport == "cluster":
        # Routed carrier: a 2-shard mediator fleet behind the session-
        # affine router.  The audit distances must match the plain tcp
        # carrier exactly — the router is leakage-neutral by
        # construction (docs/security.md).
        from repro.cluster import ClusterTransport

        carrier = ClusterTransport(shards=2)
    else:
        from repro.mediation.network import Network

        carrier = Network()
    if config.canary:
        from repro.faults.leaky import LeakyTransport

        carrier = LeakyTransport(
            carrier,
            pads_per_item=config.canary_pads_per_item,
            pad_bytes=config.canary_pad_bytes,
        )
    return carrier


def _default_federation_factory(config: AuditConfig) -> Callable[..., Federation]:
    """Build a federation factory with key material shared across runs."""
    from repro import CertificationAuthority, setup_client
    from repro.mediation.access_control import allow_all
    from repro.mediation.client import default_homomorphic_scheme

    ca = CertificationAuthority(key_bits=config.rsa_bits)
    client = setup_client(
        ca,
        "audit-client",
        {("role", "auditor")},
        rsa_bits=config.rsa_bits,
        homomorphic_scheme=default_homomorphic_scheme(config.paillier_bits),
    )

    def factory(workload: Workload, network: Any) -> Federation:
        federation = Federation(ca=ca, network=network)
        federation.add_source("S1", [(workload.relation_1, allow_all())])
        federation.add_source("S2", [(workload.relation_2, allow_all())])
        federation.attach_client(client)
        return federation

    return factory


def _observed_run(
    factory: Callable[..., Federation],
    workload: Workload,
    protocol: str,
    query: str,
    config: AuditConfig,
) -> dict[str, ObservableTrace]:
    """One protocol run over a fresh transport; returns adversary traces."""
    from repro.core.runner import run_join_query

    transport = _make_transport(config)
    # The canary models a hardened deployment whose padding layer
    # silently regressed, so a hardened+canary audit runs unhardened
    # (the LeakyTransport pads proportionally to observable counts,
    # which genuine hardening would make invariant — the planted defect
    # must actually move the distances for --expect-fail to bite).
    hardened_run = config.hardened and not config.canary
    try:
        federation = factory(workload, transport)
        result = run_join_query(
            federation, query, protocol=protocol, hardening=hardened_run
        )
        return adversary_traces(result)
    finally:
        transport.close()


def _spec_document(spec: WorkloadSpec) -> dict[str, Any]:
    document = dataclasses.asdict(spec)
    document["join_type"] = spec.join_type.value
    return document


def default_gate(
    protocols_document: Mapping[str, Any], hardened: bool = False
) -> dict[str, Any]:
    """One gate rule per (protocol, adversary, gated metric) present."""
    rules = HARDENED_GATE_RULES if hardened else DEFAULT_GATE_RULES
    gate: dict[str, Any] = {}
    for protocol, entry in sorted(protocols_document.items()):
        for adversary, audit in sorted(entry["adversaries"].items()):
            for metric in audit["distances"]:
                rule = rules.get(metric)
                if rule is not None:
                    gate[f"{protocol}/{adversary}/{metric}"] = dict(rule)
    return gate


def differential_audit(
    config: AuditConfig | None = None,
    *,
    federation_factory: Callable[..., Federation] | None = None,
) -> dict[str, Any]:
    """Run the full differential audit and return the artifact document.

    ``federation_factory(workload, network)`` may be supplied to reuse
    existing key material (tests, benchmarks); by default fresh keys are
    generated once and shared across every run of the audit.
    """
    config = config or AuditConfig()
    factory = federation_factory or _default_federation_factory(config)
    base = generate(config.spec)
    adjacent, perturbation = adjacent_workload(base)
    query = (
        f"select * from {config.spec.name_1} "
        f"natural join {config.spec.name_2}"
    )
    protocols_document: dict[str, Any] = {}
    for protocol in config.protocols:
        base_traces = _observed_run(factory, base, protocol, query, config)
        adjacent_traces = _observed_run(
            factory, adjacent, protocol, query, config
        )
        adversaries: dict[str, Any] = {}
        for name in sorted(base_traces):
            base_trace = base_traces[name]
            adjacent_trace = adjacent_traces.get(name)
            if adjacent_trace is None:
                continue
            adversaries[name] = {
                "distances": trace_distances(
                    base_trace, adjacent_trace, config.include_timing
                ),
                "base": base_trace.summary(),
                "adjacent": adjacent_trace.summary(),
            }
        protocols_document[protocol] = {"adversaries": adversaries}
    from repro.crypto.backend import active_backend

    return {
        "schema": LEAKAGE_SCHEMA,
        "bench": "leakage_audit",
        "transport": config.transport,
        "canary": config.canary,
        "hardened": config.hardened,
        "include_timing": config.include_timing,
        "query": query,
        "workload": {
            "spec": _spec_document(config.spec),
            "perturbation": perturbation,
        },
        "protocols": protocols_document,
        "gate": default_gate(protocols_document, hardened=config.hardened),
        "context": {
            "crypto_backend": active_backend().name,
            "rsa_bits": config.rsa_bits,
            "paillier_bits": config.paillier_bits,
        },
    }


def leakage_json(document: Mapping[str, Any]) -> str:
    """Canonical serialization (what determinism is asserted against)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_leakage_artifact(path: str, document: Mapping[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(leakage_json(document))


def render_audit_summary(document: Mapping[str, Any]) -> str:
    """Human-readable per-adversary distance table."""
    lines = [
        "Differential leakage audit "
        f"(transport={document['transport']}, canary={document['canary']}, "
        f"hardened={document.get('hardened', False)})",
        f"{'protocol':18s} {'adversary':16s} {'msgs_tv':>8s} {'kinds_tv':>9s} "
        f"{'Δcount':>7s} {'Δbucket':>8s} {'Δcard':>6s} {'seq_div':>8s}",
        "-" * 78,
    ]
    for protocol, entry in sorted(document["protocols"].items()):
        for adversary, audit in sorted(entry["adversaries"].items()):
            d = audit["distances"]
            lines.append(
                f"{protocol:18s} {adversary:16s} "
                f"{d['messages_tv']:8.4f} {d['kinds_tv']:9.4f} "
                f"{d['max_count_delta']:7.0f} {d['max_bucket_count_delta']:8.0f} "
                f"{d['max_cardinality_delta']:6.0f} "
                f"{d['sequence_divergence']:8.4f}"
            )
    return "\n".join(lines)
