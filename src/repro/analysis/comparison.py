"""Reproducing the Section 6 comparison: interactions, traffic, cost.

Section 6 makes three families of qualitative claims; each maps to a
measured quantity here:

* **Interaction pattern (E5)** — "In the DAS approach, the client has to
  interact twice with the mediator ... For the datasources, the DAS
  approach is the most convenient one, as they only have to send data
  once.  In the commutative approach ... [the datasources] have to
  interact twice with the mediator.  In the PM approach, the datasources
  have to interact twice with the mediator."
  -> :attr:`ComparisonRow.client_interactions` /
  :attr:`source_interactions`.
* **Client-received data (E7)** — "[in DAS the client] receives more data
  records than necessary ... in the commutative approach, the client
  receives the exact tuple sets ... in the PM approach, the client
  retrieves all the tuples of the encrypted partial results."
  -> :attr:`client_received_units` vs :attr:`exact_join_size`.
* **Overall cost (E6)** — "the commutative approach seems to be the most
  efficient one" (with PM's polynomial evaluation called "quite
  expensive") -> wall-clock seconds and bytes on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.analysis.views import client_party, mediator_party, source_parties
from repro.core.federation import Federation
from repro.core.result import MediationResult
from repro.core.runner import run_join_query


@dataclass
class ComparisonRow:
    """Measured Section 6 quantities for one protocol run."""

    protocol: str
    exact_join_size: int
    client_interactions: int
    source_interactions: dict[str, int]
    client_received_units: int
    client_received_bytes: int
    total_bytes: int
    total_messages: int
    wall_seconds: dict[str, float]  # party -> protocol-step seconds
    crypto_operations: int

    @property
    def max_source_interactions(self) -> int:
        return max(self.source_interactions.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.wall_seconds.values())


def _client_received_units(result: MediationResult, client: str) -> tuple[int, int]:
    """(count, bytes) of result-bearing units delivered to the client."""
    protocol = result.protocol.split("[", 1)[0]
    units = 0
    size = 0
    for message in result.network.view(client).received:
        if message.kind == "das_server_result":
            units += len(message.body)
            size += message.size_bytes
        elif message.kind == "commutative_result":
            units += len(message.body)
            size += message.size_bytes
        elif message.kind == "pm_evaluations" and protocol == "private-matching":
            units += sum(len(values) for values in message.body.values())
            size += message.size_bytes
        elif message.kind in ("pm_side_tables", "das_encrypted_index_tables"):
            size += message.size_bytes
    return units, size


def measure(result: MediationResult) -> ComparisonRow:
    """Extract the Section 6 quantities from a finished run."""
    network = result.network
    client = client_party(network)
    mediator = mediator_party(network)
    sources = source_parties(network)
    units, client_bytes = _client_received_units(result, client)
    wall: dict[str, float] = {}
    for timing in result.timings:
        wall[timing.party] = wall.get(timing.party, 0.0) + timing.seconds
    return ComparisonRow(
        protocol=result.protocol,
        exact_join_size=len(result.global_result),
        client_interactions=network.interaction_count(client, mediator),
        source_interactions={
            source: network.interaction_count(source, mediator)
            for source in sources
        },
        client_received_units=units,
        client_received_bytes=client_bytes,
        total_bytes=network.total_bytes(),
        total_messages=len(network.transcript),
        wall_seconds=wall,
        crypto_operations=sum(result.primitive_counter.counts.values()),
    )


def compare(
    federation_factory: Callable[[], Federation],
    query: str,
    protocols: Iterable[tuple[str, Any]],
) -> list[ComparisonRow]:
    """Run each protocol on a fresh federation and measure it.

    A fresh federation per protocol keeps transcripts independent; the
    factory must produce identically-populated federations (same seed).
    """
    rows = []
    for protocol, config in protocols:
        federation = federation_factory()
        result = run_join_query(federation, query, protocol=protocol, config=config)
        rows.append(measure(result))
    return rows


def render(rows: list[ComparisonRow]) -> str:
    """ASCII table of the comparison (benchmark output)."""
    header = (
        f"{'protocol':30s} {'join':>5s} {'cli-int':>8s} {'src-int':>8s} "
        f"{'cli-units':>9s} {'bytes':>10s} {'msgs':>5s} {'crypto-ops':>10s} "
        f"{'seconds':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.protocol:30s} {row.exact_join_size:>5d} "
            f"{row.client_interactions:>8d} {row.max_source_interactions:>8d} "
            f"{row.client_received_units:>9d} {row.total_bytes:>10d} "
            f"{row.total_messages:>5d} {row.crypto_operations:>10d} "
            f"{row.total_seconds:>8.3f}"
        )
    return "\n".join(lines)
