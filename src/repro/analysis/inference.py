"""Partition-inference exposure for the DAS ablation (A1).

Section 6: *"Small partitions with only a few values are more efficient
(less post-processing is necessary) but can leak confidential
information (see [15] and [8] for an analysis).  This is even worse when
the domain of the attribute is small."*

Following the spirit of Ceselli et al. [8], we quantify an adversary who
obtained an index table in plaintext (the insecure *mediator setting*,
or a compromise) and knows the global attribute domain: for each
encrypted tuple it sees, its probability of guessing the tuple's real
join value is ``1 / |partition|``.  The **exposure** of a partitioning
is the mean of this probability over tuples; singleton partitions give
exposure 1.0 (the index value identifies the value), one big partition
gives ``1 / |domactive|``.

The opposing quantity is DAS efficiency: coarser partitions produce more
overlapping pairs, hence more false positives the client must discard.
Benchmark A1 sweeps bucket counts and reports both curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import MediationResult
from repro.errors import ProtocolError
from repro.relational.partition import IndexTable
from repro.relational.relation import Relation


@dataclass
class ExposureReport:
    """Inference exposure of one source's partitioning."""

    attribute: str
    partitions: int
    covered_values: int
    #: mean over tuples of 1/|partition containing the tuple's value|.
    tuple_exposure: float
    #: mean over *values* of 1/|partition| (value-level exposure).
    value_exposure: float


def partition_exposure(index_table: IndexTable, relation: Relation) -> ExposureReport:
    """Exposure of ``relation`` under ``index_table``'s partitioning."""
    attribute = index_table.attribute.split(".", 1)[-1]
    sizes_by_value = {
        value: len(partition.values)
        for partition in index_table.partitions
        for value in partition.values
    }
    if not sizes_by_value:
        raise ProtocolError("index table covers no values")
    position = relation.schema.position(attribute)
    tuple_probabilities = [
        1.0 / sizes_by_value[row[position]] for row in relation
    ]
    value_probabilities = [1.0 / size for size in sizes_by_value.values()]
    return ExposureReport(
        attribute=index_table.attribute,
        partitions=len(index_table.partitions),
        covered_values=len(sizes_by_value),
        tuple_exposure=sum(tuple_probabilities) / len(tuple_probabilities),
        value_exposure=sum(value_probabilities) / len(value_probabilities),
    )


@dataclass
class DASEfficiencyReport:
    """Post-processing cost of one DAS run (the efficiency side of A1)."""

    buckets_configured: int
    server_result_size: int
    exact_join_size: int
    false_positives: int

    @property
    def false_positive_rate(self) -> float:
        if self.server_result_size == 0:
            return 0.0
        return self.false_positives / self.server_result_size


def das_efficiency(result: MediationResult) -> DASEfficiencyReport:
    """Extract the A1 efficiency quantities from a DAS run."""
    if not result.protocol.startswith("das"):
        raise ProtocolError("das_efficiency requires a DAS run")
    config = result.artifacts["config"]
    return DASEfficiencyReport(
        buckets_configured=config.buckets,
        server_result_size=result.artifacts["server_result_size"],
        exact_join_size=len(result.global_result),
        false_positives=result.artifacts["false_positives"],
    )
