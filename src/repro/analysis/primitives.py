"""Reproducing Table 2: applied cryptographic primitives per protocol.

The paper's Table 2 lists — *"in addition to credentials and hybrid
encryption already used in the MMM system"* — the primitives each
protocol applies:

    ====================  =========================================
    Database-as-a-Service hashfunction
    Commutative Encr.     hashfunction and commutative encryption
    Private Matching      homomorphic encryption and random numbers
    ====================  =========================================

:func:`primitive_profile` derives the same categorization from the
instrumented operation counters of an actual run.  The mapping from
operation names to the paper's categories:

* ``hash.*``                        -> *hashfunction*
* ``commutative.*``                 -> *commutative encryption*
* ``paillier.* / elgamal.* /
  ecelgamal.* / homomorphic.*``     -> *homomorphic encryption*
* ``random.pm_mask``                -> *random numbers* (the masking
  values r_l of Equation (1); session keys and encryption nonces belong
  to the baseline hybrid machinery and are excluded, as are the
  ``rsa.* / symmetric.* / hybrid.*`` operations themselves)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import MediationResult
from repro.crypto.instrumentation import PrimitiveCounter

#: Operation prefixes belonging to the MMM baseline (excluded).
BASELINE_PREFIXES = (
    "rsa.",
    "symmetric.",
    "hybrid.",
    "random.session_key",
    "random.paillier_nonce",
    "random.elgamal_nonce",
    "random.ecelgamal_nonce",
    "random.commutative_key",
)

#: Paper category -> operation prefixes that fall into it.
CATEGORY_PREFIXES: dict[str, tuple[str, ...]] = {
    "hashfunction": ("hash.",),
    "commutative encryption": ("commutative.",),
    "homomorphic encryption": (
        "paillier.",
        "elgamal.",
        "ecelgamal.",
        "homomorphic.",
    ),
    "random numbers": ("random.pm_mask",),
}


@dataclass
class PrimitiveProfile:
    """Categorized primitive usage of one protocol run."""

    protocol: str
    #: category -> total invocation count (only categories actually used).
    categories: dict[str, int]
    #: raw operation counts, for the detailed audit.
    operations: dict[str, int]

    def category_names(self) -> tuple[str, ...]:
        return tuple(sorted(name for name, count in self.categories.items() if count))

    def table_row(self) -> tuple[str, str]:
        return (self.protocol, " and ".join(self.category_names()) or "(none)")


def primitive_profile(result: MediationResult) -> PrimitiveProfile:
    """Categorize a run's primitive usage into the paper's Table-2 terms."""
    return profile_counter(result.protocol, result.primitive_counter)


def profile_counter(protocol: str, counter: PrimitiveCounter) -> PrimitiveProfile:
    operations = dict(counter.counts)
    categories: dict[str, int] = {}
    for category, prefixes in CATEGORY_PREFIXES.items():
        total = 0
        for operation, count in operations.items():
            if any(operation.startswith(prefix) for prefix in prefixes):
                total += count
        if total:
            categories[category] = total
    return PrimitiveProfile(
        protocol=protocol, categories=categories, operations=operations
    )


def baseline_operations(counter: PrimitiveCounter) -> dict[str, int]:
    """The hybrid/credential machinery counts (excluded from Table 2)."""
    return {
        operation: count
        for operation, count in counter.counts.items()
        if any(operation.startswith(prefix) for prefix in BASELINE_PREFIXES)
    }


def table2(profiles: list[PrimitiveProfile]) -> str:
    """Render the reproduced Table 2."""
    lines = [
        "Table 2 — applied cryptographic primitives (derived from counters)",
        f"{'protocol':34s} | primitives beyond credentials + hybrid encryption",
        "-" * 100,
    ]
    for profile in profiles:
        protocol, categories = profile.table_row()
        lines.append(f"{protocol:34s} | {categories}")
    return "\n".join(lines)
