"""Evaluation analyses reproducing the paper's Tables, Figures and §6.

* :mod:`~repro.analysis.views` — party-view byte material and roles
* :mod:`~repro.analysis.leakage` — Table 1 from actual transcripts
* :mod:`~repro.analysis.audit` — differential leakage audit over
  adjacent workloads (the ``repro-leakage/1`` artifact)
* :mod:`~repro.analysis.primitives` — Table 2 from primitive counters
* :mod:`~repro.analysis.conformance` — Listing 1-4 / Figure 1-2 checks
* :mod:`~repro.analysis.comparison` — Section 6 performance quantities
* :mod:`~repro.analysis.inference` — DAS partition-inference ablation
* :mod:`~repro.analysis.statistics` — ciphertext uniformity checks
* :mod:`~repro.analysis.export` — JSON audit records of protocol runs
"""

from repro.analysis.audit import (
    AuditConfig,
    adjacent_workload,
    differential_audit,
    render_audit_summary,
    trace_distances,
    write_leakage_artifact,
)
from repro.analysis.comparison import ComparisonRow, compare, measure, render
from repro.analysis.export import export_run, export_run_json
from repro.analysis.conformance import architecture_edges, check_flow
from repro.analysis.leakage import (
    LeakageReport,
    analyze,
    table1,
    verify_no_plaintext_leak,
)
from repro.analysis.primitives import PrimitiveProfile, primitive_profile, table2
from repro.analysis.statistics import (
    commutative_tag_spread,
    mediator_ciphertext_uniformity,
)

__all__ = [
    "AuditConfig",
    "ComparisonRow",
    "LeakageReport",
    "PrimitiveProfile",
    "adjacent_workload",
    "analyze",
    "architecture_edges",
    "check_flow",
    "commutative_tag_spread",
    "compare",
    "differential_audit",
    "export_run",
    "export_run_json",
    "measure",
    "mediator_ciphertext_uniformity",
    "primitive_profile",
    "render",
    "render_audit_summary",
    "table1",
    "trace_distances",
    "table2",
    "verify_no_plaintext_leak",
    "write_leakage_artifact",
]
