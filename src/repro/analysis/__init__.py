"""Evaluation analyses reproducing the paper's Tables, Figures and §6.

* :mod:`~repro.analysis.views` — party-view byte material and roles
* :mod:`~repro.analysis.leakage` — Table 1 from actual transcripts
* :mod:`~repro.analysis.primitives` — Table 2 from primitive counters
* :mod:`~repro.analysis.conformance` — Listing 1-4 / Figure 1-2 checks
* :mod:`~repro.analysis.comparison` — Section 6 performance quantities
* :mod:`~repro.analysis.inference` — DAS partition-inference ablation
* :mod:`~repro.analysis.statistics` — ciphertext uniformity checks
* :mod:`~repro.analysis.export` — JSON audit records of protocol runs
"""

from repro.analysis.comparison import ComparisonRow, compare, measure, render
from repro.analysis.export import export_run, export_run_json
from repro.analysis.conformance import architecture_edges, check_flow
from repro.analysis.leakage import (
    LeakageReport,
    analyze,
    table1,
    verify_no_plaintext_leak,
)
from repro.analysis.primitives import PrimitiveProfile, primitive_profile, table2
from repro.analysis.statistics import (
    commutative_tag_spread,
    mediator_ciphertext_uniformity,
)

__all__ = [
    "ComparisonRow",
    "LeakageReport",
    "PrimitiveProfile",
    "analyze",
    "architecture_edges",
    "check_flow",
    "commutative_tag_spread",
    "compare",
    "export_run",
    "export_run_json",
    "measure",
    "mediator_ciphertext_uniformity",
    "primitive_profile",
    "render",
    "table1",
    "table2",
    "verify_no_plaintext_leak",
]
