"""One-shot evaluation report: every reproduced artifact in one document.

:func:`full_report` runs all three protocols on a given workload and
renders a markdown document containing the reproduced Table 1, Table 2,
the Section-6 comparison, flow-conformance verdicts, topology facts and
the confidentiality scan — the complete evaluation of the paper from a
single function call (also exposed as ``python -m repro report``).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.comparison import measure, render
from repro.analysis.conformance import architecture_edges, check_flow
from repro.analysis.leakage import analyze, table1, verify_no_plaintext_leak
from repro.analysis.primitives import primitive_profile, table2
from repro.analysis.statistics import mediator_ciphertext_uniformity
from repro.core.federation import Federation
from repro.core.runner import run_join_query
from repro.relational.relation import Relation

PROTOCOL_ORDER = ("das", "commutative", "private-matching")


def full_report(
    federation_factory: Callable[[], Federation],
    query: str,
    relations: list[Relation],
    title: str = "Secure mediation evaluation report",
) -> str:
    """Run every protocol and render the complete evaluation as markdown.

    ``federation_factory`` must build identically-populated fresh
    federations (one per protocol run); ``relations`` are the plaintext
    partial results used as needles for the confidentiality scan.
    """
    results = [
        run_join_query(federation_factory(), query, protocol=protocol)
        for protocol in PROTOCOL_ORDER
    ]

    lines = [f"# {title}", "", f"Query: `{query}`", ""]

    lines += ["## Correctness", ""]
    sizes = {len(result.global_result) for result in results}
    lines.append(
        f"- All protocols produced the same global result: "
        f"{'YES' if len(sizes) == 1 else 'NO'} "
        f"({sorted(sizes)} rows)"
    )
    first = results[0].global_result
    agree = all(result.global_result == first for result in results)
    lines.append(f"- Row-level agreement across protocols: "
                 f"{'YES' if agree else 'NO'}")
    lines.append("")

    lines += ["## Table 1 — disclosed information (from transcripts)", "",
              "```", table1([analyze(result) for result in results]), "```",
              ""]

    lines += ["## Table 2 — applied primitives (from counters)", "",
              "```",
              table2([primitive_profile(result) for result in results]),
              "```", ""]

    lines += ["## Section 6 — measured comparison", "", "```",
              render([measure(result) for result in results]), "```", ""]

    lines += ["## Conformance and confidentiality", ""]
    for result in results:
        flow = check_flow(result)
        topology = architecture_edges(result)
        leaks = verify_no_plaintext_leak(result, relations)
        try:
            uniform = mediator_ciphertext_uniformity(result).looks_uniform
        except Exception:  # tiny transcripts: not enough material
            uniform = None
        lines.append(
            f"- `{result.protocol}`: listing-conformant="
            f"{flow.conforms}, star-topology={all(topology.values())}, "
            f"plaintext-leaks={len(leaks)}, "
            f"ciphertexts-look-uniform={uniform}"
        )
    lines.append("")
    return "\n".join(lines)
