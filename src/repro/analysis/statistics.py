"""Statistical indistinguishability checks on transcript material.

The paper relies on the ciphertexts the mediator sees being
indistinguishable from random (the commutative cipher's secrecy
property, Paillier's semantic security, the hybrid DEM's stream cipher).
These checks give *empirical* teeth to that reliance: the byte material
of the mediator's received ciphertexts is tested for uniformity, and the
commutative tags for collision-freeness and group spread.

A statistical test cannot prove security — a passing chi-square only
means the material carries no gross structure — but a *failing* one is a
smoking gun (e.g. plaintext objects on the bus fail instantly, which the
mediator-setting baseline demonstrates).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from scipy import stats

from repro.core.result import MediationResult
from repro.errors import ProtocolError
from repro.mediation.network import PartyView

#: Message kinds whose payloads are ciphertext material by construction.
CIPHERTEXT_KINDS = {
    "das_encrypted_partial_result",
    "das_encrypted_index_tables",
    "das_server_result",
    "commutative_m_set",
    "commutative_exchange",
    "commutative_double",
    "commutative_result",
    "pm_encrypted_coefficients",
    "pm_evaluations",
    "pm_side_table",
    "pm_side_tables",
}


@dataclass
class UniformityReport:
    """Chi-square goodness of fit of byte frequencies against uniform."""

    sample_bytes: int
    chi2: float
    p_value: float
    #: Below this p-value the uniformity hypothesis is rejected.
    alpha: float = 1e-6

    @property
    def looks_uniform(self) -> bool:
        return self.p_value >= self.alpha


#: Integers below this bit length are treated as structural metadata
#: (index values, counts), not ciphertext material.
_MIN_CIPHERTEXT_INT_BITS = 96
#: Byte strings shorter than this are treated as labels/tokens.
_MIN_CIPHERTEXT_BLOB_BYTES = 16


def _collect_ciphertext_fragments(body, fragments: list[bytes]) -> None:
    """Collect only the genuinely random-looking fragments of a body.

    Structural strings (dict keys, relation names) and short integers
    (index values) would dominate a small sample's histogram without
    saying anything about the *ciphertexts*; they are skipped.
    """
    import dataclasses

    if body is None or isinstance(body, (bool, str)):
        return
    if isinstance(body, (bytes, bytearray)):
        if len(body) >= _MIN_CIPHERTEXT_BLOB_BYTES:
            fragments.append(bytes(body))
        return
    if isinstance(body, int):
        if body.bit_length() >= _MIN_CIPHERTEXT_INT_BITS:
            fragments.append(
                body.to_bytes((body.bit_length() + 7) // 8, "big")
            )
        return
    if isinstance(body, dict):
        for key, value in body.items():
            _collect_ciphertext_fragments(key, fragments)
            _collect_ciphertext_fragments(value, fragments)
        return
    if isinstance(body, (list, tuple, set, frozenset)):
        for item in body:
            _collect_ciphertext_fragments(item, fragments)
        return
    if dataclasses.is_dataclass(body) and not isinstance(body, type):
        for field in dataclasses.fields(body):
            _collect_ciphertext_fragments(getattr(body, field.name), fragments)
        return


def ciphertext_material(view: PartyView) -> bytes:
    """Concatenated *distinct* ciphertext bytes received by a party.

    Fragments are deduplicated: the DAS server result legitimately
    repeats each encrypted tuple once per matching pair, and repeating
    random data would bias a uniformity histogram without indicating any
    weakness of the ciphertexts themselves.
    """
    fragments: list[bytes] = []
    for message in view.received:
        if message.kind not in CIPHERTEXT_KINDS:
            continue
        _collect_ciphertext_fragments(message.body, fragments)
    seen: set[bytes] = set()
    distinct = []
    for fragment in fragments:
        if fragment not in seen:
            seen.add(fragment)
            distinct.append(fragment)
    return b"".join(distinct)


def byte_uniformity(material: bytes, alpha: float = 1e-6) -> UniformityReport:
    """Chi-square test of the byte histogram against the uniform law."""
    if len(material) < 1024:
        raise ProtocolError(
            f"need at least 1024 bytes for a meaningful test, got "
            f"{len(material)}"
        )
    counts = Counter(material)
    observed = [counts.get(value, 0) for value in range(256)]
    chi2, p_value = stats.chisquare(observed)
    return UniformityReport(
        sample_bytes=len(material), chi2=float(chi2), p_value=float(p_value),
        alpha=alpha,
    )


def mediator_ciphertext_uniformity(
    result: MediationResult, alpha: float = 1e-6
) -> UniformityReport:
    """Uniformity of everything ciphertext-like the mediator received."""
    from repro.analysis.views import mediator_party

    view = result.network.view(mediator_party(result.network))
    return byte_uniformity(ciphertext_material(view), alpha)


@dataclass
class TagSpreadReport:
    """Collision and spread statistics of commutative tags."""

    tags: int
    distinct: int
    modulus_bits: int
    min_bits: int

    @property
    def collision_free(self) -> bool:
        return self.tags == self.distinct

    @property
    def well_spread(self) -> bool:
        """All tags within a few bits of the modulus size (no tiny
        elements betraying structure)."""
        return self.min_bits >= self.modulus_bits - 16


def commutative_tag_spread(result: MediationResult) -> TagSpreadReport:
    """Analyze the single-encrypted tags the mediator saw (round 1)."""
    if not result.protocol.startswith("commutative"):
        raise ProtocolError("tag analysis requires a commutative run")
    tags: list[int] = []
    for message in result.network.messages_of_kind("commutative_m_set"):
        tags.extend(entry.tag for entry in message.body)
    if not tags:
        raise ProtocolError("no commutative tags in the transcript")
    modulus_bits = max(tag.bit_length() for tag in tags)
    return TagSpreadReport(
        tags=len(tags),
        distinct=len(set(tags)),
        modulus_bits=modulus_bits,
        min_bits=min(tag.bit_length() for tag in tags),
    )
