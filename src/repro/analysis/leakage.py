"""Reproducing Table 1: extra information disclosed to client and mediator.

The paper's Table 1:

    =================  =========================  ==========================
    protocol           Client                     Mediator
    =================  =========================  ==========================
    Database-as-a-     superset of global         |R_i| and |R_C|
    Service            result, index tables
    Commutative        (only exact global         |domactive(R_i.A_join)|
    Encryption         result)                    and size of intersection
    Private Matching   (all encrypted values,     |domactive(R_i.A_join)|
                       exact result decipherable)
    =================  =========================  ==========================

Rather than restating the table, :func:`analyze` derives each cell from
the *actual run transcript*: mediator quantities are computed from the
mediator's received messages only (what a semi-honest mediator can
count), client quantities from the client's.  :func:`verify_no_plaintext
_leak` additionally scans the mediator's view for plaintext tuple
material — the confidentiality claim all three protocols share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.views import view_material
from repro.core.result import MediationResult
from repro.errors import ProtocolError
from repro.mediation.network import PartyView
from repro.relational.encoding import encode_row, encode_value
from repro.relational.relation import Relation


@dataclass
class LeakageReport:
    """What one protocol run disclosed, derived from the transcript."""

    protocol: str
    #: Quantities the mediator can read off its received messages.
    mediator_learns: dict[str, int] = field(default_factory=dict)
    #: Quantities/material the client receives beyond the exact result.
    client_learns: dict[str, int] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def table_row(self) -> tuple[str, str, str]:
        """(protocol, client cell, mediator cell) for Table-1 rendering."""
        client = ", ".join(f"{k}={v}" for k, v in sorted(self.client_learns.items()))
        mediator = ", ".join(
            f"{k}={v}" for k, v in sorted(self.mediator_learns.items())
        )
        return (self.protocol, client or "(exact result only)", mediator)


def _mediator_view(result: MediationResult) -> PartyView:
    # The mediator is the one party that both receives from sources and
    # sends to the client; its registered name is recorded on messages.
    for party in result.network.parties():
        view = result.network.view(party)
        kinds = {m.kind for m in view.received}
        if kinds & {
            "das_encrypted_partial_result",
            "commutative_m_set",
            "pm_encrypted_coefficients",
        } and any(m.kind == "global_query" for m in view.received):
            return view
    raise ProtocolError("could not locate the mediator's view")


def _client_view(result: MediationResult) -> PartyView:
    for party in result.network.parties():
        view = result.network.view(party)
        if any(m.kind == "global_query" for m in view.sent):
            return view
    raise ProtocolError("could not locate the client's view")


def analyze(result: MediationResult) -> LeakageReport:
    """Derive the Table-1 cells for one protocol run from its transcript."""
    protocol = result.protocol.split("[", 1)[0]
    if protocol == "das":
        return _analyze_das(result)
    if protocol == "commutative":
        return _analyze_commutative(result)
    if protocol == "private-matching":
        return _analyze_private_matching(result)
    raise ProtocolError(f"no leakage analyzer for protocol {result.protocol!r}")


def _analyze_das(result: MediationResult) -> LeakageReport:
    report = LeakageReport(protocol=result.protocol)
    mediator = _mediator_view(result)
    # |R_i|: the encrypted relations are tuple-wise, so the mediator
    # counts rows directly.
    for message in mediator.received:
        if message.kind == "das_encrypted_partial_result":
            relation = message.body["relation"]
            report.mediator_learns[f"|{relation.relation_name}|"] = len(relation)
    # |R_C|: the mediator computed and sent the server result itself.
    for message in mediator.sent:
        if message.kind == "das_server_result":
            report.mediator_learns["|R_C|"] = len(message.body)
    client = _client_view(result)
    for message in client.received:
        if message.kind == "das_server_result":
            report.client_learns["superset_rows_received"] = len(message.body)
        if message.kind == "das_encrypted_index_tables":
            report.client_learns["index_tables_received"] = len(message.body)
    report.client_learns["exact_result_rows"] = len(result.global_result)
    report.notes.append(
        "|R_C| is an upper bound of the global result size; the client "
        "post-processes the superset with q_C"
    )
    return report


def _analyze_commutative(result: MediationResult) -> LeakageReport:
    report = LeakageReport(protocol=result.protocol)
    mediator = _mediator_view(result)
    # |domactive(R_i.A_join)|: one first-round message per active value.
    for message in mediator.received:
        if message.kind == "commutative_m_set":
            report.mediator_learns[
                f"|domactive@{message.sender}|"
            ] = len(message.body)
    # Intersection size: the mediator itself matches equal tags.
    for message in mediator.sent:
        if message.kind == "commutative_result":
            report.mediator_learns["intersection_size"] = len(message.body)
    client = _client_view(result)
    received_pairs = sum(
        len(m.body) for m in client.received if m.kind == "commutative_result"
    )
    report.client_learns["matched_tuple_set_pairs"] = received_pairs
    report.notes.append(
        "the client receives the exact global result only (matched tuple "
        "sets); the intersection size is a lower bound of |result|"
    )
    return report


def _analyze_private_matching(result: MediationResult) -> LeakageReport:
    report = LeakageReport(protocol=result.protocol)
    mediator = _mediator_view(result)
    # Degree of each polynomial = number of coefficients - 1.
    for message in mediator.received:
        if message.kind == "pm_encrypted_coefficients" and message.sender != (
            _client_view(result).party
        ):
            report.mediator_learns[
                f"|domactive@{message.sender}|"
            ] = len(message.body) - 1
    client = _client_view(result)
    for message in client.received:
        if message.kind == "pm_evaluations":
            report.client_learns["encrypted_values_received"] = sum(
                len(values) for values in message.body.values()
            )
    report.client_learns["decipherable_rows"] = len(result.global_result)
    report.notes.append(
        "the client receives n + m encrypted values (all partial-result "
        "tuple sets) but can only decipher those in the exact join"
    )
    return report


def verify_no_plaintext_leak(
    result: MediationResult,
    relations: list[Relation],
    min_needle_bytes: int = 4,
) -> list[str]:
    """Scan the mediator's received material for plaintext tuples.

    Returns a list of human-readable violations (empty = confidential).
    Needles are full row encodings plus individual string attribute
    values (long enough to make random collisions in ciphertext bytes
    negligible).
    """
    mediator = _mediator_view(result)
    material = view_material(mediator)
    violations = []
    for relation in relations:
        for row in relation:
            needle = encode_row(row)
            if len(needle) >= min_needle_bytes and needle in material:
                violations.append(
                    f"row {row!r} of {relation.name} visible to the mediator"
                )
            for value in row:
                if isinstance(value, str) and len(value) >= min_needle_bytes:
                    # Strings may leak either raw (plaintext objects on
                    # the bus) or in their tagged canonical encoding.
                    raw = value.encode("utf-8")
                    if raw in material or encode_value(value) in material:
                        violations.append(
                            f"value {value!r} of {relation.name} visible "
                            "to the mediator"
                        )
    return sorted(set(violations))


def table1(reports: list[LeakageReport]) -> str:
    """Render the reproduced Table 1."""
    lines = [
        "Table 1 — extra information disclosed (derived from transcripts)",
        f"{'protocol':34s} | {'client':44s} | mediator",
        "-" * 120,
    ]
    for report in reports:
        protocol, client, mediator = report.table_row()
        lines.append(f"{protocol:34s} | {client:44s} | {mediator}")
    return "\n".join(lines)
