"""The mediator party: localization, decomposition, credential routing.

The mediator is the *untrusted* middle party.  What it is allowed to do:

* combine the datasources' schemas into a homogeneous global schema (the
  "embedding" of [2]) — here: a registry mapping relation names to the
  datasources managing them, plus the relations' schemas,
* split a global query into partial queries (via SQL2Algebra),
* identify the join attributes ``A_1 = A_2 = {A_join}``,
* select, for each datasource, the relevant credential subset ``CR_i``,
* and, per delivery protocol, operate on *ciphertexts only*.

What it must never see: plaintext partial results.  The leakage analysis
(Table 1 reproduction) audits the mediator's view for exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.mediation.credentials import Credential
from repro.relational import sql
from repro.relational.algebra import AlgebraNode, Join, PartialQuery
from repro.relational.schema import Schema
from repro.session import SessionRegistry, current_session_id
from repro.storage.base import StorageBackend
from repro.telemetry import tracing


@dataclass(frozen=True)
class JoinDecomposition:
    """A global join query split into its mediation ingredients."""

    tree: AlgebraNode
    partial_queries: tuple[PartialQuery, ...]
    source_names: tuple[str, ...]
    join_attributes: tuple[str, ...]


@dataclass
class Mediator:
    """Registry plus decomposition logic (no data plane state)."""

    name: str = "mediator"
    #: relation name -> datasource name (the localization map).
    registry: dict[str, str] = field(default_factory=dict)
    #: relation name -> schema (the embedded global schema).
    schemas: dict[str, Schema] = field(default_factory=dict)
    #: datasource name -> property names its policies mention.
    source_properties: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Apply the selection push-down optimizer during decomposition, so
    #: datasources pre-filter partial results (the Section 2 "more
    #: complex queries could be executed by the datasources" extension).
    push_down: bool = False
    #: Per-session decomposition cache: a client running a *series* of
    #: queries in one session re-decomposes each distinct query text
    #: once.  Keyed by session so no session can observe (via routing
    #: state) what another session asked; session-less runs bypass the
    #: cache entirely.
    sessions: SessionRegistry = field(
        default_factory=lambda: SessionRegistry(capacity=256)
    )
    #: Optional storage backend: when set, the DAS server query
    #: (``sigma_CondS`` over bucket index values) executes inside the
    #: backend (as SQL on SQLite) instead of a Python loop.  The
    #: mediator still only ever touches ciphertexts and index values.
    storage: "StorageBackend | None" = field(default=None, repr=False)

    def register_source(self, source_name: str, *schemas: Schema,
                        property_names: frozenset[str] = frozenset()) -> None:
        """Contract a datasource supplying the given relations."""
        for schema in schemas:
            if schema.relation_name in self.registry:
                raise QueryError(
                    f"relation {schema.relation_name!r} already registered"
                )
            self.registry[schema.relation_name] = source_name
            self.schemas[schema.relation_name] = schema
        existing = self.source_properties.get(source_name, frozenset())
        self.source_properties[source_name] = existing | property_names

    def localize(self, relation_name: str) -> str:
        """Which datasource manages a relation (Listing 1 step 2)."""
        if relation_name not in self.registry:
            raise QueryError(f"no datasource manages {relation_name!r}")
        return self.registry[relation_name]

    # -- decomposition -------------------------------------------------------

    def decompose_join(self, query: str) -> JoinDecomposition:
        """Split a global query into one JOIN over two partial queries.

        The paper confines itself to "queries q that can be split into
        one JOIN operation and two partial queries q1 and q2"; this
        method enforces that shape and extracts the join attributes from
        the embedded global schema.
        """
        session_id = current_session_id()
        if session_id is None:
            with tracing.span("decompose_join", self.name, kind="mediation"):
                return self._decompose_join(query)
        session = self.sessions.get(session_id)
        with session.lock:
            cache: dict[str, JoinDecomposition] = session.state.setdefault(
                "decompositions", {}
            )
            cached = cache.get(query)
            if cached is not None:
                return cached
        with tracing.span(
            "decompose_join", self.name, kind="mediation", cached=False
        ):
            decomposition = self._decompose_join(query)
        with session.lock:
            cache[query] = decomposition
        return decomposition

    def _decompose_join(self, query: str) -> JoinDecomposition:
        tree = sql.parse(query)
        if self.push_down:
            from repro.relational.optimizer import push_down_selections

            tree = push_down_selections(tree, self.schemas)
        join = _find_single_join(tree)
        leaves = tree.leaves()
        if len(leaves) != 2:
            raise QueryError(
                "the delivery protocols require exactly two partial queries; "
                f"got {len(leaves)}"
            )
        schemas = []
        for leaf in leaves:
            if leaf.relation_name not in self.schemas:
                raise QueryError(f"unknown relation {leaf.relation_name!r}")
            schemas.append(self.schemas[leaf.relation_name])
        join_attributes = schemas[0].common_attributes(schemas[1])
        if not join_attributes:
            raise QueryError(
                "relations share no attributes - natural join degenerates "
                "to a cross product, which the protocols do not cover"
            )
        sources = tuple(self.localize(leaf.relation_name) for leaf in leaves)
        if sources[0] == sources[1]:
            raise QueryError(
                "both partial queries localize to the same datasource; "
                "secure mediation needs two distinct sources"
            )
        return JoinDecomposition(
            tree=tree,
            partial_queries=tuple(leaves),
            source_names=sources,
            join_attributes=join_attributes,
        )

    def select_credentials(
        self, source_name: str, credentials: list[Credential]
    ) -> list[Credential]:
        """The subset ``CR_i`` relevant to one datasource.

        A credential is relevant if it asserts any property name the
        source's policies mention; when a source declares no property
        interests, all credentials are forwarded (the paper leaves the
        selection strategy open).
        """
        relevant = self.source_properties.get(source_name, frozenset())
        if not relevant:
            return list(credentials)
        subset = [
            credential
            for credential in credentials
            if any(name in relevant for name, _ in credential.properties)
        ]
        return subset or list(credentials)


def _find_single_join(tree: AlgebraNode) -> Join:
    """Locate the unique Join node; reject other shapes."""
    joins: list[Join] = []

    def walk(node: AlgebraNode) -> None:
        if isinstance(node, Join):
            joins.append(node)
        for attribute in ("child", "left", "right"):
            child = getattr(node, attribute, None)
            if isinstance(child, AlgebraNode):
                walk(child)

    walk(tree)
    if len(joins) != 1:
        raise QueryError(
            f"expected exactly one JOIN in the global query, found {len(joins)}"
        )
    return joins[0]
