"""Wire-size estimation for transcript accounting.

The Section 6 comparison needs bytes-on-the-wire per protocol.  Rather
than defining a full serialization format for every message body, the
message bus estimates sizes structurally: cryptographic objects report
the length of their canonical encodings, containers sum their elements,
and a small per-message envelope overhead is added by the bus.

Estimates are exact for byte strings and integer ciphertexts (big-endian
length) and within an envelope constant for composites — sufficient for
the comparative shapes the paper discusses.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.crypto.ecelgamal import ECElGamalCiphertext
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.hybrid import HybridCiphertext
from repro.crypto.paillier import PaillierCiphertext
from repro.relational.partition import IndexTable
from repro.relational.relation import Relation


def _int_size(value: int) -> int:
    return max(1, (value.bit_length() + 7) // 8)


def estimate_size(body: Any) -> int:
    """Approximate serialized size of a message body in bytes."""
    if body is None:
        return 0
    if isinstance(body, bool):
        return 1
    if isinstance(body, int):
        return _int_size(body)
    if isinstance(body, (bytes, bytearray)):
        return len(body)
    if isinstance(body, str):
        return len(body.encode("utf-8"))
    if isinstance(body, HybridCiphertext):
        return body.size_bytes()
    if isinstance(body, PaillierCiphertext):
        return _int_size(body.public_key.n_squared)
    if isinstance(body, ElGamalCiphertext):
        return 2 * _int_size(body.public_key.group.p)
    if isinstance(body, ECElGamalCiphertext):
        return 4 * _int_size(body.public_key.curve.p)
    if isinstance(body, IndexTable):
        return len(body.to_bytes())
    if isinstance(body, Relation):
        from repro.relational.encoding import encode_relation

        return len(encode_relation(body))
    if isinstance(body, dict):
        return sum(
            estimate_size(key) + estimate_size(value)
            for key, value in body.items()
        )
    if isinstance(body, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in body)
    if dataclasses.is_dataclass(body) and not isinstance(body, type):
        return sum(
            estimate_size(getattr(body, field.name))
            for field in dataclasses.fields(body)
        )
    if hasattr(body, "size_bytes"):
        return int(body.size_bytes())
    # Conservative fallback: repr length (keeps accounting total, never
    # raises inside the bus).
    return len(repr(body))
