"""Credential-based access control at the datasources.

Section 2: *"Datasources base their access control decisions only on the
properties presented in the credentials.  If the presented credentials
suffice to grant data access, the datasources evaluate the partial
queries.  In case the credentials do not allow full data access, the
partial results might be filtered in order to return only those records
for which access permissions exist."*

A datasource policy is an ordered list of :class:`AccessRule` objects.
Each rule names the properties a credential set must assert and — for
row-level filtering — an optional condition restricting which rows the
rule grants.  The permitted partial result is the union of rows granted
by all satisfied rules; if no rule is satisfied the query is denied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessDenied
from repro.mediation.credentials import Credential, Property, properties_of
from repro.relational.algebra import select
from repro.relational.conditions import Condition
from repro.relational.relation import Relation


@dataclass(frozen=True)
class AccessRule:
    """Grants rows (all, or those matching ``row_condition``) to holders
    of the required properties."""

    required_properties: frozenset[Property]
    row_condition: Condition | None = None
    description: str = ""

    def satisfied_by(self, presented: frozenset[Property]) -> bool:
        return self.required_properties <= presented

    def granted_rows(self, relation: Relation) -> Relation:
        if self.row_condition is None:
            return relation
        return select(relation, self.row_condition)


@dataclass
class AccessPolicy:
    """The rule set one datasource enforces for one relation."""

    rules: list[AccessRule] = field(default_factory=list)

    def evaluate(
        self, relation: Relation, credentials: list[Credential]
    ) -> Relation:
        """The permitted partial result, or raise :class:`AccessDenied`.

        Returns the union of rows granted by every satisfied rule —
        the paper's "filtered partial result".  A satisfied rule that
        happens to grant zero rows still counts as authorization (the
        client legitimately gets an empty partial result).
        """
        presented = properties_of(credentials)
        satisfied = [rule for rule in self.rules if rule.satisfied_by(presented)]
        if not satisfied:
            raise AccessDenied(
                "presented credentials satisfy no access rule "
                f"(presented properties: {sorted(presented)})"
            )
        granted: set = set()
        for rule in satisfied:
            granted |= set(rule.granted_rows(relation).rows)
        return Relation(relation.schema, granted)


def allow_all() -> AccessPolicy:
    """A policy granting everything to any credential holder."""
    return AccessPolicy(rules=[AccessRule(frozenset(), description="allow all")])


def require(
    *properties: Property, condition: Condition | None = None, description: str = ""
) -> AccessPolicy:
    """A single-rule policy requiring the given properties."""
    return AccessPolicy(
        rules=[
            AccessRule(
                required_properties=frozenset(properties),
                row_condition=condition,
                description=description,
            )
        ]
    )
