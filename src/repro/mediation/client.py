"""The client party: key material, credentials, decryption helpers.

The client owns

* one or more RSA key pairs — public halves are embedded in credentials,
  private halves unwrap hybrid ciphertexts,
* (for private matching) one additively homomorphic key pair — the paper
  decided "that the client ... should be the only one to generate a
  public-private homomorphic key pair" (Section 5.1),
* the credential set issued by the certification authority, plus the
  identity certificates kept off the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.crypto import hybrid, rsa
from repro.crypto.engine import CryptoEngine, get_engine
from repro.crypto.homomorphic import AdditiveHomomorphicScheme, PaillierScheme
from repro.crypto.hybrid import HybridCiphertext, key_fingerprint
from repro.errors import CredentialError, DecryptionError
from repro.mediation.ca import CertificationAuthority
from repro.mediation.credentials import Credential, IdentityCertificate, Property
from repro.telemetry import tracing


@dataclass
class Client:
    """A mediation client with its complete key material."""

    name: str
    credentials: list[Credential] = field(default_factory=list)
    identity_certificates: list[IdentityCertificate] = field(default_factory=list)
    rsa_keys: dict[bytes, rsa.RSAPrivateKey] = field(default_factory=dict)
    homomorphic_scheme: AdditiveHomomorphicScheme | None = None
    homomorphic_key: Any = None

    # -- hybrid decryption -------------------------------------------------

    def decrypt_hybrid(
        self, ciphertext: HybridCiphertext, associated_data: bytes = b""
    ) -> bytes:
        """Unwrap with whichever private key matches the ciphertext."""
        for fingerprint, private_key in self.rsa_keys.items():
            if fingerprint in ciphertext.wrapped_keys:
                return hybrid.decrypt(private_key, ciphertext, associated_data)
        raise DecryptionError(
            f"client {self.name} holds no key for this hybrid ciphertext"
        )

    def decrypt_hybrid_many(
        self,
        ciphertexts: Sequence[HybridCiphertext],
        associated_data: bytes = b"",
        engine: CryptoEngine | None = None,
    ) -> list[bytes]:
        """Batch :meth:`decrypt_hybrid` through the crypto engine.

        Ciphertexts are grouped by the private key that unwraps them so
        each group decrypts in one engine batch; the result list keeps
        the input order.
        """
        with tracing.span(
            "decrypt_hybrid_many", self.name,
            kind="mediation", items=len(ciphertexts),
        ):
            return self._decrypt_hybrid_many(
                ciphertexts, associated_data, engine
            )

    def _decrypt_hybrid_many(
        self,
        ciphertexts: Sequence[HybridCiphertext],
        associated_data: bytes,
        engine: CryptoEngine | None,
    ) -> list[bytes]:
        engine = engine or get_engine()
        by_key: dict[bytes, tuple[rsa.RSAPrivateKey, list[int]]] = {}
        for position, ciphertext in enumerate(ciphertexts):
            for fingerprint, private_key in self.rsa_keys.items():
                if fingerprint in ciphertext.wrapped_keys:
                    by_key.setdefault(fingerprint, (private_key, []))[1].append(
                        position
                    )
                    break
            else:
                raise DecryptionError(
                    f"client {self.name} holds no key for this hybrid ciphertext"
                )
        plaintexts: list[bytes | None] = [None] * len(ciphertexts)
        for private_key, positions in by_key.values():
            decrypted = engine.batch_hybrid_decrypt(
                private_key,
                [ciphertexts[i] for i in positions],
                associated_data,
            )
            for position, plaintext in zip(positions, decrypted):
                plaintexts[position] = plaintext
        return plaintexts  # type: ignore[return-value]

    # -- homomorphic key -----------------------------------------------------

    @property
    def homomorphic_public_key(self) -> Any:
        """Public half distributed with the credentials (Section 5.1)."""
        if self.homomorphic_scheme is None or self.homomorphic_key is None:
            raise CredentialError(
                f"client {self.name} has no homomorphic key pair"
            )
        return self.homomorphic_scheme.public_key(self.homomorphic_key)

    def decrypt_homomorphic(self, ciphertext: Any) -> int:
        if self.homomorphic_scheme is None:
            raise CredentialError(
                f"client {self.name} has no homomorphic key pair"
            )
        return self.homomorphic_scheme.decrypt(self.homomorphic_key, ciphertext)

    def decrypt_homomorphic_many(
        self, ciphertexts: Sequence[Any], engine: CryptoEngine | None = None
    ) -> list[int]:
        """Batch :meth:`decrypt_homomorphic` through the crypto engine."""
        if self.homomorphic_scheme is None:
            raise CredentialError(
                f"client {self.name} has no homomorphic key pair"
            )
        engine = engine or get_engine()
        with tracing.span(
            "decrypt_homomorphic_many", self.name,
            kind="mediation", items=len(ciphertexts),
        ):
            return engine.batch_scheme_decrypt(
                self.homomorphic_scheme, self.homomorphic_key, ciphertexts
            )

    # -- credential selection --------------------------------------------------

    def credential_public_keys(self) -> list[rsa.RSAPublicKey]:
        seen: set[bytes] = set()
        keys = []
        for credential in self.credentials:
            fp = credential.fingerprint()
            if fp not in seen:
                seen.add(fp)
                keys.append(credential.public_key)
        return keys


def setup_client(
    ca: CertificationAuthority,
    identity: str,
    properties: set[Property],
    key_count: int = 1,
    rsa_bits: int = 1024,
    homomorphic_scheme: AdditiveHomomorphicScheme | None = None,
) -> Client:
    """The preparatory phase: generate keys, acquire credentials.

    Produces ``key_count`` RSA key pairs and one credential per key, each
    asserting the full property set (richer splits — one property per
    credential — can be assembled manually from the CA API).  When a
    homomorphic scheme is given, a homomorphic key pair is generated so
    the private-matching protocol can run.
    """
    client = Client(name=identity)
    for _ in range(key_count):
        private_key = rsa.generate_keypair(rsa_bits)
        public_key = private_key.public_key()
        client.rsa_keys[key_fingerprint(public_key)] = private_key
        client.credentials.append(ca.issue_credential(properties, public_key))
        client.identity_certificates.append(
            ca.issue_identity_certificate(identity, public_key)
        )
    if homomorphic_scheme is not None:
        client.homomorphic_scheme = homomorphic_scheme
        client.homomorphic_key = homomorphic_scheme.generate_keypair()
    return client


def default_homomorphic_scheme(key_bits: int = 512) -> PaillierScheme:
    """The paper's default: Paillier."""
    return PaillierScheme(key_bits)
