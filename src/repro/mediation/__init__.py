"""The Multimedia Mediator (MMM) architecture substrate.

* :mod:`~repro.mediation.network` — instrumented in-memory message bus
* :mod:`~repro.mediation.credentials` / :mod:`~repro.mediation.ca` —
  property credentials and the certification authority
* :mod:`~repro.mediation.access_control` — credential-based policies
* :mod:`~repro.mediation.client` — the querying client
* :mod:`~repro.mediation.mediator` — localization and decomposition
* :mod:`~repro.mediation.datasource` — data owners with access control
"""

from repro.mediation.ca import CertificationAuthority
from repro.mediation.client import Client, setup_client
from repro.mediation.datasource import DataSource
from repro.mediation.mediator import Mediator
from repro.mediation.network import Network

__all__ = [
    "CertificationAuthority",
    "Client",
    "DataSource",
    "Mediator",
    "Network",
    "setup_client",
]
