"""Network cost models: estimating transfer time from transcripts.

The paper's motivating deployment is *inter-enterprise* — "a dynamic
environment with several loosely coupled participants" — where links are
WANs, not a lab LAN.  The in-process bus measures messages and bytes
exactly; a :class:`NetworkCostModel` converts those into estimated
transfer seconds under a latency/bandwidth model:

    transfer(link) = messages(link) * latency + bytes(link) / bandwidth

This matters for the Section 6 ranking: on a LAN, byte volume dominates
and the commutative protocol's lean payloads win outright; on a
high-latency WAN the *round* counts gain weight, and DAS — whose
datasources "only have to send data once" — claws back ground.  The
cost-model benchmark quantifies that shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.mediation.network import Network


@dataclass(frozen=True)
class NetworkCostModel:
    """Per-message latency and per-byte bandwidth of every link."""

    name: str
    latency_seconds: float
    bandwidth_bytes_per_second: float

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ParameterError("latency must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ParameterError("bandwidth must be positive")

    def message_cost(self, size_bytes: int) -> float:
        """Estimated seconds to deliver one message."""
        return self.latency_seconds + size_bytes / self.bandwidth_bytes_per_second

    def transcript_cost(self, network: Network) -> float:
        """Total transfer seconds of a transcript, serialized.

        Messages are costed one after another — the protocols here are
        sequential (every step waits for the previous one), so serial
        accumulation matches the actual dependency chain.
        """
        return sum(
            self.message_cost(message.size_bytes)
            for message in network.transcript
        )

    def link_cost(self, network: Network, a: str, b: str) -> float:
        """Transfer seconds attributable to one (undirected) link."""
        return sum(
            self.message_cost(message.size_bytes)
            for message in network.transcript
            if {message.sender, message.receiver} == {a, b}
        )


#: 10 GbE datacenter link: negligible latency, very high bandwidth.
LAN = NetworkCostModel(
    name="lan", latency_seconds=0.0002,
    bandwidth_bytes_per_second=1.25e9,
)

#: Inter-enterprise WAN: tens of ms latency, ~100 Mbit/s.
WAN = NetworkCostModel(
    name="wan", latency_seconds=0.04,
    bandwidth_bytes_per_second=12.5e6,
)

#: Consumer internet / mobile: high latency, modest uplink.
INTERNET = NetworkCostModel(
    name="internet", latency_seconds=0.1,
    bandwidth_bytes_per_second=2.5e6,
)

PRESETS = {model.name: model for model in (LAN, WAN, INTERNET)}
