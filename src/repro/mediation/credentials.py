"""Credentials: property assertions bound to client public keys.

Section 2: *"Each credential links properties of the client to one of
his public encryption keys but in general does not contain details on
his identity; the client keeps other certificates linking his identity
to each public key in a safe place to enable identification in case it
is needed."*

A :class:`Credential` therefore carries a set of property name/value
pairs and one RSA public encryption key, signed by the certification
authority.  The separate :class:`IdentityCertificate` binds the client's
identity to the same key and never travels with queries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto import rsa
from repro.crypto.hybrid import key_fingerprint
from repro.errors import CredentialError

#: A property is a (name, value) assertion, e.g. ("role", "physician").
Property = tuple[str, str]


def _canonical_properties(properties: frozenset[Property]) -> list[list[str]]:
    return sorted([name, value] for name, value in properties)


@dataclass(frozen=True)
class Credential:
    """A CA-signed binding of properties to a public encryption key."""

    properties: frozenset[Property]
    public_key: rsa.RSAPublicKey
    issuer: str
    signature: bytes

    def signed_payload(self) -> bytes:
        """Canonical bytes covered by the CA signature."""
        return credential_payload(self.properties, self.public_key, self.issuer)

    def fingerprint(self) -> bytes:
        return key_fingerprint(self.public_key)

    def has_property(self, name: str, value: str) -> bool:
        return (name, value) in self.properties

    def property_value(self, name: str) -> str | None:
        for candidate, value in self.properties:
            if candidate == name:
                return value
        return None

    def __repr__(self) -> str:
        props = ", ".join(f"{n}={v}" for n, v in _canonical_properties(self.properties))
        return f"Credential({props}; key={self.fingerprint().hex()[:8]})"


def credential_payload(
    properties: frozenset[Property],
    public_key: rsa.RSAPublicKey,
    issuer: str,
) -> bytes:
    """Canonical serialization of credential contents for signing."""
    return json.dumps(
        {
            "type": "credential",
            "issuer": issuer,
            "properties": _canonical_properties(properties),
            "key": {"n": public_key.n, "e": public_key.e},
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


@dataclass(frozen=True)
class IdentityCertificate:
    """Binds a client identity to a public key — kept off the wire."""

    identity: str
    public_key: rsa.RSAPublicKey
    issuer: str
    signature: bytes

    def signed_payload(self) -> bytes:
        return identity_payload(self.identity, self.public_key, self.issuer)


def identity_payload(
    identity: str, public_key: rsa.RSAPublicKey, issuer: str
) -> bytes:
    return json.dumps(
        {
            "type": "identity",
            "issuer": issuer,
            "identity": identity,
            "key": {"n": public_key.n, "e": public_key.e},
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def properties_of(credentials: list[Credential]) -> frozenset[Property]:
    """Union of all properties asserted by a credential set."""
    result: set[Property] = set()
    for credential in credentials:
        result |= credential.properties
    return frozenset(result)


def public_keys_of(credentials: list[Credential]) -> list[rsa.RSAPublicKey]:
    """Distinct public keys presented by a credential set (stable order)."""
    seen: set[bytes] = set()
    keys = []
    for credential in credentials:
        fp = credential.fingerprint()
        if fp not in seen:
            seen.add(fp)
            keys.append(credential.public_key)
    if not keys:
        raise CredentialError("credential set presents no public keys")
    return keys
