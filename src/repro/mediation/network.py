"""The in-process message bus and transcript recorder.

The MMM prototype is a distributed system; for fast in-process runs the
transport is an instrumented bus that preserves what the protocols
depend on — *who* sends *what* to *whom*, in *which order* — and
additionally records the full ordered transcript, per-party views,
per-message size estimates, and per-party-pair message counts.

All of that bookkeeping lives in the shared
:class:`~repro.transport.base.Transport` base class, which this bus and
the real TCP transport (:class:`repro.transport.tcp.TcpTransport`) both
implement; protocols and analyses run unchanged over either.  The bus
remains the default carrier: it needs no sockets, and its structural
size estimates (:mod:`repro.mediation.sizing`) are close to — and
reconciled by test against — the TCP codec's actual wire bytes.

Parties must be registered before they can send or receive; unknown
endpoints raise :class:`~repro.errors.NetworkError` — a datasource that
"goes away" mid-protocol surfaces as a clean failure.
"""

from __future__ import annotations

from typing import Any

from repro.mediation.sizing import estimate_size
from repro.telemetry import tracing
from repro.transport.base import (  # re-exported for compatibility
    Message,
    PartyView,
    Transport,
    link_traffic_table,
)

#: Fixed per-message envelope overhead (headers, routing) in bytes.
#:
#: Reconciled against the real wire format (see ``docs/transport.md``
#: and ``tests/transport/test_sizing_reconciliation.py``): the TCP
#: codec's envelope costs ``FRAME_HEADER_BYTES`` (8) for the frame
#: header plus the encoded ``(sequence, sender, receiver, kind)``
#: prefix — roughly 40-70 bytes for the party and kind names the
#: protocols use.  64 stays a faithful structural constant.
ENVELOPE_BYTES = 64

__all__ = [
    "ENVELOPE_BYTES",
    "Message",
    "Network",
    "PartyView",
    "Transport",
    "link_traffic_table",
]


class Network(Transport):
    """The in-process bus: immediate delivery, estimated byte counts."""

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Deliver one message and record it in views and transcript."""
        self._require_parties(sender, receiver)
        with tracing.span(
            f"send:{kind}", sender, kind="message", receiver=receiver
        ) as span:
            message = self._record(
                self._take_sequence(),
                sender,
                receiver,
                kind,
                body,
                ENVELOPE_BYTES + estimate_size(body),
            )
            if span is not None:
                span.attributes["size_bytes"] = message.size_bytes
                span.attributes["sequence"] = message.sequence
            return message
