"""The in-memory message bus and transcript recorder.

The MMM prototype is a distributed system; for reproduction we replace
the transport with an instrumented in-process bus that preserves what the
protocols depend on — *who* sends *what* to *whom*, in *which order* —
and additionally records:

* the full ordered transcript (for Listing 1-4 conformance checks),
* per-party **views** — everything a semi-honest party observes: the
  messages it sent and received (leakage analysis reads the mediator's
  view to reproduce Table 1),
* per-message size estimates (bytes-on-the-wire comparison, E6),
* per-party-pair message counts (interaction comparison, E5).

Parties must be registered before they can send or receive; unknown
endpoints raise :class:`~repro.errors.NetworkError` — a datasource that
"goes away" mid-protocol surfaces as a clean failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import NetworkError
from repro.mediation.sizing import estimate_size

#: Fixed per-message envelope overhead (headers, routing) in bytes.
ENVELOPE_BYTES = 64


@dataclass(frozen=True)
class Message:
    """One transmitted message."""

    sequence: int
    sender: str
    receiver: str
    kind: str
    body: Any = field(repr=False)
    size_bytes: int

    def summary(self) -> str:
        return (
            f"#{self.sequence:03d} {self.sender} -> {self.receiver}: "
            f"{self.kind} ({self.size_bytes} B)"
        )


@dataclass
class PartyView:
    """What one semi-honest party observes during a protocol run.

    The *view* is the formal object of semi-honest security analyses:
    a party may try to infer anything computable from its view, but acts
    exactly as the protocol prescribes.
    """

    party: str
    sent: list[Message] = field(default_factory=list)
    received: list[Message] = field(default_factory=list)
    notes: dict[str, Any] = field(default_factory=dict)

    def observed_messages(self) -> list[Message]:
        return sorted(self.sent + self.received, key=lambda m: m.sequence)

    def received_kinds(self) -> list[str]:
        return [message.kind for message in self.received]


class Network:
    """Registry of parties plus the shared transcript."""

    def __init__(self) -> None:
        self._parties: dict[str, PartyView] = {}
        self._messages: list[Message] = []
        self._sequence = itertools.count(1)

    # -- registration -----------------------------------------------------

    def register(self, party: str) -> None:
        if party in self._parties:
            raise NetworkError(f"party {party!r} already registered")
        self._parties[party] = PartyView(party)

    def parties(self) -> tuple[str, ...]:
        return tuple(self._parties)

    def view(self, party: str) -> PartyView:
        if party not in self._parties:
            raise NetworkError(f"unknown party {party!r}")
        return self._parties[party]

    # -- transmission -------------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Deliver one message and record it in views and transcript."""
        if sender not in self._parties:
            raise NetworkError(f"unknown sender {sender!r}")
        if receiver not in self._parties:
            raise NetworkError(f"unknown receiver {receiver!r}")
        message = Message(
            sequence=next(self._sequence),
            sender=sender,
            receiver=receiver,
            kind=kind,
            body=body,
            size_bytes=ENVELOPE_BYTES + estimate_size(body),
        )
        self._messages.append(message)
        self._parties[sender].sent.append(message)
        self._parties[receiver].received.append(message)
        return message

    # -- transcript queries ---------------------------------------------------

    @property
    def transcript(self) -> tuple[Message, ...]:
        return tuple(self._messages)

    def messages_from(self, sender: str, receiver: str | None = None) -> list[Message]:
        return [
            m
            for m in self._messages
            if m.sender == sender and (receiver is None or m.receiver == receiver)
        ]

    def messages_of_kind(self, kind: str) -> list[Message]:
        return [m for m in self._messages if m.kind == kind]

    def total_bytes(self) -> int:
        return sum(m.size_bytes for m in self._messages)

    def bytes_between(self, a: str, b: str) -> int:
        """Total traffic on the (undirected) link between two parties."""
        return sum(
            m.size_bytes
            for m in self._messages
            if {m.sender, m.receiver} == {a, b}
        )

    def interaction_count(self, a: str, b: str) -> int:
        """Number of *interactions* of ``a`` with ``b``.

        Following Section 6's usage ("the client has to interact twice
        with the mediator"), an interaction is a maximal run of
        consecutive messages (in transcript order, restricted to the
        a<->b link) initiated by ``a``: the client sending the query is
        one interaction; receiving the reply and sending the next request
        starts the second.
        """
        link = [m for m in self._messages if {m.sender, m.receiver} == {a, b}]
        interactions = 0
        previous_sender = None
        for message in link:
            if message.sender == a and previous_sender != a:
                interactions += 1
            previous_sender = message.sender
        return interactions

    def flow_summary(self) -> list[str]:
        """Human-readable transcript (used by the architecture bench)."""
        return [message.summary() for message in self._messages]

    def edges(self) -> set[tuple[str, str]]:
        """Undirected communication edges (the Figure 1/2 topology)."""
        return {
            tuple(sorted((m.sender, m.receiver))) for m in self._messages
        }


def link_traffic_table(network: Network, pairs: Iterable[tuple[str, str]]) -> dict:
    """Bytes per link, for reporting."""
    return {f"{a}<->{b}": network.bytes_between(a, b) for a, b in pairs}
