"""The datasource party: relations, access control, query execution.

A datasource holds named relations, a per-relation access policy, and
the CA verification key.  On receiving a partial query with a credential
subset it (1) verifies every credential signature, (2) evaluates the
policy over the asserted properties, and (3) executes the partial query
over the *permitted* rows — so, as Section 6 stresses, "even if the
client receives a superset of the global result ... he never receives
data he is not allowed to read".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Iterable, Sequence

from repro.crypto import rsa
from repro.crypto.engine import CryptoEngine, get_engine
from repro.errors import AccessDenied, CredentialError, QueryError, StorageError
from repro.mediation.access_control import AccessPolicy, allow_all
from repro.mediation.ca import verify_credential
from repro.mediation.credentials import Credential
from repro.relational.algebra import PartialQuery
from repro.relational.relation import Relation, Row
from repro.session import SessionRegistry, current_session_id
from repro.storage.base import IndexCache, StorageBackend
from repro.telemetry import tracing


@dataclass
class DataSource:
    """One contracted datasource of the mediator."""

    name: str
    relations: dict[str, Relation] = field(default_factory=dict)
    policies: dict[str, AccessPolicy] = field(default_factory=dict)
    ca_key: rsa.RSAPublicKey | None = None
    #: Property names this source's policies refer to; the mediator uses
    #: this to select the credential subset CR_i it forwards.
    relevant_property_names: frozenset[str] = frozenset()
    #: Lazily generated keypair — only needed by the DAS *source setting*,
    #: where the translating source receives the opposite index table
    #: encrypted for itself.
    _keypair: rsa.RSAPrivateKey | None = field(default=None, repr=False)
    #: Per-session verified-credential cache: within one mediation
    #: session a credential whose CA signature already verified is not
    #: re-verified on every partial query.  Keyed by session so the
    #: cache can never launder a credential across clients; session-less
    #: calls always verify (the legacy behaviour).
    sessions: SessionRegistry = field(
        default_factory=lambda: SessionRegistry(capacity=256), repr=False
    )
    #: Optional storage backend.  When set, relations persist in the
    #: backend (selection pushdown executes there) and the protocols
    #: amortize encrypted-index material across queries via
    #: :meth:`index_cache`.  ``None`` keeps the original pure in-memory
    #: data plane.
    storage: StorageBackend | None = field(default=None, repr=False)
    _index_cache: IndexCache | None = field(default=None, repr=False)

    def ensure_keypair(self, bits: int = 1024) -> rsa.RSAPublicKey:
        """The source's own public encryption key (generated on demand)."""
        if self._keypair is None:
            self._keypair = rsa.generate_keypair(bits)
        return self._keypair.public_key()

    def private_key(self) -> rsa.RSAPrivateKey:
        if self._keypair is None:
            raise CredentialError(
                f"datasource {self.name} has no keypair; call ensure_keypair"
            )
        return self._keypair

    def add_relation(
        self, relation: Relation, policy: AccessPolicy | None = None
    ) -> None:
        self.relations[relation.name] = relation
        self.policies[relation.name] = policy or allow_all()
        names = {
            name
            for rule in self.policies[relation.name].rules
            for name, _ in rule.required_properties
        }
        self.relevant_property_names = self.relevant_property_names | names
        if self.storage is not None:
            # Persisting identical content is a no-op that keeps the
            # encrypted-index caches warm across process restarts;
            # changed content invalidates them (see StorageBackend).
            self.storage.store_relation(self.name, relation)

    # -- storage ----------------------------------------------------------

    def attach_storage(self, backend: StorageBackend) -> None:
        """Bind a storage backend and persist the current relations."""
        self.storage = backend
        self._index_cache = None
        for relation in self.relations.values():
            backend.store_relation(self.name, relation)

    def index_cache(self) -> IndexCache | None:
        """The soft-failure encrypted-index cache, or ``None`` when no
        backend is attached (protocols then recompute everything)."""
        if self.storage is None:
            return None
        if self._index_cache is None:
            self._index_cache = IndexCache(self.storage, self.name)
        return self._index_cache

    def rotate_keys(self) -> int:
        """Rotate this source's protocol keys: bump the key epoch.

        Cached index material (commutative keys/tags/double-encryptions,
        tuple ciphertexts, polynomial coefficients) written under the
        old epoch is dropped; the next query regenerates everything
        under fresh keys.  Without storage this is a no-op (keys are
        fresh per query anyway).
        """
        if self.storage is None:
            return 0
        return self.storage.bump_key_epoch(self.name)

    # -- row mutations -----------------------------------------------------

    def _replace_relation(self, name: str, rows: Iterable[Row]) -> Relation:
        if name not in self.relations:
            raise QueryError(f"datasource {self.name} does not manage {name!r}")
        updated = Relation(self.relations[name].schema, rows)
        self.relations[name] = updated
        if self.storage is not None:
            # A changed row set invalidates the relation's cache entries.
            self.storage.store_relation(self.name, updated)
        return updated

    def insert_rows(self, name: str, rows: Iterable[Sequence]) -> Relation:
        """Insert rows (set semantics); invalidates the relation's caches."""
        current = self.relations.get(name)
        if current is None:
            raise QueryError(f"datasource {self.name} does not manage {name!r}")
        return self._replace_relation(
            name, list(current.rows) + [tuple(row) for row in rows]
        )

    def delete_rows(self, name: str, rows: Iterable[Sequence]) -> Relation:
        """Delete exact rows; invalidates the relation's caches."""
        current = self.relations.get(name)
        if current is None:
            raise QueryError(f"datasource {self.name} does not manage {name!r}")
        doomed = {tuple(row) for row in rows}
        return self._replace_relation(
            name, [row for row in current.rows if row not in doomed]
        )

    def update_row(self, name: str, old_row: Sequence, new_row: Sequence) -> Relation:
        """Replace one row; invalidates the relation's caches."""
        current = self.relations.get(name)
        if current is None:
            raise QueryError(f"datasource {self.name} does not manage {name!r}")
        old = tuple(old_row)
        if old not in current:
            raise QueryError(f"row {old!r} not present in {name!r}")
        rows = [row for row in current.rows if row != old] + [tuple(new_row)]
        return self._replace_relation(name, rows)

    def check_credentials(
        self,
        credentials: list[Credential],
        engine: CryptoEngine | None = None,
    ) -> list[Credential]:
        """Signature-verify the presented credentials; drop invalid ones.

        An empty *valid* set is an authorization failure (raised later by
        the policy), but a *tampered* credential is a hard error — the
        paper's datasources only ever act on CA-certified properties.
        Verification of the whole set runs as one crypto-engine batch.

        Inside a session scope, signatures that already verified in the
        same session are skipped (keyed by the CA signature bytes, which
        cover the full canonical payload — any tampering changes the
        key and forces a fresh verification).
        """
        if self.ca_key is None:
            raise CredentialError(f"datasource {self.name} has no CA key")
        verified = self._session_verified()
        pending = (
            credentials
            if verified is None
            else [c for c in credentials if c.signature not in verified]
        )
        if pending:
            engine = engine or get_engine()
            verdicts = engine.map_batch(
                verify_credential,
                [(credential, self.ca_key) for credential in pending],
            )
            if not all(verdicts):
                raise CredentialError(
                    f"datasource {self.name}: credential signature invalid"
                )
            if verified is not None:
                verified.update(credential.signature for credential in pending)
        return list(credentials)

    def _session_verified(self) -> set[bytes] | None:
        """The current session's verified-signature set, or None outside
        any session scope (no caching then)."""
        session_id = current_session_id()
        if session_id is None:
            return None
        session = self.sessions.get(session_id)
        with session.lock:
            return session.state.setdefault("verified_signatures", set())

    def execute_partial_query(
        self, query: PartialQuery, credentials: list[Credential]
    ) -> Relation:
        """Listing 1 step 4: check credentials, execute ``q_i`` -> ``R_i``."""
        with tracing.span(
            "execute_partial_query", self.name,
            kind="mediation", relation=query.relation_name,
        ):
            if query.relation_name not in self.relations:
                raise QueryError(
                    f"datasource {self.name} does not manage "
                    f"{query.relation_name!r}"
                )
            valid = self.check_credentials(credentials)
            policy = self.policies[query.relation_name]
            # Selection pushdown: the WHERE clause executes inside the
            # storage backend (compiled to SQL on SQLite).  Access rules
            # are row filters, so policy and selection commute — the
            # policy then runs over the (usually much smaller) selected
            # rows.  A failing backend degrades to the in-memory path.
            selected: Relation | None = None
            if self.storage is not None:
                try:
                    selected = self.storage.select(
                        self.name, query.relation_name, query.condition
                    )
                except StorageError:
                    cache = self.index_cache()
                    if cache is not None:
                        cache.stats.errors += 1
                    selected = None
            try:
                if selected is not None:
                    return policy.evaluate(selected, valid)
                permitted = policy.evaluate(
                    self.relations[query.relation_name], valid
                )
            except AccessDenied as denial:
                raise AccessDenied(
                    f"datasource {self.name} denied {query.sql!r}: {denial}"
                ) from denial
            return query.evaluate({query.relation_name: permitted})
