"""The trusted certification authority of the preparatory phase.

The CA signs credentials (property -> public key bindings) and identity
certificates with RSA-PSS.  Datasources verify credential signatures
against the CA's public key before basing access-control decisions on
the asserted properties — a forged or tampered credential is rejected,
which the failure-injection tests exercise.
"""

from __future__ import annotations

from repro.crypto import rsa
from repro.errors import CredentialError
from repro.mediation.credentials import (
    Credential,
    IdentityCertificate,
    Property,
    credential_payload,
    identity_payload,
)


class CertificationAuthority:
    """Issues and verifies credentials and identity certificates."""

    def __init__(self, name: str = "CA", key_bits: int = 1024) -> None:
        self.name = name
        self._signing_key = rsa.generate_keypair(key_bits)

    @property
    def verification_key(self) -> rsa.RSAPublicKey:
        """The public key every datasource holds to check signatures."""
        return self._signing_key.public_key()

    def issue_credential(
        self,
        properties: set[Property] | frozenset[Property],
        public_key: rsa.RSAPublicKey,
    ) -> Credential:
        """Sign a binding of ``properties`` to ``public_key``."""
        if not properties:
            raise CredentialError("a credential must assert at least one property")
        properties = frozenset(properties)
        payload = credential_payload(properties, public_key, self.name)
        signature = rsa.pss_sign(self._signing_key, payload)
        return Credential(
            properties=properties,
            public_key=public_key,
            issuer=self.name,
            signature=signature,
        )

    def issue_identity_certificate(
        self, identity: str, public_key: rsa.RSAPublicKey
    ) -> IdentityCertificate:
        """Sign an identity -> key binding (kept by the client)."""
        payload = identity_payload(identity, public_key, self.name)
        signature = rsa.pss_sign(self._signing_key, payload)
        return IdentityCertificate(
            identity=identity,
            public_key=public_key,
            issuer=self.name,
            signature=signature,
        )


def verify_credential(
    credential: Credential, verification_key: rsa.RSAPublicKey
) -> bool:
    """Check a credential's CA signature (boolean, never raises)."""
    return rsa.pss_verify(
        verification_key, credential.signed_payload(), credential.signature
    )


def verify_identity_certificate(
    certificate: IdentityCertificate, verification_key: rsa.RSAPublicKey
) -> bool:
    return rsa.pss_verify(
        verification_key, certificate.signed_payload(), certificate.signature
    )
