"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so that
callers can catch one base class.  Subclasses are grouped by subsystem:
cryptography, relational model, mediation architecture, and protocol
execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """A key is malformed, mismatched, or unusable for the operation.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`KeyError`.
    """


class ParameterError(CryptoError):
    """Cryptographic domain parameters are invalid (bad prime, size, ...)."""


class EncryptionError(CryptoError):
    """Encryption could not be performed (e.g. plaintext out of range)."""


class DecryptionError(CryptoError):
    """Decryption failed: wrong key, corrupted or tampered ciphertext."""


class IntegrityError(DecryptionError):
    """A MAC or checksum did not verify; the ciphertext was tampered with."""


class EncodingError(CryptoError):
    """A value cannot be encoded into (or decoded from) the message space."""


# ---------------------------------------------------------------------------
# Relational model
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for relational-model failures."""


class SchemaError(RelationalError):
    """Schema mismatch: unknown attribute, wrong arity, incompatible types."""


class QueryError(RelationalError):
    """A query is malformed or cannot be decomposed/translated."""


class PartitionError(RelationalError):
    """Domain partitioning is invalid (gaps, overlaps, empty buckets)."""


# ---------------------------------------------------------------------------
# Mediation architecture
# ---------------------------------------------------------------------------

class MediationError(ReproError):
    """Base class for mediation-architecture failures."""


class AccessDenied(MediationError):
    """A datasource rejected a query because credentials were insufficient."""


class CredentialError(MediationError):
    """A credential is malformed, expired, or its signature fails."""


class NetworkError(MediationError):
    """Transport failure: unknown party or undeliverable message on the
    bus; refused connection, acknowledgement timeout, handshake
    mismatch, or mid-protocol disconnect on the TCP transport.

    Contract (tested): every NetworkError raised by a TCP transport
    operation names the remote host, port, and the timeout budget that
    governed the failed wait, so an operator can act on the message
    without consulting the transport configuration.
    """


class ServerBusy(NetworkError):
    """An endpoint rejected a new session for lack of capacity.

    The receiver half of transport backpressure: a ``PartyServer`` at
    its ``max_sessions`` admission limit answers the first message of a
    new session with a BUSY frame instead of an acknowledgement.  The
    TCP transport backs off under its :class:`RetryPolicy` and, once
    attempts are exhausted, surfaces this type — so hardened callers
    can distinguish "overloaded, try later" from a dead peer while
    still catching it as a :class:`NetworkError`.
    """


class DeadlineExceeded(NetworkError):
    """A propagated run deadline expired before the operation finished.

    Raised instead of starting (or while waiting on) a transport call
    once the :class:`repro.deadline.Deadline` installed by the runner
    has no budget left.
    """


class FaultInjectedError(NetworkError):
    """A failure deliberately injected by a fault plan.

    Subclasses NetworkError so hardened code paths treat injected
    faults exactly like organic transport failures; tests can still
    tell them apart.  ``retryable`` mirrors whether the underlying
    fault models a transient condition (a dropped or garbled message)
    or a permanent one (a crashed party).
    """

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class ProtocolError(MediationError):
    """A protocol step was violated (wrong message, wrong order, bad state)."""


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------

class CodecError(ReproError):
    """Base class for wire-format failures in :mod:`repro.transport.codec`.

    The codec's contract (fuzz-tested): any byte string — truncated,
    corrupted, oversized, or adversarial — fed to a decode entry point
    either decodes cleanly or raises a CodecError subclass.  It never
    hangs, never trips an ``assert``, and never returns garbage that
    only fails later.
    """


class ValueCodecError(CodecError, EncodingError):
    """A value tree cannot be encoded to — or decoded from — the wire.

    Also subclasses :class:`EncodingError` so pre-existing callers that
    caught the crypto-side encoding error keep working.
    """


class FrameCodecError(CodecError, NetworkError):
    """A frame is malformed: bad magic, version, type, or length.

    Also subclasses :class:`NetworkError` because a garbled frame is
    indistinguishable from a broken transport to the receiving side.
    """


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """A storage backend operation failed (I/O error, bad spec, corrupt
    persisted state).

    Protocol code treats index-cache failures as soft: a raised
    StorageError during a cache read/write degrades to recomputing the
    encrypted index, it never fails the query.  Failures while loading
    *rows* (the authoritative data) are hard errors.
    """


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class TelemetryError(ReproError):
    """Invalid telemetry usage: bad metric/label name, kind conflict,
    malformed span record or snapshot, unknown log level."""
