"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so that
callers can catch one base class.  Subclasses are grouped by subsystem:
cryptography, relational model, mediation architecture, and protocol
execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """A key is malformed, mismatched, or unusable for the operation.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`KeyError`.
    """


class ParameterError(CryptoError):
    """Cryptographic domain parameters are invalid (bad prime, size, ...)."""


class EncryptionError(CryptoError):
    """Encryption could not be performed (e.g. plaintext out of range)."""


class DecryptionError(CryptoError):
    """Decryption failed: wrong key, corrupted or tampered ciphertext."""


class IntegrityError(DecryptionError):
    """A MAC or checksum did not verify; the ciphertext was tampered with."""


class EncodingError(CryptoError):
    """A value cannot be encoded into (or decoded from) the message space."""


# ---------------------------------------------------------------------------
# Relational model
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for relational-model failures."""


class SchemaError(RelationalError):
    """Schema mismatch: unknown attribute, wrong arity, incompatible types."""


class QueryError(RelationalError):
    """A query is malformed or cannot be decomposed/translated."""


class PartitionError(RelationalError):
    """Domain partitioning is invalid (gaps, overlaps, empty buckets)."""


# ---------------------------------------------------------------------------
# Mediation architecture
# ---------------------------------------------------------------------------

class MediationError(ReproError):
    """Base class for mediation-architecture failures."""


class AccessDenied(MediationError):
    """A datasource rejected a query because credentials were insufficient."""


class CredentialError(MediationError):
    """A credential is malformed, expired, or its signature fails."""


class NetworkError(MediationError):
    """Transport failure: unknown party or undeliverable message on the
    bus; refused connection, acknowledgement timeout, handshake
    mismatch, or mid-protocol disconnect on the TCP transport."""


class ProtocolError(MediationError):
    """A protocol step was violated (wrong message, wrong order, bad state)."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class TelemetryError(ReproError):
    """Invalid telemetry usage: bad metric/label name, kind conflict,
    malformed span record or snapshot, unknown log level."""
