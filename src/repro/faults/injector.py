"""The seeded engine that decides *when* a plan's rules fire.

A :class:`FaultInjector` is shared by every injection site of one run
(a :class:`~repro.faults.transport.FaultyTransport`, one or more
:class:`~repro.faults.proxy.ChaosProxy` instances): each site reports
every delivery attempt it observes, and the injector — under a lock,
with a private ``random.Random(plan.seed)`` — decides which rules fire.
All trigger state (per-rule match and trigger counters, the probability
RNG, the event log) lives here, so a plan behaves identically whether
its rules are enacted in-process or at a socket boundary.

Every fired rule is appended to :attr:`FaultInjector.events` (the
deterministic, timestamp-free log that replays byte-identically), and —
when telemetry is installed — emitted as a ``fault:<action>`` span and
a ``repro_faults_injected_total`` counter increment, so injected chaos
is visible in the same trace as the protocol it disturbed.
"""

from __future__ import annotations

import random
import threading

from repro.faults.plan import SITE_ACTIONS, FaultEvent, FaultPlan, FaultRule
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry

#: Counter of injected faults, labelled by action and site.
FAULTS_INJECTED_METRIC = "repro_faults_injected_total"


class FaultInjector:
    """Deterministic trigger engine for one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: list[FaultEvent] = []
        #: Private probability source — seeded, and never shared with
        #: the protocols' shuffle randomness, so injecting faults does
        #: not change what an unaffected run computes.
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._matches = [0] * len(plan.rules)
        self._triggers = [0] * len(plan.rules)

    def observe(
        self,
        site: str,
        sender: str,
        receiver: str,
        kind: str,
        session: str | None = None,
    ) -> list[FaultRule]:
        """Report one delivery attempt; returns the rules that fire.

        Every attempt counts — a retried message is a fresh observation,
        so an ``occurrence=N`` rule that already fired does not re-fire
        on the retry it caused.  ``session`` is the observed session id
        (if any); session-scoped rules only match their own session.
        """
        if site not in SITE_ACTIONS:
            raise ValueError(f"unknown injection site {site!r}")
        fired: list[FaultRule] = []
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if rule.action not in SITE_ACTIONS[site]:
                    continue
                if not rule.matches(sender, receiver, kind, session):
                    continue
                self._matches[index] += 1
                if not self._should_fire(index, rule):
                    continue
                self._triggers[index] += 1
                event = FaultEvent(
                    index=len(self.events),
                    rule=index,
                    action=rule.action,
                    site=site,
                    sender=sender,
                    receiver=receiver,
                    kind=kind,
                    occurrence=self._matches[index],
                    detail=self._detail(rule),
                    session=rule.session or "",
                )
                self.events.append(event)
                fired.append(rule)
                self._emit(event)
        return fired

    def _should_fire(self, index: int, rule: FaultRule) -> bool:
        if rule.max_triggers and self._triggers[index] >= rule.max_triggers:
            return False
        if rule.occurrence is not None:
            if self._matches[index] != rule.occurrence:
                return False
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return False
        return True

    @staticmethod
    def _detail(rule: FaultRule) -> str:
        if rule.action == "delay":
            return f"delay={rule.delay_seconds}s"
        if rule.action == "crash":
            return f"victim={rule.crash_target}"
        return ""

    def _emit(self, event: FaultEvent) -> None:
        """Surface one fired fault in the installed telemetry."""
        with tracing.span(
            f"fault:{event.action}",
            "fault-injector",
            kind="fault",
            site=event.site,
            sender=event.sender,
            receiver=event.receiver,
            message_kind=event.kind,
            rule=event.rule,
        ):
            pass
        registry = get_registry()
        if registry is not None:
            registry.counter(
                FAULTS_INJECTED_METRIC,
                {"action": event.action, "site": event.site},
                help_text="Faults injected by the active fault plan",
            ).inc()

    # -- the deterministic log ---------------------------------------------

    def event_log(self) -> list[FaultEvent]:
        with self._lock:
            return list(self.events)

    def event_log_text(self) -> str:
        """One line per event — byte-identical across same-seed runs."""
        return "\n".join(event.summary() for event in self.event_log())
