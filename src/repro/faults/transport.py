"""A fault-injecting decorator for any :class:`~repro.transport.base.Transport`.

:class:`FaultyTransport` wraps a real carrier — the in-process bus or
the TCP transport — and consults a shared
:class:`~repro.faults.injector.FaultInjector` on every delivery
attempt.  All transcript, view, and sequence state lives in the wrapped
transport (attribute access falls through to it), so analyses and
protocols see exactly one transport; the decorator only decides whether
each attempt is delayed, lost, garbled, or interrupted by a crash.

Failure semantics mirror the hardened TCP transport:

* ``drop`` and ``corrupt`` model transient in-flight loss — the
  decorator retries them itself (bounded attempts), so a survivable
  plan converges to the fault-free result on *any* carrier, including
  the bus, which has no retry of its own.
* ``crash`` is permanent: the victim is marked dead (every later
  message touching it fails immediately), and when the carrier hosts a
  real endpoint for the victim it is actually killed
  (:meth:`~repro.transport.tcp.TcpTransport.crash_party`), so the port
  goes dark too.
* every failure surfaces as :class:`~repro.errors.FaultInjectedError`,
  a :class:`~repro.errors.NetworkError` — hardened callers cannot tell
  injected chaos from organic failure.
"""

from __future__ import annotations

import time
from typing import Any

from repro.deadline import check_deadline
from repro.errors import FaultInjectedError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent
from repro.session import current_session_id
from repro.transport.base import Message, Transport

#: How a transient in-flight fault reads in the raised error.
_TRANSIENT = {"drop": "dropped", "corrupt": "corrupted"}


class FaultyTransport(Transport):
    """Wrap ``inner`` and inject the faults ``injector`` decides on."""

    def __init__(
        self,
        inner: Transport,
        injector: FaultInjector,
        *,
        attempts: int = 4,
    ) -> None:
        # No super().__init__(): this decorator owns no transcript of
        # its own — _parties/_messages/_sequence resolve through
        # __getattr__ to the wrapped transport, keeping one shared
        # source of truth for every observable.
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self._inner = inner
        self.injector = injector
        self._attempts = attempts
        self._crashed: set[str] = set()

    def __getattr__(self, name: str) -> Any:
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- delegated lifecycle -------------------------------------------------

    def register(self, party: str) -> None:
        self._inner.register(party)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "FaultyTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fault-aware delivery --------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Deliver through the wrapped transport, injecting faults.

        Transient faults (drop, corrupt) are retried up to ``attempts``
        times; each retry is a fresh observation for the injector, so
        occurrence-based rules do not re-fire on the retry they caused.
        """
        for attempt in range(self._attempts):
            check_deadline(f"send of {kind!r} from {sender!r} to {receiver!r}")
            self._require_alive(sender, receiver)
            fired = self.injector.observe(
                "transport", sender, receiver, kind,
                session=current_session_id(),
            )
            try:
                self._enact(fired, sender, receiver, kind)
            except FaultInjectedError as exc:
                if exc.retryable and attempt < self._attempts - 1:
                    continue
                raise
            return self._inner.send(sender, receiver, kind, body)
        raise AssertionError("unreachable: the loop returns or raises")

    def _require_alive(self, sender: str, receiver: str) -> None:
        for party in (sender, receiver):
            if party in self._crashed:
                raise FaultInjectedError(
                    f"party {party!r} has crashed (injected fault); "
                    f"cannot deliver {sender!r} -> {receiver!r}",
                    retryable=False,
                )

    def _enact(
        self, fired, sender: str, receiver: str, kind: str
    ) -> None:
        for rule in fired:
            if rule.action == "delay":
                time.sleep(rule.delay_seconds)
        for rule in fired:
            if rule.action == "crash":
                victim = rule.crash_target
                self._crashed.add(victim)
                crash = getattr(self._inner, "crash_party", None)
                if crash is not None:
                    crash(victim)
                raise FaultInjectedError(
                    f"party {victim!r} crashed (injected fault) while "
                    f"{sender!r} -> {receiver!r} kind={kind!r} was in flight",
                    retryable=False,
                )
        for rule in fired:
            if rule.action in _TRANSIENT:
                raise FaultInjectedError(
                    f"message {sender!r} -> {receiver!r} kind={kind!r} "
                    f"{_TRANSIENT[rule.action]} in transit (injected fault)",
                    retryable=True,
                )

    # -- introspection ---------------------------------------------------------

    @property
    def fault_events(self) -> list[FaultEvent]:
        """The injector's deterministic event log."""
        return self.injector.event_log()

    @property
    def crashed_parties(self) -> frozenset[str]:
        return frozenset(self._crashed)
