"""A deliberately size-leaking transport decorator (leakage-gate canary).

:class:`LeakyTransport` wraps a real carrier and, after every protocol
message, emits companion "pad" messages on the same link — one batch
per observable body item.  The pads are fixed-size and carry no data,
but their *count* is proportional to the body's cardinality: exactly
the kind of traffic-shape regression the differential leakage audit
(:mod:`repro.analysis.audit`) exists to catch.  An adversary watching
the wire reads relation sizes straight off the message counts.

It follows the decorator pattern of
:class:`~repro.faults.transport.FaultyTransport`: no transcript of its
own — every observable lives in the wrapped transport — and both
carriers tolerate the extra traffic (the bus records passively; TCP
endpoints acknowledge any data frame).

This class exists so the CI leakage gate can prove it *fails* when a
size channel appears; it must never be wired into a real deployment.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.observables import observable_items
from repro.transport.base import Message, Transport

#: Kind tag of the companion pad messages.
PAD_KIND = "leak_pad"


class LeakyTransport(Transport):
    """Wrap ``inner`` and leak body cardinalities through pad messages."""

    def __init__(
        self,
        inner: Transport,
        *,
        pads_per_item: int = 4,
        pad_bytes: int = 32,
    ) -> None:
        # No super().__init__(): like FaultyTransport, this decorator
        # owns no state — _parties/_messages/_sequence resolve through
        # __getattr__ to the wrapped transport.
        if pads_per_item < 1:
            raise ValueError(f"pads_per_item must be >= 1, got {pads_per_item}")
        if pad_bytes < 1:
            raise ValueError(f"pad_bytes must be >= 1, got {pad_bytes}")
        self._inner = inner
        self.pads_per_item = pads_per_item
        self.pad_bytes = pad_bytes

    def __getattr__(self, name: str) -> Any:
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- delegated lifecycle -------------------------------------------------

    def register(self, party: str) -> None:
        self._inner.register(party)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "LeakyTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- leaking delivery ------------------------------------------------------

    def send(self, sender: str, receiver: str, kind: str, body: Any) -> Message:
        """Deliver through the wrapped transport, then leak the cardinality."""
        message = self._inner.send(sender, receiver, kind, body)
        if kind == PAD_KIND:
            return message
        items = observable_items(body) or 0
        pad = b"\x00" * self.pad_bytes
        for _ in range(self.pads_per_item * items):
            self._inner.send(sender, receiver, PAD_KIND, pad)
        return message
