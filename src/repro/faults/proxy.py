"""An in-process TCP chaos proxy that garbles traffic at the frame level.

A :class:`ChaosProxy` sits between a transport and one party's real
endpoint: it listens on an ephemeral loopback port, forwards framed
traffic to the upstream endpoint, and consults the shared
:class:`~repro.faults.injector.FaultInjector` for every DATA frame it
relays.  Where :class:`~repro.faults.transport.FaultyTransport` injects
faults *above* the carrier, the proxy injects them *below* it — actual
bytes are truncated, flipped, duplicated, or cut off mid-stream, so the
hardened TCP path (request-id dedupe, stale-ACK tolerance, bounded
retry) is exercised against real socket misbehaviour:

* ``delay``     — hold the frame before forwarding,
* ``drop``      — swallow the frame (the sender's ack wait times out),
* ``corrupt``   — flip payload bytes in flight (the endpoint answers
  ``ERROR: undecodable envelope``),
* ``duplicate`` — forward the frame twice (the endpoint dedupes; the
  extra ACK is skipped as stale by the sender),
* ``truncate``  — forward a partial frame, then reset both sides,
* ``reset``     — tear the connection down without forwarding,
* ``crash``     — kill the proxy itself: the port goes dark and every
  later connect is refused.

Control frames (HELLO, FETCH, TELEMETRY) and all upstream responses
pass through untouched — the chaos model targets protocol deliveries.

The proxy is deliberately plain ``socket`` + ``threading`` code: it
must not share the transport's event loop, or a fault that wedges the
proxy could deadlock the very code path under test.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import NetworkError
from repro.faults.injector import FaultInjector
from repro.transport import codec

#: Deterministic corruption mask applied to in-flight payload bytes.
_CORRUPTION_MASK = 0x5A


class ChaosProxy:
    """Fault-injecting relay in front of one party's endpoint."""

    def __init__(
        self,
        upstream: tuple[str, int],
        injector: FaultInjector,
        *,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = upstream
        self.injector = injector
        self.host = host
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._sockets: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._alive = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Listen on an ephemeral port; returns the address to dial."""
        if self._listener is not None:
            raise NetworkError("chaos proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen()
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._alive = True
        thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-proxy", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self.host, self.port

    def stop(self) -> None:
        """Close the listener and every relayed connection."""
        self._alive = False
        listener, self._listener = self._listener, None
        if listener is not None:
            # A blocked accept() is not reliably woken by close();
            # nudge it with a throwaway connection first.
            try:
                socket.create_connection(
                    (self.host, self.port), timeout=0.5
                ).close()
            except OSError:  # pragma: no cover - already unreachable
                pass
            listener.close()
        with self._lock:
            doomed = list(self._sockets)
            self._sockets.clear()
        for sock in doomed:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
        for thread in self._threads:
            if thread is threading.current_thread():
                continue  # a crash rule stops the proxy from inside
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "ChaosProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- relay ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while self._alive and listener is not None:
            try:
                client, _ = listener.accept()
            except OSError:
                return  # listener closed: proxy stopped or crashed
            if not self._alive:
                client.close()
                return
            thread = threading.Thread(
                target=self._handle,
                args=(client,),
                name="repro-chaos-proxy-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, client: socket.socket) -> None:
        try:
            server = socket.create_connection(self.upstream, timeout=5.0)
        except OSError:
            client.close()
            return
        server.settimeout(None)
        with self._lock:
            self._sockets.add(client)
            self._sockets.add(server)
        pump = threading.Thread(
            target=self._pump_responses,
            args=(server, client),
            name="repro-chaos-proxy-pump",
            daemon=True,
        )
        pump.start()
        self._threads.append(pump)
        try:
            while self._alive:
                frame = self._read_frame(client)
                if frame is None:
                    return
                if not self._relay(frame, server):
                    return
        finally:
            self._discard(client)
            self._discard(server)

    def _relay(self, frame: bytes, server: socket.socket) -> bool:
        """Forward one frame, injecting faults; False tears the link down."""
        header = frame[: codec.FRAME_HEADER_BYTES]
        frame_type, _ = codec.parse_frame_header(header)
        if frame_type != codec.DATA:
            return self._forward(server, frame)
        envelope = self._peek(frame[codec.FRAME_HEADER_BYTES:])
        if envelope is None:
            return self._forward(server, frame)
        sender, receiver, kind, session = envelope
        fired = self.injector.observe(
            "proxy", sender, receiver, kind, session=session
        )
        actions = {rule.action: rule for rule in fired}
        if "delay" in actions:
            self._interruptible_sleep(actions["delay"].delay_seconds)
        if "crash" in actions:
            self.stop()
            return False
        if "reset" in actions:
            return False
        if "truncate" in actions:
            # Half a frame, then a hard cut: the endpoint reads a
            # short body and drops the connection; the sender retries.
            self._forward(server, frame[: max(len(frame) // 2, 1)])
            return False
        if "drop" in actions:
            return True  # swallowed: the sender's ack wait times out
        if "corrupt" in actions:
            frame = self._corrupted(frame)
        copies = 2 if "duplicate" in actions else 1
        for _ in range(copies):
            if not self._forward(server, frame):
                return False
        return True

    @staticmethod
    def _peek(payload: bytes) -> tuple[str, str, str, str | None] | None:
        """(sender, receiver, kind, session) of a DATA payload, if decodable."""
        try:
            (
                _, sender, receiver, kind, _, _, _, session,
            ) = codec.decode_envelope(payload)
        except Exception:
            return None
        return sender, receiver, kind, session

    @staticmethod
    def _corrupted(frame: bytes) -> bytes:
        """Flip a few payload bytes; header (and so framing) stays valid."""
        body = bytearray(frame[codec.FRAME_HEADER_BYTES:])
        if not body:
            return frame
        for position in {len(body) // 3, len(body) // 2, (2 * len(body)) // 3}:
            body[position] ^= _CORRUPTION_MASK
        return frame[: codec.FRAME_HEADER_BYTES] + bytes(body)

    def _interruptible_sleep(self, seconds: float) -> None:
        waited = 0.0
        while self._alive and waited < seconds:
            step = min(0.05, seconds - waited)
            threading.Event().wait(step)
            waited += step

    # -- socket plumbing -------------------------------------------------------

    def _read_frame(self, sock: socket.socket) -> bytes | None:
        header = self._recv_exact(sock, codec.FRAME_HEADER_BYTES)
        if header is None:
            return None
        try:
            _, length = codec.parse_frame_header(header)
        except NetworkError:
            return None  # unframed garbage: drop the connection
        payload = self._recv_exact(sock, length) if length else b""
        if payload is None:
            return None
        return header + payload

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = sock.recv(count - len(chunks))
            except OSError:
                return None
            if not chunk:
                return None
            chunks.extend(chunk)
        return bytes(chunks)

    @staticmethod
    def _forward(sock: socket.socket, data: bytes) -> bool:
        try:
            sock.sendall(data)
        except OSError:
            return False
        return True

    def _pump_responses(
        self, server: socket.socket, client: socket.socket
    ) -> None:
        """Relay upstream responses to the client verbatim."""
        while True:
            try:
                data = server.recv(65536)
            except OSError:
                data = b""
            if not data:
                self._discard(client)
                return
            if not self._forward(client, data):
                return

    def _discard(self, sock: socket.socket) -> None:
        with self._lock:
            self._sockets.discard(sock)
        try:
            sock.close()
        except OSError:  # pragma: no cover - already gone
            pass
