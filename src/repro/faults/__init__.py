"""Deterministic fault injection for the mediation stack.

The subsystem splits cleanly into *what* goes wrong, *when* it fires,
and *where* it is enacted:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultRule` /
  :class:`FaultEvent`: the declarative, JSON-round-trip-safe description
  of a chaos scenario and its deterministic, timestamp-free event log,
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the seeded,
  thread-safe trigger engine shared by every injection site of a run,
* :mod:`repro.faults.transport` — :class:`FaultyTransport`: decorator
  injecting faults above any carrier (bus or TCP),
* :mod:`repro.faults.leaky` — :class:`LeakyTransport`: a deliberately
  size-leaking decorator, the canary proving the CI leakage gate bites,
* :mod:`repro.faults.proxy` — :class:`ChaosProxy`: an in-process TCP
  relay injecting faults below the carrier, at the frame level.

See ``docs/robustness.md`` for the fault model and a plan cookbook;
``repro query --fault-plan plan.json`` runs one from the CLI.
"""

from repro.faults.injector import FAULTS_INJECTED_METRIC, FaultInjector
from repro.faults.plan import (
    ACTIONS,
    SITE_ACTIONS,
    FaultEvent,
    FaultPlan,
    FaultRule,
)
from repro.faults.leaky import PAD_KIND, LeakyTransport
from repro.faults.proxy import ChaosProxy
from repro.faults.transport import FaultyTransport

__all__ = [
    "ACTIONS",
    "SITE_ACTIONS",
    "FAULTS_INJECTED_METRIC",
    "ChaosProxy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyTransport",
    "LeakyTransport",
    "PAD_KIND",
]
