"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a seed plus an ordered list of
:class:`FaultRule` — a deterministic description of the failures to
inject into one protocol run.  Plans are plain data (JSON-round-trip
safe) so the same plan can drive an in-process test, the ``repro query
--fault-plan`` CLI flag, and the CI chaos job, and two runs with the
same plan and the same protocol schedule produce **byte-identical**
fault-event logs (events carry no timestamps).

Rules match *observations* — one per delivery attempt seen at the
injection site — on sender, receiver, message kind, or party (either
side of the message).  Triggering is controlled by:

* ``occurrence`` — fire exactly on the N-th matching observation,
* ``probability`` — fire on each match with seeded probability,
* ``max_triggers`` — stop after N firings (default 1; ``0`` = unlimited).

Actions, by injection site (see :mod:`repro.faults.injector`):

=============  ==========================  =============================
action         transport (FaultyTransport)  proxy (ChaosProxy)
=============  ==========================  =============================
``delay``      sleep before delivering      sleep before forwarding
``drop``       message lost (retryable)     frame swallowed (ack timeout)
``corrupt``    message garbled (retryable)  frame bytes flipped in flight
``duplicate``  —                            frame forwarded twice
``truncate``   —                            partial frame, then reset
``reset``      —                            connection torn down
``crash``      party dies (permanent)       proxy dies (port goes dark)
=============  ==========================  =============================

The ``storage`` site (:class:`~repro.storage.faulty.FaultyStorage`)
observes backend operations instead of messages — sender and receiver
are both the namespace, and ``kind`` is ``storage:<operation>`` (e.g.
``storage:cache_get``).  Supported actions: ``delay`` (slow I/O),
``drop`` (operation raises StorageError), ``corrupt`` (cache reads
return flipped bytes, which the deserializers reject).  Index-cache
failures degrade to recomputation; row loads are hard failures.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import ProtocolError

#: Every recognised fault action.
ACTIONS = frozenset(
    {"delay", "drop", "corrupt", "duplicate", "truncate", "reset", "crash"}
)

#: Actions each injection site can enact.
SITE_ACTIONS = {
    "transport": frozenset({"delay", "drop", "corrupt", "crash"}),
    "proxy": frozenset(
        {"delay", "drop", "corrupt", "duplicate", "truncate", "reset", "crash"}
    ),
    "storage": frozenset({"delay", "drop", "corrupt"}),
}


@dataclass(frozen=True)
class FaultRule:
    """One failure to inject, with its matchers and trigger policy."""

    action: str
    #: Matchers — ``None`` matches anything; ``party`` matches a message
    #: when it is the sender *or* the receiver.
    sender: str | None = None
    receiver: str | None = None
    kind: str | None = None
    party: str | None = None
    #: Matches only messages carrying this session id; ``None`` matches
    #: any session, including legacy session-less traffic.
    session: str | None = None
    #: Fire exactly on the N-th matching observation (1-based).
    occurrence: int | None = None
    #: Fire on each matching observation with this probability (seeded).
    probability: float = 1.0
    #: Sleep duration for ``delay`` actions.
    delay_seconds: float = 0.0
    #: Stop firing after this many triggers; ``0`` means unlimited.
    max_triggers: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ProtocolError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {sorted(ACTIONS)}"
            )
        if self.occurrence is not None and self.occurrence < 1:
            raise ProtocolError(
                f"occurrence must be >= 1, got {self.occurrence}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ProtocolError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_seconds < 0:
            raise ProtocolError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.action == "delay" and self.delay_seconds == 0:
            raise ProtocolError("a delay rule needs delay_seconds > 0")
        if self.max_triggers < 0:
            raise ProtocolError(
                f"max_triggers must be >= 0, got {self.max_triggers}"
            )
        if self.action == "crash" and self.crash_target is None:
            raise ProtocolError(
                "a crash rule must name its victim via party/receiver/sender"
            )

    @property
    def crash_target(self) -> str | None:
        """Whom a ``crash`` rule kills: party, else receiver, else sender."""
        return self.party or self.receiver or self.sender

    def matches(
        self,
        sender: str,
        receiver: str,
        kind: str,
        session: str | None = None,
    ) -> bool:
        if self.sender is not None and self.sender != sender:
            return False
        if self.receiver is not None and self.receiver != receiver:
            return False
        if self.kind is not None and self.kind != kind:
            return False
        if self.party is not None and self.party not in (sender, receiver):
            return False
        if self.session is not None and self.session != session:
            return False
        return True

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise ProtocolError(f"fault rule must be an object, got {data!r}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown fault rule keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "action" not in data:
            raise ProtocolError("fault rule is missing its 'action'")
        return cls(**data)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it happened.

    Deliberately timestamp-free: with the same plan and the same
    protocol schedule, the event log is byte-identical across runs —
    that property is what makes chaos failures replayable.
    """

    index: int
    rule: int
    action: str
    site: str
    sender: str
    receiver: str
    kind: str
    occurrence: int
    detail: str = ""
    #: The *rule's* session matcher, not the observed session id —
    #: observed ids are random per run, and recording them would break
    #: the byte-identical log guarantee.  Empty for session-blind rules.
    session: str = ""

    def summary(self) -> str:
        line = (
            f"#{self.index:03d} rule[{self.rule}] {self.action}@{self.site} "
            f"{self.sender}->{self.receiver} kind={self.kind} "
            f"occurrence={self.occurrence}"
        )
        if self.session:
            line = f"{line} session={self.session}"
        return f"{line} {self.detail}" if self.detail else line


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the ordered rules it drives."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ProtocolError(f"fault plan must be an object, got {data!r}")
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise ProtocolError(
                f"unknown fault plan keys {sorted(unknown)}; "
                "expected 'seed' and 'rules'"
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(f"fault plan seed must be an int, got {seed!r}")
        rules = data.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ProtocolError("fault plan 'rules' must be a list")
        return cls(
            seed=seed, rules=tuple(FaultRule.from_dict(r) for r in rules)
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [
                {k: v for k, v in asdict(rule).items() if v is not None}
                for rule in self.rules
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
