"""Padding policy and the per-run hardening context.

The opt-in hardened mode makes every adversary-observable quantity a
function of **adjacency invariants** — quantities the differential
audit's one-value perturbation (:func:`repro.analysis.audit.
adjacent_workload`) provably preserves: relation cardinalities, active-
domain sizes, the multiset of per-value multiplicities, schemas, and
payload widths.  Three mechanisms, all configured here:

* **uniform plaintexts** — every encoding that becomes a ciphertext body
  is wrapped to one per-channel target length (quantum-rounded maximum),
  so ciphertext sizes stop tracking row content;
* **bucket padding** — DAS partition buckets are topped up to an
  invariant per-bucket bound with dummy etuples that are ciphertext-
  indistinguishable from real rows and **decrypt to discard** at the
  client (a one-byte marker under the encryption);
* **fixed-size result frames** — result channels deliver through
  :class:`~repro.hardening.cover.CoverTraffic`, whose frame count is a
  pure function of an invariant bound.

What hardening deliberately does **not** hide — wall-clock timing and
the (invariant, but larger) total volume — is documented as the residual
channel set in ``docs/security.md`` ("Hardened mode"), following the
information-flow analysis of arXiv 1605.01092.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ParameterError, ProtocolError
from repro.hardening.cover import CoverTraffic
from repro.telemetry import metrics as _metrics

#: First byte of every hardened plaintext: real payload or dummy filler.
MARKER_DUMMY = 0x00
MARKER_REAL = 0x01

#: Marker byte plus a 32-bit big-endian payload length.
HEADER_BYTES = 5

#: Prometheus counter: plaintext bytes added by padding and dummies.
PAD_BYTES_METRIC = "repro_hardening_pad_bytes_total"
#: Prometheus counter: dummy items (etuples, result pairs) injected.
DUMMY_ITEMS_METRIC = "repro_hardening_dummy_items_total"
#: Prometheus counter: result frames scheduled by the cover scheduler.
FRAMES_METRIC = "repro_hardening_frames_total"


@dataclass(frozen=True)
class PaddingPolicy:
    """Tunable parameters of the hardened mode (all adjacency-blind)."""

    #: Items per result frame (fixed-size chunked delivery).
    batch_size: int = 64
    #: Row/tuple-set plaintexts are padded to multiples of this.
    quantum: int = 32
    #: Index-table plaintexts are padded to multiples of this (tables
    #: serialize larger than rows, so a coarser quantum keeps the padded
    #: length stable across adjacent workloads).
    table_quantum: int = 256

    def __post_init__(self) -> None:
        for name in ("batch_size", "quantum", "table_quantum"):
            if getattr(self, name) < 1:
                raise ParameterError(
                    f"PaddingPolicy.{name} must be >= 1, "
                    f"got {getattr(self, name)}"
                )

    # -- plaintext wrapping ------------------------------------------------

    def padded_length(self, max_payload: int, quantum: int | None = None) -> int:
        """Smallest quantum multiple holding a ``max_payload``-byte wrap."""
        if max_payload < 0:
            raise ParameterError(f"negative payload length {max_payload}")
        quantum = quantum or self.quantum
        need = HEADER_BYTES + max_payload
        return -(-need // quantum) * quantum

    def wrap(self, payload: bytes, target: int) -> bytes:
        """``marker || len || payload || zeros`` — exactly ``target`` bytes."""
        if HEADER_BYTES + len(payload) > target:
            raise ParameterError(
                f"cannot wrap {len(payload)} payload bytes into a "
                f"{target}-byte hardened plaintext"
            )
        return (
            bytes([MARKER_REAL])
            + len(payload).to_bytes(4, "big")
            + payload
            + b"\x00" * (target - HEADER_BYTES - len(payload))
        )

    def wrap_dummy(self, target: int) -> bytes:
        """An all-zero dummy plaintext of exactly ``target`` bytes."""
        if target < 1:
            raise ParameterError(f"dummy target must be >= 1, got {target}")
        return b"\x00" * target

    def unwrap(self, padded: bytes) -> bytes | None:
        """Recover the payload; ``None`` flags a dummy to discard."""
        if not padded:
            raise ProtocolError("empty hardened plaintext")
        if padded[0] == MARKER_DUMMY:
            return None
        if padded[0] != MARKER_REAL or len(padded) < HEADER_BYTES:
            raise ProtocolError("malformed hardened plaintext header")
        length = int.from_bytes(padded[1:HEADER_BYTES], "big")
        if HEADER_BYTES + length > len(padded):
            raise ProtocolError("hardened plaintext truncated")
        return padded[HEADER_BYTES:HEADER_BYTES + length]

    # -- invariant bounds ---------------------------------------------------

    def bucket_bound(
        self,
        max_multiplicity: int,
        domain_size: int,
        buckets: int,
        strategy: str,
    ) -> int:
        """Per-bucket row bound from adjacency invariants only.

        ``max_multiplicity * (values per partition)`` dominates every
        bucket's real occupancy: a bucket of k values holds at most
        k * max_multiplicity rows.  Both factors are preserved by the
        one-value perturbation, so the padded occupancy histogram is
        identical for adjacent workloads.  ``equi_width`` places values
        by magnitude, which is *not* invariant — hardened DAS rejects it
        (see :func:`repro.core.das.run_das_delivery`).
        """
        if domain_size == 0 or max_multiplicity == 0:
            return 0
        if strategy == "singleton":
            per_bucket = 1
        elif strategy == "equi_depth":
            per_bucket = -(-domain_size // min(buckets, domain_size))
        else:
            raise ProtocolError(
                f"hardened mode has no invariant bucket bound for the "
                f"{strategy!r} partition strategy; use equi_depth or "
                f"singleton"
            )
        return max_multiplicity * per_bucket


@dataclass
class HardeningStats:
    """Byte and item accounting of one hardened run."""

    real_bytes: int = 0
    padded_bytes: int = 0
    dummy_items: int = 0
    frames: int = 0
    dummy_frames: int = 0


class Hardening:
    """Per-run hardening context: policy, accounting, cover scheduler.

    Protocol drivers receive one of these (built by
    :func:`repro.core.runner.run_join_query`) and route every plaintext
    that becomes adversary-visible ciphertext through it.
    """

    def __init__(self, policy: PaddingPolicy | None = None) -> None:
        self.policy = policy or PaddingPolicy()
        self.stats = HardeningStats()
        self.cover = CoverTraffic(self)

    # -- wrapping with accounting ------------------------------------------

    def wrap_uniform(
        self, payloads: Iterable[bytes], quantum: int | None = None
    ) -> tuple[list[bytes], int]:
        """Wrap all ``payloads`` to one shared target length.

        The target is the quantum-rounded maximum, so within the channel
        every ciphertext body has the same size.  Returns the wrapped
        list plus the target (for sizing matching dummies).
        """
        items = list(payloads)
        target = self.policy.padded_length(
            max((len(item) for item in items), default=0), quantum
        )
        wrapped = [self.policy.wrap(item, target) for item in items]
        self.stats.real_bytes += sum(len(item) for item in items)
        self.stats.padded_bytes += target * len(items)
        return wrapped, target

    def wrap_table(self, table_bytes: bytes) -> bytes:
        """Pad one serialized index table to the coarse table quantum."""
        target = self.policy.padded_length(
            len(table_bytes), self.policy.table_quantum
        )
        self.stats.real_bytes += len(table_bytes)
        self.stats.padded_bytes += target
        return self.policy.wrap(table_bytes, target)

    def dummy(self, target: int) -> bytes:
        """An accounted dummy plaintext (decrypts to discard)."""
        self.stats.dummy_items += 1
        self.stats.padded_bytes += target
        return self.policy.wrap_dummy(target)

    def unwrap(self, padded: bytes) -> bytes | None:
        return self.policy.unwrap(padded)

    # -- reporting ----------------------------------------------------------

    def artifact(self) -> dict[str, Any]:
        """JSON-able digest for ``result.artifacts["hardening"]``."""
        stats = self.stats
        overhead = (
            stats.padded_bytes / stats.real_bytes if stats.real_bytes else 1.0
        )
        return {
            "enabled": True,
            "policy": {
                "batch_size": self.policy.batch_size,
                "quantum": self.policy.quantum,
                "table_quantum": self.policy.table_quantum,
            },
            "real_bytes_total": stats.real_bytes,
            "padded_bytes_total": stats.padded_bytes,
            "pad_bytes_total": stats.padded_bytes - stats.real_bytes,
            "overhead_factor": round(overhead, 4),
            "dummy_items_total": stats.dummy_items,
            "frames_total": stats.frames,
            "dummy_frames_total": stats.dummy_frames,
        }

    def record_metrics(self, protocol: str) -> None:
        """Fold the run's accounting into the installed metrics registry."""
        registry = _metrics.get_registry()
        if registry is None:
            return
        labels = {"protocol": protocol}
        registry.counter(
            PAD_BYTES_METRIC, labels,
            help_text="Plaintext bytes added by hardened-mode padding",
        ).inc(self.stats.padded_bytes - self.stats.real_bytes)
        registry.counter(
            DUMMY_ITEMS_METRIC, labels,
            help_text="Dummy items injected by hardened-mode padding",
        ).inc(self.stats.dummy_items)
        registry.counter(
            FRAMES_METRIC, labels,
            help_text="Result frames scheduled by hardened-mode cover traffic",
        ).inc(self.stats.frames)


def resolve_hardening(
    value: Any, default: PaddingPolicy | None = None
) -> Hardening | None:
    """Normalize a caller-facing hardening argument to a run context.

    Accepts ``None`` (fall back to ``default``, typically the
    federation-level policy), booleans, a :class:`PaddingPolicy`, or an
    existing :class:`Hardening` context.
    """
    if value is None:
        value = default
    if value is None or value is False:
        return None
    if value is True:
        return Hardening()
    if isinstance(value, Hardening):
        return value
    if isinstance(value, PaddingPolicy):
        return Hardening(value)
    raise ParameterError(
        f"hardening must be a bool, PaddingPolicy, or Hardening context; "
        f"got {type(value).__name__}"
    )
