"""Opt-in leakage hardening: padding, dummies, and cover traffic.

See ``docs/security.md`` ("Hardened mode") for the leakage-cell-by-cell
rationale and the residual channels the mode cannot close.
"""

from repro.hardening.cover import CoverTraffic
from repro.hardening.policy import (
    DUMMY_ITEMS_METRIC,
    FRAMES_METRIC,
    HEADER_BYTES,
    MARKER_DUMMY,
    MARKER_REAL,
    PAD_BYTES_METRIC,
    Hardening,
    HardeningStats,
    PaddingPolicy,
    resolve_hardening,
)

__all__ = [
    "CoverTraffic",
    "DUMMY_ITEMS_METRIC",
    "FRAMES_METRIC",
    "HEADER_BYTES",
    "MARKER_DUMMY",
    "MARKER_REAL",
    "PAD_BYTES_METRIC",
    "Hardening",
    "HardeningStats",
    "PaddingPolicy",
    "resolve_hardening",
]
