"""Cover traffic: fixed-size result frames with dummy top-up.

The hardened mode's result channels never send "the result" as one
message whose count or size tracks the data.  Instead,
:class:`CoverTraffic` schedules a **deterministic number of frames** per
result kind — ``ceil(bound / batch_size)`` where ``bound`` is computed
from adjacency-invariant quantities only (active-domain sizes,
multiplicity maxima, partition counts) — and fills any shortfall of real
items with indistinguishable dummies supplied by the caller.  Frames
consisting purely of dummies are exactly the "sealed no-op" cover frames
of the oblivious-processing literature (arXiv 1312.4012): an adversary
counting or sizing frames on any link learns only the invariant
schedule.

The schedule is a pure function of the bound and the policy, so two runs
over adjacent workloads — or two runs of the *same* workload under a
seeded fault plan — produce byte-identical frame sequences and therefore
byte-identical fault logs (the injector's decisions key off message
positions, which never move).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.errors import ProtocolError


class CoverTraffic:
    """Chunked, count-equalized delivery of one result channel.

    Bound to a :class:`~repro.hardening.policy.Hardening` context for the
    batch size and the frame accounting; the context creates one per run.
    """

    def __init__(self, hardening: Any) -> None:
        self._hardening = hardening

    def schedule(self, bound: int) -> int:
        """Frames sent for a channel with invariant bound ``bound``.

        At least one frame is always sent, so the channel's *kind* stays
        observable even for an empty (but invariantly empty) result.
        """
        if bound < 0:
            raise ProtocolError(f"negative cover-traffic bound {bound}")
        batch = self._hardening.policy.batch_size
        return max(1, -(-bound // batch))

    def deliver_chunks(
        self,
        network: Any,
        sender: str,
        receiver: str,
        kind: str,
        items: Sequence[Any],
        bound: int,
        dummy_factory: Callable[[], Any] | None = None,
        wrap_body: Callable[[list[Any]], Any] | None = None,
        shuffle: bool = False,
    ) -> list[Any]:
        """Send ``items`` as ``schedule(bound)`` frames of ``kind``.

        ``items`` is topped up to exactly ``bound`` elements with
        ``dummy_factory()`` products, optionally shuffled (protocol
        randomness — dummy positions must not leak), and partitioned
        into frames of at most ``batch_size`` elements each.  Every
        frame body is ``wrap_body(chunk)`` (default: a plain list).
        Returns the padded item list, in delivery order, for the local
        continuation of the protocol.
        """
        real = list(items)
        if len(real) > bound:
            raise ProtocolError(
                f"{kind}: {len(real)} real items exceed the hardened "
                f"bound {bound} — the bound must dominate every workload"
            )
        shortfall = bound - len(real)
        if shortfall and dummy_factory is None:
            raise ProtocolError(
                f"{kind}: {shortfall} dummy items needed but no factory given"
            )
        dummies = [dummy_factory() for _ in range(shortfall)]
        dummy_ids = {id(item) for item in dummies}
        padded = real + dummies
        if shuffle:
            random.SystemRandom().shuffle(padded)
        wrap = wrap_body or (lambda chunk: list(chunk))
        batch = self._hardening.policy.batch_size
        frames = self.schedule(bound)
        stats = self._hardening.stats
        stats.frames += frames
        for position in range(frames):
            chunk = padded[position * batch:(position + 1) * batch]
            if chunk and all(id(item) in dummy_ids for item in chunk):
                stats.dummy_frames += 1
            network.send(sender, receiver, kind, wrap(chunk))
        return padded
