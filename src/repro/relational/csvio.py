"""CSV import/export for relations.

Real federations load their relations from files; this module reads and
writes relations as CSV with a *typed header* — each column is declared
as ``name:type`` with type one of ``int``, ``string``, ``bool`` — so the
round trip is lossless and type inference never guesses.

    patient:string,age:int,insured:bool
    ada,36,true
    grace,85,false

An untyped header falls back to inference: a column is INT if every
value parses as an integer, BOOL if every value is true/false, STRING
otherwise.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema, Value

_BOOL_TOKENS = {"true": True, "false": False}


def _parse_header_field(field: str) -> tuple[str, AttributeType | None]:
    if ":" in field:
        name, _, type_name = field.partition(":")
        try:
            return name.strip(), AttributeType(type_name.strip().lower())
        except ValueError as exc:
            raise SchemaError(f"unknown column type in {field!r}") from exc
    return field.strip(), None


def _parse_value(text: str, attribute_type: AttributeType) -> Value:
    if attribute_type is AttributeType.INT:
        try:
            return int(text)
        except ValueError as exc:
            raise SchemaError(f"cannot parse {text!r} as int") from exc
    if attribute_type is AttributeType.BOOL:
        token = text.strip().lower()
        if token not in _BOOL_TOKENS:
            raise SchemaError(f"cannot parse {text!r} as bool")
        return _BOOL_TOKENS[token]
    return text


def _infer_type(column: Iterable[str]) -> AttributeType:
    values = list(column)
    if values and all(v.strip().lower() in _BOOL_TOKENS for v in values):
        return AttributeType.BOOL
    try:
        for value in values:
            int(value)
        return AttributeType.INT if values else AttributeType.STRING
    except ValueError:
        return AttributeType.STRING


def loads(relation_name: str, text: str) -> Relation:
    """Parse CSV text (typed or untyped header) into a relation."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError("CSV input has no header row")
    header = [_parse_header_field(field) for field in rows[0]]
    body = rows[1:]
    for row in body:
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row has {len(row)} fields, header has {len(header)}"
            )
    types: list[AttributeType] = []
    for index, (name, declared) in enumerate(header):
        if declared is not None:
            types.append(declared)
        else:
            types.append(_infer_type(row[index] for row in body))
    schema = Schema(
        relation_name,
        [Attribute(name, t) for (name, _), t in zip(header, types)],
    )
    parsed = [
        tuple(
            _parse_value(field, attribute_type)
            for field, attribute_type in zip(row, types)
        )
        for row in body
    ]
    return Relation(schema, parsed)


def load(relation_name: str, path) -> Relation:
    """Read a relation from a CSV file."""
    with open(path, encoding="utf-8", newline="") as handle:
        return loads(relation_name, handle.read())


def dumps(relation: Relation) -> str:
    """Serialize a relation to CSV text with a typed header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        f"{attribute.name}:{attribute.type.value}"
        for attribute in relation.schema.attributes
    )
    for row in relation:
        writer.writerow(
            "true" if value is True else "false" if value is False else value
            for value in row
        )
    return buffer.getvalue()


def dump(relation: Relation, path) -> None:
    """Write a relation to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(dumps(relation))
