"""Synthetic workload generation for tests, examples and benchmarks.

The paper evaluates on the MMM's enterprise data, which is not available;
this generator produces pairs of relations with *controlled* properties
that drive every quantity the protocols are sensitive to:

* ``size_1`` / ``size_2`` — |R_1|, |R_2| (tuple counts),
* ``domain_1`` / ``domain_2`` — |domactive(R_i.A_join)|,
* ``overlap`` — |domactive(R_1) ∩ domactive(R_2)| (join selectivity),
* ``skew`` — Zipf exponent of join-value multiplicities (duplicate
  tuples per join value, the |Tup_i(a)| distribution),
* ``payload_attributes`` / ``payload_width`` — tuple width (bytes on
  the wire).

All generation is seeded for reproducibility.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeType, Schema


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic join workload."""

    domain_1: int = 20
    domain_2: int = 20
    overlap: int = 10
    rows_per_value_1: int = 2
    rows_per_value_2: int = 2
    skew: float = 0.0
    payload_attributes: int = 2
    payload_width: int = 8
    join_type: AttributeType = AttributeType.INT
    seed: int = 7
    name_1: str = "R1"
    name_2: str = "R2"
    join_attribute: str = "k"

    def __post_init__(self) -> None:
        if self.overlap > min(self.domain_1, self.domain_2):
            raise ParameterError("overlap cannot exceed either domain size")
        if min(self.domain_1, self.domain_2) < 0 or self.overlap < 0:
            raise ParameterError("sizes must be non-negative")


@dataclass
class Workload:
    """A generated pair of relations plus ground truth."""

    spec: WorkloadSpec
    relation_1: Relation
    relation_2: Relation
    shared_values: tuple = field(default_factory=tuple)

    @property
    def expected_join_size(self) -> int:
        groups_1 = self.relation_1.group_by(self.spec.join_attribute)
        groups_2 = self.relation_2.group_by(self.spec.join_attribute)
        return sum(
            len(groups_1[value]) * len(groups_2[value])
            for value in set(groups_1) & set(groups_2)
        )


def _join_values(
    rng: random.Random, count: int, value_type: AttributeType, namespace: str
) -> list:
    """Distinct join values of the requested type."""
    if value_type is AttributeType.INT:
        values: set[int] = set()
        while len(values) < count:
            values.add(rng.randrange(0, max(10 * count, 100)))
        return sorted(values)
    if value_type is AttributeType.STRING:
        values_s: set[str] = set()
        while len(values_s) < count:
            body = "".join(rng.choices(string.ascii_lowercase, k=8))
            values_s.add(f"{namespace}-{body}")
        return sorted(values_s)
    raise ParameterError(f"unsupported join type {value_type}")


def _multiplicity(rng: random.Random, base: int, skew: float, rank: int) -> int:
    """Tuples per join value; Zipf-ish decay when ``skew > 0``."""
    if base <= 0:
        return 0
    if skew <= 0:
        return base
    scaled = base * (1.0 / (rank + 1) ** skew) * 3.0
    return max(1, round(scaled))


def _payload(rng: random.Random, width: int) -> str:
    return "".join(rng.choices(string.ascii_letters + string.digits, k=width))


def generate(spec: WorkloadSpec) -> Workload:
    """Generate a reproducible workload from its spec."""
    rng = random.Random(spec.seed)
    shared = _join_values(rng, spec.overlap, spec.join_type, "shared")
    only_1 = _join_values(
        rng, spec.domain_1 - spec.overlap, spec.join_type, "left"
    )
    only_2 = _join_values(
        rng, spec.domain_2 - spec.overlap, spec.join_type, "right"
    )
    # Integer domains: shared/only pools could collide; redraw until
    # disjoint (cheap for the sizes benchmarks use).
    attempts = 0
    while set(shared) & set(only_1) or set(shared) & set(only_2) or (
        set(only_1) & set(only_2)
    ):
        attempts += 1
        only_1 = _join_values(
            rng, spec.domain_1 - spec.overlap, spec.join_type, "left"
        )
        only_2 = _join_values(
            rng, spec.domain_2 - spec.overlap, spec.join_type, "right"
        )
        if attempts > 200:
            raise ParameterError("could not build disjoint join-value pools")

    relation_1 = _build_relation(
        rng,
        spec.name_1,
        spec.join_attribute,
        shared + only_1,
        spec.rows_per_value_1,
        spec,
    )
    relation_2 = _build_relation(
        rng,
        spec.name_2,
        spec.join_attribute,
        shared + only_2,
        spec.rows_per_value_2,
        spec,
    )
    return Workload(
        spec=spec,
        relation_1=relation_1,
        relation_2=relation_2,
        shared_values=tuple(shared),
    )


def _build_relation(
    rng: random.Random,
    name: str,
    join_attribute: str,
    join_values: list,
    rows_per_value: int,
    spec: WorkloadSpec,
) -> Relation:
    attributes = [Attribute(join_attribute, spec.join_type)]
    payload_names = []
    for i in range(spec.payload_attributes):
        attribute_name = f"{name.lower()}_p{i}"
        payload_names.append(attribute_name)
        attributes.append(Attribute(attribute_name, AttributeType.STRING))
    schema = Schema(name, attributes)
    rows = []
    for rank, value in enumerate(join_values):
        for _ in range(_multiplicity(rng, rows_per_value, spec.skew, rank)):
            rows.append(
                (value, *[_payload(rng, spec.payload_width) for _ in payload_names])
            )
    return Relation(schema, rows)


def small_workload(seed: int = 7) -> Workload:
    """A tiny deterministic workload for unit tests."""
    return generate(
        WorkloadSpec(
            domain_1=6,
            domain_2=6,
            overlap=3,
            rows_per_value_1=2,
            rows_per_value_2=1,
            payload_attributes=1,
            payload_width=4,
            seed=seed,
        )
    )


def medical_workload(seed: int = 11) -> Workload:
    """A themed workload echoing the paper's motivating scenario.

    Two hospitals hold patient records; the join attribute is the
    (string) patient identifier, payload attributes carry per-hospital
    data — the inter-enterprise setting of Section 1.
    """
    return generate(
        WorkloadSpec(
            domain_1=15,
            domain_2=12,
            overlap=6,
            rows_per_value_1=1,
            rows_per_value_2=2,
            payload_attributes=2,
            payload_width=10,
            join_type=AttributeType.STRING,
            seed=seed,
            name_1="clinic",
            name_2="lab",
            join_attribute="patient",
        )
    )
