"""Selection push-down: letting datasources pre-filter partial results.

Section 2 notes that "more complex queries could be executed by the
datasources" even though the paper keeps partial queries to
``select *``.  This optimizer implements that extension: selection
conditions sitting above the join whose attributes all belong to *one*
relation are pushed into that relation's :class:`PartialQuery`, so the
datasource filters rows **before** encryption.  Benefits compound:

* fewer tuples encrypted and transmitted (bandwidth + crypto ops),
* smaller active domains, hence smaller index tables / message sets /
  polynomials,
* and strictly less residual information at the mediator (it sees counts
  of an already-reduced relation).

The transformation is the classic relational-algebra equivalence
``sigma_c(R1 join R2) = sigma_c(R1) join R2`` when ``attrs(c) ⊆
attrs(R1) \\ attrs(R2)``; conditions on the *join* attributes are pushed
to **both** sides (they constrain the shared values).  Mixed conditions
stay above the join.
"""

from __future__ import annotations

from repro.relational import algebra
from repro.relational.conditions import And, Condition, conjunction
from repro.relational.schema import Schema


def _conjuncts(condition: Condition) -> list[Condition]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(condition, And):
        flattened: list[Condition] = []
        for clause in condition.clauses:
            flattened.extend(_conjuncts(clause))
        return flattened
    return [condition]


def _owner(
    condition: Condition, schema_1: Schema, schema_2: Schema
) -> str | None:
    """Which side(s) a conjunct can be pushed to.

    Returns "left", "right", "both" (pure join-attribute condition), or
    None (mixed/unpushable — e.g. it references attributes of both
    sides, or qualified names of the joined result).
    """
    attributes = condition.attributes()
    if not attributes:
        return None

    def resolves_in(schema: Schema) -> bool:
        return all(schema.has(name) for name in attributes)

    in_left = resolves_in(schema_1)
    in_right = resolves_in(schema_2)
    if in_left and in_right:
        return "both"
    if in_left:
        return "left"
    if in_right:
        return "right"
    return None


def push_down_selections(
    tree: algebra.AlgebraNode,
    schemas: dict[str, Schema],
) -> algebra.AlgebraNode:
    """Push selections over a single join into the partial queries.

    Handles the shape the mediator decomposes — optional ``Project`` /
    ``Select`` layers above one ``Join`` of two ``PartialQuery`` leaves.
    Any other shape is returned unchanged (the transform is best-effort
    and must never alter semantics).
    """
    if isinstance(tree, algebra.Project):
        inner = push_down_selections(tree.child, schemas)
        return algebra.Project(tree.attributes, inner)
    if not isinstance(tree, algebra.Select):
        return tree
    join = tree.child
    if not isinstance(join, algebra.Join):
        return tree
    left, right = join.left, join.right
    if not isinstance(left, algebra.PartialQuery) or not isinstance(
        right, algebra.PartialQuery
    ):
        return tree
    schema_1 = schemas.get(left.relation_name)
    schema_2 = schemas.get(right.relation_name)
    if schema_1 is None or schema_2 is None:
        return tree

    left_conditions: list[Condition] = []
    right_conditions: list[Condition] = []
    residual: list[Condition] = []
    for conjunct in _conjuncts(tree.condition):
        owner = _owner(conjunct, schema_1, schema_2)
        if owner == "left":
            left_conditions.append(conjunct)
        elif owner == "right":
            right_conditions.append(conjunct)
        elif owner == "both":
            left_conditions.append(conjunct)
            right_conditions.append(conjunct)
        else:
            residual.append(conjunct)

    if not left_conditions and not right_conditions:
        return tree

    def with_conditions(
        leaf: algebra.PartialQuery, conditions: list[Condition]
    ) -> algebra.PartialQuery:
        if not conditions:
            return leaf
        existing = [leaf.condition] if leaf.condition is not None else []
        return algebra.PartialQuery(
            leaf.relation_name, conjunction(existing + conditions)
        )

    pushed = algebra.Join(
        with_conditions(left, left_conditions),
        with_conditions(right, right_conditions),
    )
    if residual:
        return algebra.Select(conjunction(residual), pushed)
    return pushed
