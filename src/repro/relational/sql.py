"""SQL2Algebra: a small SQL front end producing algebra trees.

Section 2: *"SQL queries for instance can be transformed into a so-called
'algebra tree' (with relational operators in the inner nodes of the tree
and partial queries at the leaves) by using the 'SQL2Algebra' library."*

This module is our SQL2Algebra.  The supported fragment covers the
paper's queries and the extensions exercised by examples and tests::

    SELECT * FROM R1 NATURAL JOIN R2
    SELECT patient, disease FROM R1 NATURAL JOIN R2 WHERE age > 40
    SELECT * FROM R1 NATURAL JOIN R2 NATURAL JOIN R3     -- hierarchy
    SELECT * FROM R1                                      -- partial query

Parsing is a hand-written tokenizer + recursive-descent parser; the
output is an :class:`~repro.relational.algebra.AlgebraNode` tree whose
leaves are :class:`~repro.relational.algebra.PartialQuery` nodes — one
per datasource relation, exactly what the mediator forwards.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError
from repro.relational import algebra
from repro.relational.conditions import (
    AttributeComparison,
    Comparison,
    Condition,
    Not,
    conjunction,
    disjunction,
)
from repro.relational.schema import Value

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<symbol><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\.)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "natural", "join", "on",
    "and", "or", "not", "true", "false",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "symbol" | "end"
    text: str


def tokenize(sql: str) -> list[Token]:
    """Split a query string into tokens; raises on unknown characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize query near {remainder[:20]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(Token("number", match.group("number")))
        elif match.lastgroup == "string":
            tokens.append(Token("string", match.group("string")))
        elif match.lastgroup == "ident":
            text = match.group("ident")
            kind = "keyword" if text.lower() in _KEYWORDS else "ident"
            tokens.append(Token(kind, text))
        elif match.lastgroup == "symbol":
            tokens.append(Token("symbol", match.group("symbol")))
    tokens.append(Token("end", ""))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.text.lower() == keyword:
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise QueryError(f"expected {keyword.upper()!r} near {self.peek().text!r}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "symbol" and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise QueryError(f"expected {symbol!r} near {self.peek().text!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise QueryError(f"expected identifier near {token.text!r}")
        return self.advance().text

    # -- grammar ----------------------------------------------------------

    def parse_query(self) -> algebra.AlgebraNode:
        self.expect_keyword("select")
        projection = self._parse_select_list()
        self.expect_keyword("from")
        tree = self._parse_table_expression()
        if self.accept_keyword("where"):
            tree = algebra.Select(self._parse_condition(), tree)
        if self.peek().kind != "end":
            raise QueryError(f"unexpected trailing input: {self.peek().text!r}")
        if projection is not None:
            tree = algebra.Project(tuple(projection), tree)
        return tree

    def _parse_select_list(self) -> list[str] | None:
        if self.accept_symbol("*"):
            return None
        names = [self._parse_attribute_name()]
        while self.accept_symbol(","):
            names.append(self._parse_attribute_name())
        return names

    def _parse_attribute_name(self) -> str:
        name = self.expect_ident()
        if self.accept_symbol("."):
            name = f"{name}.{self.expect_ident()}"
        return name

    def _parse_table_expression(self) -> algebra.AlgebraNode:
        tree: algebra.AlgebraNode = algebra.PartialQuery(self.expect_ident())
        while True:
            if self.accept_keyword("natural"):
                self.expect_keyword("join")
                tree = algebra.Join(tree, algebra.PartialQuery(self.expect_ident()))
            elif self.accept_keyword("join"):
                right = algebra.PartialQuery(self.expect_ident())
                self.expect_keyword("on")
                condition = self._parse_condition()
                tree = algebra.Select(condition, algebra.Product(tree, right))
            elif self.accept_symbol(","):
                tree = algebra.Product(
                    tree, algebra.PartialQuery(self.expect_ident())
                )
            else:
                return tree

    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        clauses = [self._parse_and()]
        while self.accept_keyword("or"):
            clauses.append(self._parse_and())
        return disjunction(clauses)

    def _parse_and(self) -> Condition:
        clauses = [self._parse_not()]
        while self.accept_keyword("and"):
            clauses.append(self._parse_not())
        return conjunction(clauses)

    def _parse_not(self) -> Condition:
        if self.accept_keyword("not"):
            return Not(self._parse_not())
        if self.accept_symbol("("):
            condition = self._parse_condition()
            self.expect_symbol(")")
            return condition
        return self._parse_comparison()

    def _parse_comparison(self) -> Condition:
        left_kind, left = self._parse_operand()
        token = self.peek()
        if token.kind != "symbol" or token.text not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise QueryError(f"expected comparison operator near {token.text!r}")
        op = self.advance().text
        if op == "<>":
            op = "!="
        right_kind, right = self._parse_operand()
        if left_kind == "attribute" and right_kind == "attribute":
            return AttributeComparison(left, op, right)
        if left_kind == "attribute":
            return Comparison(left, op, right)
        if right_kind == "attribute":
            return Comparison(right, _mirror(op), left)
        raise QueryError("comparison needs at least one attribute operand")

    def _parse_operand(self) -> tuple[str, Value | str]:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return "literal", int(token.text)
        if token.kind == "string":
            self.advance()
            return "literal", token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text.lower() in ("true", "false"):
            self.advance()
            return "literal", token.text.lower() == "true"
        if token.kind == "ident":
            return "attribute", self._parse_attribute_name()
        raise QueryError(f"expected operand near {token.text!r}")


def _mirror(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def parse(sql: str) -> algebra.AlgebraNode:
    """Parse a SQL query into an algebra tree (the SQL2Algebra entry point)."""
    return _Parser(tokenize(sql)).parse_query()


# ---------------------------------------------------------------------------
# Pushdown compiler: condition ASTs -> parameterized SQL
# ---------------------------------------------------------------------------
#
# The inverse direction of SQL2Algebra: the storage backends execute the
# mediator's server query *inside* the engine, so the symbolic
# conditions (selection pushdown WHERE clauses and the DAS
# bucket-membership predicate Cond_S) must compile back into SQL.
# Everything is parameterized — attribute names resolve to fixed
# ``c<position>`` column identifiers and all literals travel as bind
# parameters, so no value ever reaches the SQL text.

from repro.relational.conditions import (  # noqa: E402
    And,
    FalseCondition,
    Or,
    TrueCondition,
)
from repro.relational.schema import Schema  # noqa: E402


@dataclass(frozen=True)
class CompiledSQL:
    """A SQL fragment plus its positional bind parameters."""

    text: str
    parameters: tuple[Value, ...]


def _sql_literal(value: Value) -> Value:
    # Bool columns persist as INTEGER 0/1; comparisons must match.
    if isinstance(value, bool):
        return int(value)
    return value


def column_name(schema: Schema, attribute: str) -> str:
    """The physical column for an attribute: ``c<position>``.

    Positions come from the schema (which accepts qualified names), so
    attribute identifiers never appear in SQL text — the compiler is
    immune to identifier injection by construction.
    """
    return f"c{schema.position(attribute)}"


def compile_condition(condition: Condition, schema: Schema) -> CompiledSQL:
    """Compile a condition AST into a parameterized SQL boolean expression."""
    if isinstance(condition, TrueCondition):
        return CompiledSQL("1", ())
    if isinstance(condition, FalseCondition):
        return CompiledSQL("0", ())
    if isinstance(condition, Comparison):
        return CompiledSQL(
            f"{column_name(schema, condition.attribute)} {condition.op} ?",
            (_sql_literal(condition.value),),
        )
    if isinstance(condition, AttributeComparison):
        left = column_name(schema, condition.left)
        right = column_name(schema, condition.right)
        return CompiledSQL(f"{left} {condition.op} {right}", ())
    if isinstance(condition, (And, Or)):
        connective = " AND " if isinstance(condition, And) else " OR "
        parts = [compile_condition(clause, schema) for clause in condition.clauses]
        text = "(" + connective.join(part.text for part in parts) + ")"
        parameters = tuple(p for part in parts for p in part.parameters)
        return CompiledSQL(text, parameters)
    if isinstance(condition, Not):
        inner = compile_condition(condition.clause, schema)
        return CompiledSQL(f"NOT ({inner.text})", inner.parameters)
    raise QueryError(
        f"cannot compile condition node {type(condition).__name__} to SQL"
    )


def compile_select(
    table: str, schema: Schema, condition: Condition | None
) -> CompiledSQL:
    """``SELECT c0..cN FROM <table> [WHERE ...]`` for one stored relation."""
    columns = ", ".join(f"c{i}" for i in range(len(schema.attributes)))
    if condition is None:
        return CompiledSQL(f"SELECT {columns} FROM {table}", ())
    where = compile_condition(condition, schema)
    return CompiledSQL(
        f"SELECT {columns} FROM {table} WHERE {where.text}", where.parameters
    )


def compile_bucket_join(
    left_table: str, right_table: str, pairs_table: str
) -> CompiledSQL:
    """The DAS server query ``sigma_CondS(R1S x R2S)`` as a SQL join.

    All three operands are (pos INTEGER, val BLOB) tables; Cond_S — a
    disjunction of index-value pairs — becomes an equi-join against the
    pairs table instead of an O(|Cond_S|) OR chain, which is both faster
    and keeps the statement size independent of the bucket count.
    """
    return CompiledSQL(
        "SELECT DISTINCT l.pos, r.pos "
        f"FROM {left_table} AS l "
        f"JOIN {pairs_table} AS p ON l.val = p.lval "
        f"JOIN {right_table} AS r ON r.val = p.rval "
        "ORDER BY l.pos, r.pos",
        (),
    )


def partial_queries(tree: algebra.AlgebraNode) -> list[algebra.PartialQuery]:
    """The partial-query leaves the mediator dispatches to datasources."""
    return tree.leaves()
