"""Relations and tuples (set semantics, immutable).

A :class:`Relation` is an immutable set of typed rows under a
:class:`~repro.relational.schema.Schema`.  Set semantics match the
paper's formal model; rows keep a deterministic iteration order (sorted
by canonical encoding) so protocol transcripts and benchmarks are
reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Schema, Value

#: A row is a tuple of values positionally matching the schema.
Row = tuple[Value, ...]


def _sort_key(row: Row) -> tuple:
    """Type-stable sort key (ints, strs and bools cannot be compared)."""
    return tuple((type(v).__name__, v) for v in row)


class Relation:
    """An immutable relation instance.

    Construction validates every row against the schema (arity and
    types); duplicate rows collapse (set semantics).
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Value]]) -> None:
        validated: set[Row] = set()
        for raw in rows:
            row = tuple(raw)
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema "
                    f"{schema.relation_name} ({len(schema)} attributes)"
                )
            for attribute, value in zip(schema.attributes, row):
                if not attribute.accepts(value):
                    raise SchemaError(
                        f"value {value!r} invalid for attribute "
                        f"{attribute.name}:{attribute.type.value}"
                    )
            validated.add(row)
        self.schema = schema
        self._rows = tuple(sorted(validated, key=_sort_key))

    # -- accessors -----------------------------------------------------

    @property
    def rows(self) -> tuple[Row, ...]:
        return self._rows

    @property
    def name(self) -> str:
        return self.schema.relation_name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in set(self._rows)

    def __eq__(self, other: object) -> bool:
        """Equality up to row content and *bare* attribute names/types.

        Relation names are presentation metadata (the global result may
        be called ``R1_join_R2`` while the reference join is ``ref``), so
        they do not participate in equality.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and set(self._rows) == set(other._rows)
        )

    def __hash__(self) -> int:
        return hash((self.schema.attributes, self._rows))

    def __repr__(self) -> str:
        return f"Relation({self.name}, {len(self)} rows)"

    # -- row-level helpers ----------------------------------------------

    def value(self, row: Row, attribute: str) -> Value:
        """Value of ``attribute`` in ``row``."""
        return row[self.schema.position(attribute)]

    def active_domain(self, attribute: str) -> tuple[Value, ...]:
        """The *active domain* of an attribute: distinct values, sorted.

        ``domactive(A)`` in the paper — the values that actually occur.
        """
        position = self.schema.position(attribute)
        values = {row[position] for row in self._rows}
        return tuple(sorted(values, key=lambda v: (type(v).__name__, v)))

    def tuples_with(self, attribute: str, value: Value) -> "Relation":
        """``Tup_i(a)``: rows whose join attribute equals ``value``."""
        position = self.schema.position(attribute)
        return Relation(
            self.schema, [row for row in self._rows if row[position] == value]
        )

    def group_by(self, attribute: str) -> dict[Value, tuple[Row, ...]]:
        """All ``Tup_i(a)`` sets at once, keyed by join value."""
        position = self.schema.position(attribute)
        groups: dict[Value, list[Row]] = {}
        for row in self._rows:
            groups.setdefault(row[position], []).append(row)
        return {value: tuple(rows) for value, rows in groups.items()}

    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying an arbitrary predicate (used by access control)."""
        return Relation(self.schema, [row for row in self._rows if predicate(row)])

    def rename(self, relation_name: str) -> "Relation":
        return Relation(self.schema.rename(relation_name), self._rows)

    def as_dicts(self) -> list[dict[str, Value]]:
        """Rows as attribute-name dictionaries (presentation helper)."""
        names = self.schema.names()
        return [dict(zip(names, row)) for row in self._rows]

    def pretty(self, max_rows: int = 20) -> str:
        """ASCII table rendering for examples and reports."""
        names = self.schema.names()
        shown = self._rows[:max_rows]
        columns = [
            [name] + [str(row[i]) for row in shown] for i, name in enumerate(names)
        ]
        widths = [max(len(cell) for cell in column) for column in columns]
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))
        header = fmt(names)
        ruler = "-+-".join("-" * w for w in widths)
        body = [fmt([str(v) for v in row]) for row in shown]
        suffix = [] if len(self._rows) <= max_rows else [
            f"... ({len(self._rows) - max_rows} more rows)"
        ]
        return "\n".join(
            [f"{self.name} ({len(self)} rows)", header, ruler, *body, *suffix]
        )


def relation(
    schema: Schema, rows: Iterable[Mapping[str, Value] | Sequence[Value]]
) -> Relation:
    """Build a relation from positional rows or attribute dictionaries."""
    normalized: list[Sequence[Value]] = []
    names = schema.names()
    for row in rows:
        if isinstance(row, Mapping):
            missing = set(names) - set(row)
            if missing:
                raise SchemaError(f"row missing attributes: {sorted(missing)}")
            normalized.append(tuple(row[name] for name in names))
        else:
            normalized.append(row)
    return Relation(schema, normalized)
