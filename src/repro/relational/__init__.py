"""Relational substrate: schemas, relations, algebra, SQL, partitioning.

* :mod:`~repro.relational.schema` — attributes, types, schemas
* :mod:`~repro.relational.relation` — immutable set-semantics relations
* :mod:`~repro.relational.conditions` — condition ASTs (Cond_S, Cond_C)
* :mod:`~repro.relational.algebra` — operators and algebra trees
* :mod:`~repro.relational.sql` — SQL2Algebra front end
* :mod:`~repro.relational.partition` — DAS domain partitioning
* :mod:`~repro.relational.encoding` — canonical byte/int encodings
* :mod:`~repro.relational.datagen` — synthetic workload generation
"""

from repro.relational.relation import Relation, relation
from repro.relational.schema import Attribute, AttributeType, Schema, schema

__all__ = [
    "Attribute",
    "AttributeType",
    "Relation",
    "Schema",
    "relation",
    "schema",
]
