"""Relational schemas: attributes, types, and name resolution.

The paper works with relations ``R(A_1, ..., A_n)`` whose attributes have
typed domains; the join attribute's *active domain* (the set of values
actually occurring) drives all three protocols.  We support integer,
string and boolean attribute domains — enough to model the paper's
examples (including the "small domain, just yes and no" warning of
Section 6) while keeping canonical byte encodings simple.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

#: Values a relation may hold.
Value = int | str | bool


class AttributeType(enum.Enum):
    """Typed attribute domains with canonical encodings."""

    INT = "int"
    STRING = "string"
    BOOL = "bool"

    @classmethod
    def of(cls, value: Value) -> "AttributeType":
        """Infer the attribute type of a Python value."""
        # bool first: bool is a subclass of int.
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, str):
            return cls.STRING
        raise SchemaError(f"unsupported value type: {type(value).__name__}")


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute."""

    name: str
    type: AttributeType = AttributeType.INT

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid attribute name: {self.name!r}")

    def accepts(self, value: Value) -> bool:
        return AttributeType.of(value) is self.type


class Schema:
    """A named relation schema — an ordered sequence of attributes.

    Attribute lookup accepts both bare names (``"disease"``) and
    qualified names (``"R1.disease"``); the paper qualifies the join
    attribute as ``R1.Ajoin`` / ``R2.Ajoin`` when disambiguation is
    needed, and so do we.
    """

    def __init__(self, relation_name: str, attributes: Sequence[Attribute]) -> None:
        if not relation_name:
            raise SchemaError("relation name must be non-empty")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {relation_name}")
        if not attributes:
            raise SchemaError(f"schema {relation_name} must have attributes")
        self.relation_name = relation_name
        self.attributes = tuple(attributes)
        self._positions = {attribute.name: i for i, attribute in enumerate(attributes)}

    # -- lookup -------------------------------------------------------

    def position(self, name: str) -> int:
        """Index of an attribute by bare or qualified name."""
        bare = self.resolve(name)
        return self._positions[bare]

    def resolve(self, name: str) -> str:
        """Normalize a (possibly qualified) attribute name to a bare one."""
        if "." in name:
            qualifier, bare = name.split(".", 1)
            if qualifier != self.relation_name:
                raise SchemaError(
                    f"attribute {name!r} does not belong to {self.relation_name}"
                )
            name = bare
        if name not in self._positions:
            raise SchemaError(
                f"unknown attribute {name!r} in {self.relation_name}"
                f"({', '.join(self.names())})"
            )
        return name

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.position(name)]

    def has(self, name: str) -> bool:
        try:
            self.resolve(name)
        except SchemaError:
            return False
        return True

    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def qualified_names(self) -> tuple[str, ...]:
        return tuple(
            f"{self.relation_name}.{attribute.name}" for attribute in self.attributes
        )

    # -- construction helpers ------------------------------------------

    def rename(self, relation_name: str) -> "Schema":
        return Schema(relation_name, self.attributes)

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted (and reordered) to the given attributes."""
        return Schema(
            self.relation_name, [self.attribute(name) for name in names]
        )

    def common_attributes(self, other: "Schema") -> tuple[str, ...]:
        """Bare names present in both schemas, in this schema's order.

        This is the mediator's job in the paper: from the embedded global
        schema it "can identify the sets A_1 and A_2 of attributes that
        have to be considered in the JOIN operation".
        """
        other_names = set(other.names())
        return tuple(name for name in self.names() if name in other_names)

    def join_schema(self, other: "Schema", relation_name: str) -> "Schema":
        """Schema of the natural join: shared attributes once, then rest."""
        merged = list(self.attributes)
        seen = set(self.names())
        for attribute in other.attributes:
            if attribute.name in seen:
                ours = self.attribute(attribute.name)
                if ours.type is not attribute.type:
                    raise SchemaError(
                        f"type clash on join attribute {attribute.name!r}"
                    )
                continue
            merged.append(attribute)
        return Schema(relation_name, merged)

    # -- dunder ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schema)
            and self.relation_name == other.relation_name
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.relation_name, self.attributes))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{attribute.name}:{attribute.type.value}" for attribute in self.attributes
        )
        return f"Schema({self.relation_name}[{inner}])"


def schema(relation_name: str, **attribute_types: str | AttributeType) -> Schema:
    """Concise schema constructor.

    >>> schema("R1", patient="string", disease="string", age="int")
    Schema(R1[patient:string, disease:string, age:int])
    """
    attributes = []
    for name, type_spec in attribute_types.items():
        if isinstance(type_spec, str):
            type_spec = AttributeType(type_spec)
        attributes.append(Attribute(name, type_spec))
    return Schema(relation_name, attributes)
