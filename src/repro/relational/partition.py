"""Domain partitioning and index tables for the DAS protocol.

Section 3: *"The index values for an attribute A_i are defined by first
dividing the active domain domactive(A_i) into partitions and then
assigning a unique identifier to each partition; these identifiers can
for example be computed with a collision free hash function that uses
properties of the partition."*

A :class:`Partition` records the active-domain values it covers (and,
for ordered domains, its range bounds).  An :class:`IndexTable` maps
partitions to opaque index values; each datasource salts its identifiers
so the mediator cannot correlate index values across sources or infer
partition contents.  The client — holding both decrypted index tables —
detects *overlapping* partitions to build the server condition
``Cond_S``.

Partitioning strategies (Section 6 discusses the trade-off):

* :func:`equi_width` — equal-width ranges over integer domains,
* :func:`equi_depth` — equal-population buckets over any ordered domain,
* :func:`singleton` — one value per partition (maximally efficient,
  maximally leaky; the limit case of "small partitions ... can leak
  confidential information").
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crypto.hashes import collision_free_hash
from repro.errors import EncodingError, PartitionError
from repro.relational.encoding import encode_value
from repro.relational.schema import Value

#: Width (bytes) of a partition index value.
INDEX_VALUE_BYTES = 8


@dataclass(frozen=True)
class Partition:
    """A partition of an attribute's active domain.

    ``values`` are the active-domain members assigned to this partition.
    ``bounds`` (optional) records the covering interval for range-based
    strategies; when present, cross-source overlap uses interval
    intersection (the sound choice: the *other* source may hold active
    values anywhere inside the range).
    """

    values: frozenset[Value]
    bounds: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise PartitionError("a partition must cover at least one value")
        if self.bounds is not None:
            low, high = self.bounds
            if low > high:
                raise PartitionError("partition bounds out of order")
            for value in self.values:
                if not isinstance(value, int) or not low <= value <= high:
                    raise PartitionError(
                        f"value {value!r} outside partition bounds {self.bounds}"
                    )

    def overlaps(self, other: "Partition") -> bool:
        """The paper's ``p1 cap p2 != emptyset`` test."""
        if self.bounds is not None and other.bounds is not None:
            return (
                self.bounds[0] <= other.bounds[1]
                and other.bounds[0] <= self.bounds[1]
            )
        return bool(self.values & other.values)

    def descriptor(self) -> bytes:
        """Canonical byte description (input to the identifier hash)."""
        if self.bounds is not None:
            return b"range:" + json.dumps(list(self.bounds)).encode()
        encoded = sorted(encode_value(v).hex() for v in self.values)
        return b"set:" + json.dumps(encoded).encode()


@dataclass(frozen=True)
class IndexTable:
    """``ITable_{R_i.A_join}``: the partition -> index-value mapping."""

    attribute: str
    entries: tuple[tuple[Partition, int], ...]
    salt: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        index_values = [index for _, index in self.entries]
        if len(set(index_values)) != len(index_values):
            raise PartitionError("index values must be unique")
        seen: set[Value] = set()
        for partition, _ in self.entries:
            if partition.values & seen:
                raise PartitionError("partitions must not share active values")
            seen |= partition.values

    @property
    def partitions(self) -> tuple[Partition, ...]:
        return tuple(partition for partition, _ in self.entries)

    def index_of(self, value: Value) -> int:
        """Index value of the partition containing ``value``."""
        for partition, index in self.entries:
            if value in partition.values:
                return index
        raise PartitionError(f"value {value!r} not covered by any partition")

    def partition_of_index(self, index: int) -> Partition:
        for partition, candidate in self.entries:
            if candidate == index:
                return partition
        raise PartitionError(f"unknown index value {index}")

    def covered_values(self) -> frozenset[Value]:
        result: set[Value] = set()
        for partition, _ in self.entries:
            result |= partition.values
        return frozenset(result)

    def overlapping_pairs(
        self, other: "IndexTable"
    ) -> list[tuple[int, int]]:
        """Index-value pairs of overlapping partitions across two tables.

        Exactly the pairs the client enumerates to assemble ``Cond_S``.
        """
        return [
            (own_index, other_index)
            for own_partition, own_index in self.entries
            for other_partition, other_index in other.entries
            if own_partition.overlaps(other_partition)
        ]

    # -- serialization (travels hybrid-encrypted to the client) ---------

    def to_bytes(self) -> bytes:
        payload = {
            "attribute": self.attribute,
            "entries": [
                {
                    "values": [encode_value(v).hex() for v in sorted(
                        partition.values, key=lambda v: (type(v).__name__, v)
                    )],
                    "bounds": list(partition.bounds) if partition.bounds else None,
                    "index": index,
                }
                for partition, index in self.entries
            ],
        }
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IndexTable":
        payload = json.loads(data.decode("utf-8"))
        entries = []
        for entry in payload["entries"]:
            values = frozenset(
                _decode_hex_value(encoded) for encoded in entry["values"]
            )
            bounds = tuple(entry["bounds"]) if entry["bounds"] else None
            entries.append((Partition(values, bounds), entry["index"]))
        return cls(attribute=payload["attribute"], entries=tuple(entries))


def _decode_hex_value(encoded: str) -> Value:
    raw = bytes.fromhex(encoded)
    tag, body = raw[:1], raw[1:]
    if tag == b"i":
        return int(body.decode("ascii"))
    if tag == b"s":
        return body.decode("utf-8")
    if tag == b"b":
        return body == b"1"
    raise EncodingError(f"unknown value tag {tag!r}")


def _index_value(partition: Partition, salt: bytes) -> int:
    digest = collision_free_hash(salt + partition.descriptor())
    return int.from_bytes(digest[:INDEX_VALUE_BYTES], "big")


def build_index_table(
    attribute: str,
    partitions: Sequence[Partition],
    salt: bytes | None = None,
) -> IndexTable:
    """Assign salted collision-free-hash identifiers to partitions."""
    if salt is None:
        salt = secrets.token_bytes(16)
    entries = []
    used: set[int] = set()
    for partition in partitions:
        index = _index_value(partition, salt)
        # Collisions of a 64-bit truncation are negligible but cheap to
        # rule out entirely within one table.
        bump = 0
        while index in used:
            bump += 1
            index = _index_value(partition, salt + bump.to_bytes(4, "big"))
        used.add(index)
        entries.append((partition, index))
    return IndexTable(attribute=attribute, entries=tuple(entries), salt=salt)


# ---------------------------------------------------------------------------
# Partitioning strategies
# ---------------------------------------------------------------------------


def equi_width(active_domain: Iterable[int], buckets: int) -> list[Partition]:
    """Equal-width range partitions over an integer active domain."""
    values = sorted(set(active_domain))
    if not values:
        return []
    if buckets < 1:
        raise PartitionError("need at least one bucket")
    if not all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        raise PartitionError("equi_width requires an integer domain")
    low, high = values[0], values[-1]
    span = high - low + 1
    width = max(1, -(-span // buckets))  # ceil division
    partitions = []
    for start in range(low, high + 1, width):
        end = min(start + width - 1, high)
        members = frozenset(v for v in values if start <= v <= end)
        if members:
            partitions.append(Partition(members, (start, end)))
    return partitions


def equi_depth(active_domain: Iterable[Value], buckets: int) -> list[Partition]:
    """Equal-population partitions over any ordered active domain."""
    values = sorted(set(active_domain), key=lambda v: (type(v).__name__, v))
    if not values:
        return []
    if buckets < 1:
        raise PartitionError("need at least one bucket")
    buckets = min(buckets, len(values))
    size = -(-len(values) // buckets)  # ceil division
    partitions = []
    for start in range(0, len(values), size):
        chunk = values[start:start + size]
        bounds = None
        if all(isinstance(v, int) and not isinstance(v, bool) for v in chunk):
            bounds = (chunk[0], chunk[-1])
        partitions.append(Partition(frozenset(chunk), bounds))
    return partitions


def singleton(active_domain: Iterable[Value]) -> list[Partition]:
    """One partition per active value — the maximal-leakage limit case."""
    return [
        Partition(frozenset({value}))
        for value in sorted(set(active_domain), key=lambda v: (type(v).__name__, v))
    ]
