"""Canonical byte and integer encodings of values, rows and tuple sets.

Every protocol needs values in some machine form:

* the **hybrid scheme** encrypts whole tuples and tuple sets — they must
  have an unambiguous byte serialization (``encode_row`` /
  ``encode_rows``);
* the **commutative scheme** hashes join values — ``encode_value`` feeds
  the ideal hash;
* the **private-matching scheme** needs join values as *integers* (roots
  of the polynomial, and the recoverable ``a`` part of the payload) —
  ``value_to_int`` / ``int_to_value`` give a bijective, type-tagged
  integer encoding.

All encodings are deterministic and self-delimiting, so two datasources
independently encode equal values identically — the property that makes
ciphertext-side matching sound.
"""

from __future__ import annotations

import json

from repro.errors import EncodingError
from repro.relational.relation import Relation, Row
from repro.relational.schema import AttributeType, Schema, Value

# Type tags for the integer encoding (2 bits of tag in the low byte).
_TAG_INT = 0x01
_TAG_STRING = 0x02
_TAG_BOOL = 0x03
_TAG_NAMES = {_TAG_INT: "int", _TAG_STRING: "string", _TAG_BOOL: "bool"}


def encode_value(value: Value) -> bytes:
    """Canonical, type-disambiguated byte encoding of a single value."""
    if isinstance(value, bool):
        return b"b" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def encode_row(row: Row) -> bytes:
    """Canonical byte encoding of one tuple (length-prefixed fields)."""
    parts = []
    for value in row:
        encoded = encode_value(value)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def decode_row(data: bytes, schema: Schema) -> Row:
    """Inverse of :func:`encode_row` under a schema (restores types)."""
    values: list[Value] = []
    offset = 0
    for attribute in schema.attributes:
        if offset + 4 > len(data):
            raise EncodingError("truncated row encoding")
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        field = data[offset:offset + length]
        if len(field) != length:
            raise EncodingError("truncated row field")
        offset += length
        values.append(_decode_field(field, attribute.type))
    if offset != len(data):
        raise EncodingError("trailing bytes after row encoding")
    return tuple(values)


def _decode_field(field: bytes, expected: AttributeType) -> Value:
    if not field:
        raise EncodingError("empty field encoding")
    tag, body = field[:1], field[1:]
    if tag == b"i" and expected is AttributeType.INT:
        return int(body.decode("ascii"))
    if tag == b"s" and expected is AttributeType.STRING:
        return body.decode("utf-8")
    if tag == b"b" and expected is AttributeType.BOOL:
        return body == b"1"
    raise EncodingError(
        f"field tag {tag!r} does not match expected type {expected.value}"
    )


def encode_rows(rows: tuple[Row, ...] | list[Row]) -> bytes:
    """Canonical encoding of a tuple set ``Tup_i(a)`` (count-prefixed)."""
    parts = [len(rows).to_bytes(4, "big")]
    for row in rows:
        encoded = encode_row(row)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def decode_rows(data: bytes, schema: Schema) -> tuple[Row, ...]:
    """Inverse of :func:`encode_rows`."""
    if len(data) < 4:
        raise EncodingError("truncated tuple-set encoding")
    count = int.from_bytes(data[:4], "big")
    offset = 4
    rows = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise EncodingError("truncated tuple-set entry")
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        rows.append(decode_row(data[offset:offset + length], schema))
        offset += length
    if offset != len(data):
        raise EncodingError("trailing bytes after tuple-set encoding")
    return tuple(rows)


def encode_relation(relation: Relation) -> bytes:
    """Encode a whole relation (schema header + rows) for transport.

    Used when index tables or side tables travel inside hybrid
    ciphertexts; JSON keeps the header human-auditable in transcripts.
    """
    header = json.dumps(
        {
            "name": relation.schema.relation_name,
            "attributes": [
                [a.name, a.type.value] for a in relation.schema.attributes
            ],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    body = encode_rows(relation.rows)
    return len(header).to_bytes(4, "big") + header + body


def decode_relation(data: bytes) -> Relation:
    """Inverse of :func:`encode_relation`."""
    from repro.relational.schema import Attribute  # local: avoid cycle noise

    if len(data) < 4:
        raise EncodingError("truncated relation encoding")
    header_length = int.from_bytes(data[:4], "big")
    header = json.loads(data[4:4 + header_length].decode("utf-8"))
    schema = Schema(
        header["name"],
        [Attribute(name, AttributeType(t)) for name, t in header["attributes"]],
    )
    rows = decode_rows(data[4 + header_length:], schema)
    return Relation(schema, rows)


# ---------------------------------------------------------------------------
# Integer encoding of join values (private matching)
# ---------------------------------------------------------------------------


def value_to_int(value: Value, max_bytes: int = 64) -> int:
    """Bijective integer encoding of a join value: ``body || tag``.

    The tag occupies the lowest byte so that distinct types never
    collide; the body is the canonical byte encoding interpreted
    big-endian.  ``max_bytes`` bounds the body so the result provably
    fits the homomorphic message space chosen by the caller.
    """
    if isinstance(value, bool):
        return (int(value) << 8) | _TAG_BOOL
    if isinstance(value, int):
        if value < 0:
            raise EncodingError("negative join values are not supported")
        body = value
        tag = _TAG_INT
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) > max_bytes:
            raise EncodingError(
                f"string join value exceeds {max_bytes} bytes"
            )
        # Prefix a 1-byte so leading zero bytes (and the empty string)
        # survive the integer round-trip.
        body = int.from_bytes(b"\x01" + raw, "big")
        tag = _TAG_STRING
    else:
        raise EncodingError(f"cannot encode value of type {type(value).__name__}")
    encoded = (body << 8) | tag
    if encoded.bit_length() > 8 * (max_bytes + 2):
        raise EncodingError("encoded join value exceeds the size bound")
    return encoded


def int_to_value(encoded: int) -> Value:
    """Inverse of :func:`value_to_int`."""
    if encoded < 0:
        raise EncodingError("negative encoded value")
    tag = encoded & 0xFF
    body = encoded >> 8
    if tag == _TAG_INT:
        return body
    if tag == _TAG_BOOL:
        if body not in (0, 1):
            raise EncodingError("invalid boolean encoding")
        return bool(body)
    if tag == _TAG_STRING:
        raw = body.to_bytes((body.bit_length() + 7) // 8, "big")
        if not raw.startswith(b"\x01"):
            raise EncodingError("invalid string encoding prefix")
        return raw[1:].decode("utf-8")
    raise EncodingError(f"unknown value tag {tag}")
