"""Condition ASTs for selections and join predicates.

The DAS protocol manipulates conditions *symbolically*: the client-side
query translator builds the server condition ``Cond_S`` — a disjunction
over pairs of overlapping partition index values — and the client
condition ``Cond_C`` (equality of the real join attributes after
decryption).  Conditions therefore need to be first-class values that can
be constructed, composed, serialized into transcripts, and evaluated.

Evaluation happens against a *resolver*: a function from (possibly
qualified) attribute names to values, supplied by the algebra operators.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import QueryError
from repro.relational.schema import Value

Resolver = Callable[[str], Value]

_OPERATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Condition:
    """Base class for condition AST nodes."""

    def evaluate(self, resolve: Resolver) -> bool:
        raise NotImplementedError

    # Composition sugar mirrors the paper's wedge/vee notation.
    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)

    def attributes(self) -> frozenset[str]:
        """All attribute names the condition references."""
        raise NotImplementedError


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The always-true condition (identity of conjunction)."""

    def evaluate(self, resolve: Resolver) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """The always-false condition (identity of disjunction).

    ``Cond_S`` over index tables with *no* overlapping partitions is the
    empty disjunction — this node — and correctly selects nothing.
    """

    def evaluate(self, resolve: Resolver) -> bool:
        return False

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Comparison(Condition):
    """``attribute op literal`` — e.g. ``R1S.Ajoin = index(p1)``."""

    attribute: str
    op: str
    value: Value

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, resolve: Resolver) -> bool:
        return _OPERATORS[self.op](resolve(self.attribute), self.value)

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class AttributeComparison(Condition):
    """``attribute op attribute`` — e.g. ``R1.Ajoin = R2.Ajoin``."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, resolve: Resolver) -> bool:
        return _OPERATORS[self.op](resolve(self.left), resolve(self.right))

    def attributes(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Condition):
    clauses: tuple[Condition, ...]

    def evaluate(self, resolve: Resolver) -> bool:
        return all(clause.evaluate(resolve) for clause in self.clauses)

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.clauses))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.clauses) + ")"


@dataclass(frozen=True)
class Or(Condition):
    clauses: tuple[Condition, ...]

    def evaluate(self, resolve: Resolver) -> bool:
        return any(clause.evaluate(resolve) for clause in self.clauses)

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.clauses))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.clauses) + ")"


@dataclass(frozen=True)
class Not(Condition):
    clause: Condition

    def evaluate(self, resolve: Resolver) -> bool:
        return not self.clause.evaluate(resolve)

    def attributes(self) -> frozenset[str]:
        return self.clause.attributes()

    def __str__(self) -> str:
        return f"NOT {self.clause}"


def conjunction(clauses: Iterable[Condition]) -> Condition:
    """AND of clauses; empty input yields :class:`TrueCondition`."""
    clauses = tuple(clauses)
    if not clauses:
        return TrueCondition()
    if len(clauses) == 1:
        return clauses[0]
    return And(clauses)


def disjunction(clauses: Iterable[Condition]) -> Condition:
    """OR of clauses; empty input yields :class:`FalseCondition`.

    This is exactly how ``Cond_S`` is assembled from overlapping
    partition pairs in Section 3.1.
    """
    clauses = tuple(clauses)
    if not clauses:
        return FalseCondition()
    if len(clauses) == 1:
        return clauses[0]
    return Or(clauses)
