"""Relational algebra: direct operators and query trees.

Two layers live here:

* **Direct operators** (:func:`select`, :func:`project`,
  :func:`natural_join`, :func:`select_product`, ...) — pure functions on
  :class:`~repro.relational.relation.Relation` values.  These compute
  reference results for the protocol tests and implement the mediator's
  server-query evaluation (``sigma_CondS(R1S x R2S)``).
* **Algebra trees** — the "algebra tree (with relational operators in the
  inner nodes and partial queries at the leaves)" that the mediator's
  SQL2Algebra component produces (Section 2).  Trees evaluate against an
  environment mapping relation names to relation instances and expose the
  leaves so the mediator can decompose a global query into partial
  queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import QueryError, SchemaError
from repro.relational.conditions import Condition, Resolver
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema, Value

# ---------------------------------------------------------------------------
# Direct operators
# ---------------------------------------------------------------------------


def select(relation: Relation, condition: Condition) -> Relation:
    """``sigma_condition(relation)``."""

    def resolve_for(row: Row) -> Resolver:
        return lambda name: relation.value(row, name)

    rows = [row for row in relation if condition.evaluate(resolve_for(row))]
    return Relation(relation.schema, rows)


def project(relation: Relation, attributes: Iterable[str]) -> Relation:
    """``pi_attributes(relation)`` (set semantics: duplicates collapse)."""
    attributes = list(attributes)
    positions = [relation.schema.position(name) for name in attributes]
    projected = relation.schema.project(attributes)
    return Relation(projected, [tuple(row[i] for i in positions) for row in relation])


def product(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Cross product; colliding attribute names get relation prefixes."""
    result_name = name or f"{left.name}_x_{right.name}"
    left_names = set(left.schema.names())
    attributes = list(left.schema.attributes)
    for attribute in right.schema.attributes:
        if attribute.name in left_names:
            attributes.append(
                Attribute(f"{right.name}_{attribute.name}", attribute.type)
            )
        else:
            attributes.append(attribute)
    schema = Schema(result_name, attributes)
    rows = [l + r for l in left for r in right]
    return Relation(schema, rows)


def select_product(
    left: Relation,
    right: Relation,
    condition: Condition,
    name: str | None = None,
) -> Relation:
    """Fused ``sigma_condition(left x right)`` with qualified resolution.

    The condition may reference attributes as ``left_name.attr`` /
    ``right_name.attr`` (or bare names when unambiguous), exactly like
    the paper's ``Cond_S`` references ``R1S.Ajoin`` and ``R2S.Ajoin``.
    This is the mediator's server-query evaluator, fused so it does not
    materialize the full cross product first.
    """
    result_name = name or f"{left.name}_x_{right.name}"

    def resolver(l_row: Row, r_row: Row) -> Resolver:
        def resolve(attribute: str) -> Value:
            if "." in attribute:
                qualifier, bare = attribute.split(".", 1)
                if qualifier == left.name:
                    return left.value(l_row, bare)
                if qualifier == right.name:
                    return right.value(r_row, bare)
                raise QueryError(f"unknown qualifier in {attribute!r}")
            in_left = left.schema.has(attribute)
            in_right = right.schema.has(attribute)
            if in_left and in_right:
                raise QueryError(f"ambiguous attribute {attribute!r}")
            if in_left:
                return left.value(l_row, attribute)
            if in_right:
                return right.value(r_row, attribute)
            raise QueryError(f"unknown attribute {attribute!r}")

        return resolve

    matches = [
        l_row + r_row
        for l_row in left
        for r_row in right
        if condition.evaluate(resolver(l_row, r_row))
    ]
    # Build the product schema (with prefixes for collisions) lazily but
    # identically to product().
    left_names = set(left.schema.names())
    attributes = list(left.schema.attributes)
    for attribute in right.schema.attributes:
        if attribute.name in left_names:
            attributes.append(
                Attribute(f"{right.name}_{attribute.name}", attribute.type)
            )
        else:
            attributes.append(attribute)
    return Relation(Schema(result_name, attributes), matches)


def natural_join(
    left: Relation, right: Relation, name: str | None = None
) -> Relation:
    """Natural join on all shared attribute names.

    This is the reference implementation the protocols are tested
    against: every protocol's decrypted global result must equal
    ``natural_join(R1, R2)``.
    """
    common = left.schema.common_attributes(right.schema)
    if not common:
        return product(left, right, name)
    result_name = name or f"{left.name}_join_{right.name}"
    schema = left.schema.join_schema(right.schema, result_name)
    right_extra = [
        n for n in right.schema.names() if n not in set(left.schema.names())
    ]
    right_extra_positions = [right.schema.position(n) for n in right_extra]
    common_left = [left.schema.position(n) for n in common]
    common_right = [right.schema.position(n) for n in common]

    # Hash join on the shared attributes.
    buckets: dict[tuple[Value, ...], list[Row]] = {}
    for row in right:
        key = tuple(row[i] for i in common_right)
        buckets.setdefault(key, []).append(row)
    rows = []
    for l_row in left:
        key = tuple(l_row[i] for i in common_left)
        for r_row in buckets.get(key, ()):
            rows.append(l_row + tuple(r_row[i] for i in right_extra_positions))
    return Relation(schema, rows)


def _require_compatible(left: Relation, right: Relation, operation: str) -> None:
    left_types = tuple(a.type for a in left.schema.attributes)
    right_types = tuple(a.type for a in right.schema.attributes)
    if left_types != right_types:
        raise SchemaError(f"{operation} requires union-compatible schemas")


def union(left: Relation, right: Relation) -> Relation:
    _require_compatible(left, right, "union")
    return Relation(left.schema, list(left) + list(right))


def intersection(left: Relation, right: Relation) -> Relation:
    _require_compatible(left, right, "intersection")
    right_rows = set(right.rows)
    return Relation(left.schema, [row for row in left if row in right_rows])


def difference(left: Relation, right: Relation) -> Relation:
    _require_compatible(left, right, "difference")
    right_rows = set(right.rows)
    return Relation(left.schema, [row for row in left if row not in right_rows])


# ---------------------------------------------------------------------------
# Algebra trees (SQL2Algebra output)
# ---------------------------------------------------------------------------


class AlgebraNode:
    """Base class for query-tree nodes."""

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        raise NotImplementedError

    def leaves(self) -> list["PartialQuery"]:
        """All partial-query leaves, left to right."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Indented tree rendering (for examples and transcripts)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PartialQuery(AlgebraNode):
    """A leaf: ``select * from <relation>`` executed by one datasource.

    The paper keeps partial queries to ``select *``; the optional
    ``condition`` supports the selection push-down extension (Section 8),
    in which case the SQL the datasource executes carries a WHERE clause.
    """

    relation_name: str
    condition: Condition | None = None

    @property
    def sql(self) -> str:
        if self.condition is None:
            return f"select * from {self.relation_name}"
        return f"select * from {self.relation_name} where {self.condition}"

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        if self.relation_name not in env:
            raise QueryError(f"no relation bound for {self.relation_name!r}")
        result = env[self.relation_name]
        if self.condition is not None:
            result = select(result, self.condition)
        return result

    def leaves(self) -> list["PartialQuery"]:
        return [self]

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"PartialQuery[{self.sql}]"


@dataclass(frozen=True)
class Select(AlgebraNode):
    condition: Condition
    child: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        # A selection directly over a product (the JOIN ... ON shape) is
        # evaluated fused, so the condition may use qualified names of
        # the *original* relations (R1.k = R2.k).
        if isinstance(self.child, Product):
            return select_product(
                self.child.left.evaluate(env),
                self.child.right.evaluate(env),
                self.condition,
            )
        return select(self.child.evaluate(env), self.condition)

    def leaves(self) -> list[PartialQuery]:
        return self.child.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + f"Select[{self.condition}]\n"
            + self.child.describe(indent + 2)
        )


@dataclass(frozen=True)
class Project(AlgebraNode):
    attributes: tuple[str, ...]
    child: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        return project(self.child.evaluate(env), self.attributes)

    def leaves(self) -> list[PartialQuery]:
        return self.child.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + f"Project[{', '.join(self.attributes)}]\n"
            + self.child.describe(indent + 2)
        )


@dataclass(frozen=True)
class Join(AlgebraNode):
    """Natural join node — the operation the paper's protocols secure."""

    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        return natural_join(self.left.evaluate(env), self.right.evaluate(env))

    def leaves(self) -> list[PartialQuery]:
        return self.left.leaves() + self.right.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + "Join\n"
            + self.left.describe(indent + 2)
            + "\n"
            + self.right.describe(indent + 2)
        )


@dataclass(frozen=True)
class Product(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        return product(self.left.evaluate(env), self.right.evaluate(env))

    def leaves(self) -> list[PartialQuery]:
        return self.left.leaves() + self.right.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + "Product\n"
            + self.left.describe(indent + 2)
            + "\n"
            + self.right.describe(indent + 2)
        )


def evaluate_above_join(tree: AlgebraNode, join_result: Relation) -> Relation:
    """Apply the operators sitting *above* the join to its result.

    The delivery protocols produce the (decrypted) join; any remaining
    Select/Project layers of the global query are the client's local
    post-processing.  Conditions must use bare attribute names of the
    join schema (qualified base-relation names no longer exist after the
    join collapses shared attributes).
    """
    if isinstance(tree, Join):
        return join_result
    if isinstance(tree, Select):
        return select(evaluate_above_join(tree.child, join_result), tree.condition)
    if isinstance(tree, Project):
        return project(
            evaluate_above_join(tree.child, join_result), tree.attributes
        )
    raise QueryError(
        f"cannot post-process operator {type(tree).__name__} above the join"
    )


@dataclass(frozen=True)
class Union(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        return union(self.left.evaluate(env), self.right.evaluate(env))

    def leaves(self) -> list[PartialQuery]:
        return self.left.leaves() + self.right.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + "Union\n"
            + self.left.describe(indent + 2)
            + "\n"
            + self.right.describe(indent + 2)
        )


@dataclass(frozen=True)
class Intersection(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, env: Mapping[str, Relation]) -> Relation:
        return intersection(self.left.evaluate(env), self.right.evaluate(env))

    def leaves(self) -> list[PartialQuery]:
        return self.left.leaves() + self.right.leaves()

    def describe(self, indent: int = 0) -> str:
        return (
            " " * indent
            + "Intersection\n"
            + self.left.describe(indent + 2)
            + "\n"
            + self.right.describe(indent + 2)
        )
