"""Tests for polynomials over Z_n and oblivious evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import paillier, polynomial
from repro.crypto.homomorphic import PaillierScheme
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def key():
    return paillier.generate_keypair(256)


@pytest.fixture(scope="module")
def scheme():
    return PaillierScheme(256)


MODULUS = 2**61 - 1  # prime, so plaintext evaluation over a field


class TestFromRoots:
    def test_roots_evaluate_to_zero(self):
        roots = [3, 17, 255]
        coefficients = polynomial.from_roots(roots, MODULUS)
        for root in roots:
            assert polynomial.evaluate(coefficients, root, MODULUS) == 0

    def test_non_roots_nonzero(self):
        coefficients = polynomial.from_roots([3, 17, 255], MODULUS)
        for x in (1, 4, 1000):
            assert polynomial.evaluate(coefficients, x, MODULUS) != 0

    def test_degree_equals_root_count(self):
        coefficients = polynomial.from_roots(list(range(1, 8)), MODULUS)
        assert polynomial.degree(coefficients) == 7

    def test_leading_coefficient_sign(self):
        # Product of (a_i - x): leading coefficient is (-1)^n.
        coefficients = polynomial.from_roots([5, 6, 7], MODULUS)
        assert coefficients[-1] == MODULUS - 1  # (-1)^3 mod m

    def test_empty_roots_is_constant_one(self):
        coefficients = polynomial.from_roots([], MODULUS)
        assert coefficients == [1]
        assert polynomial.evaluate(coefficients, 12345, MODULUS) == 1

    def test_duplicate_roots(self):
        coefficients = polynomial.from_roots([4, 4], MODULUS)
        assert polynomial.evaluate(coefficients, 4, MODULUS) == 0
        assert polynomial.degree(coefficients) == 2

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            polynomial.from_roots([1], 1)

    def test_empty_evaluate_rejected(self):
        with pytest.raises(ParameterError):
            polynomial.evaluate([], 3, MODULUS)

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=8, unique=True),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_evaluation_matches_product_form(self, roots, x):
        coefficients = polynomial.from_roots(roots, MODULUS)
        expected = 1
        for root in roots:
            expected = expected * (root - x) % MODULUS
        assert polynomial.evaluate(coefficients, x, MODULUS) == expected


class TestEncryptedPolynomial:
    def test_oblivious_evaluation_matches_plaintext(self, key, scheme):
        n = key.public_key.n
        roots = [11, 22, 33]
        coefficients = polynomial.from_roots(roots, n)
        encrypted = polynomial.encrypt_polynomial(scheme, key.public_key, coefficients)
        for x in (11, 12, 10**6):
            expected = polynomial.evaluate(coefficients, x, n)
            assert paillier.decrypt(key, encrypted.evaluate(x)) == expected

    def test_degree_is_public(self, key, scheme):
        coefficients = polynomial.from_roots([1, 2, 3, 4], key.public_key.n)
        encrypted = polynomial.encrypt_polynomial(scheme, key.public_key, coefficients)
        assert encrypted.degree == 4

    def test_masked_evaluate_at_root_yields_payload(self, key, scheme):
        n = key.public_key.n
        encrypted = polynomial.encrypt_polynomial(
            scheme, key.public_key, polynomial.from_roots([77], n)
        )
        ct = encrypted.masked_evaluate(77, mask=987654321, payload=424242)
        assert paillier.decrypt(key, ct) == 424242

    def test_masked_evaluate_at_non_root_is_garbled(self, key, scheme):
        n = key.public_key.n
        encrypted = polynomial.encrypt_polynomial(
            scheme, key.public_key, polynomial.from_roots([77], n)
        )
        ct = encrypted.masked_evaluate(78, mask=987654321, payload=424242)
        decrypted = paillier.decrypt(key, ct)
        assert decrypted != 424242
        # r * P(78) + payload = r * (77 - 78) + payload exactly:
        assert decrypted == (-987654321 + 424242) % n

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_masked_root_always_recovers_payload(self, key, scheme, payload):
        n = key.public_key.n
        encrypted = polynomial.encrypt_polynomial(
            scheme, key.public_key, polynomial.from_roots([5, 9], n)
        )
        ct = encrypted.masked_evaluate(9, mask=123456789, payload=payload)
        assert paillier.decrypt(key, ct) == payload
