"""Tests for the hash constructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import groups, hashes
from repro.errors import ParameterError


class TestCollisionFreeHash:
    def test_deterministic(self):
        assert hashes.collision_free_hash(b"x") == hashes.collision_free_hash(b"x")

    def test_distinct_inputs(self):
        assert hashes.collision_free_hash(b"x") != hashes.collision_free_hash(b"y")

    def test_tag_separation(self):
        assert hashes.collision_free_hash(b"x", b"tag-a") != (
            hashes.collision_free_hash(b"x", b"tag-b")
        )

    def test_length(self):
        assert len(hashes.collision_free_hash(b"x")) == 32


class TestExpand:
    def test_lengths(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(hashes.expand(b"seed", n)) == n

    def test_prefix_consistency(self):
        long = hashes.expand(b"seed", 64)
        short = hashes.expand(b"seed", 16)
        assert long[:16] == short

    def test_distinct_seeds(self):
        assert hashes.expand(b"a", 32) != hashes.expand(b"b", 32)

    def test_negative_length(self):
        with pytest.raises(ParameterError):
            hashes.expand(b"seed", -1)


class TestHashToRange:
    def test_in_range(self):
        for n in (2, 17, 2**64, 2**256):
            assert 0 <= hashes.hash_to_range(b"data", n) < n

    def test_deterministic(self):
        assert hashes.hash_to_range(b"d", 1000) == hashes.hash_to_range(b"d", 1000)

    def test_invalid_modulus(self):
        with pytest.raises(ParameterError):
            hashes.hash_to_range(b"d", 0)

    def test_spread(self):
        outputs = {hashes.hash_to_range(str(i).encode(), 10**9) for i in range(100)}
        assert len(outputs) == 100


class TestIdealHash:
    @pytest.fixture(scope="class")
    def group(self):
        return groups.commutative_group(128)

    def test_output_is_quadratic_residue(self, group):
        h = hashes.IdealHash(group.p)
        for i in range(50):
            assert group.contains(h(f"input-{i}".encode()))

    def test_deterministic_across_instances(self, group):
        # Both datasources construct their own instance; equal parameters
        # must yield equal hashes (the protocol's matching soundness).
        h1, h2 = hashes.IdealHash(group.p), hashes.IdealHash(group.p)
        assert h1(b"patient-42") == h2(b"patient-42")
        assert h1 == h2

    def test_tag_separation(self, group):
        h1 = hashes.IdealHash(group.p, tag=b"run-1")
        h2 = hashes.IdealHash(group.p, tag=b"run-2")
        assert h1(b"x") != h2(b"x")
        assert h1 != h2

    @given(st.binary(min_size=1, max_size=128))
    @settings(max_examples=50, deadline=None)
    def test_always_in_group(self, group, data):
        h = hashes.IdealHash(group.p)
        assert group.contains(h(data))

    def test_no_collisions_on_sample(self, group):
        h = hashes.IdealHash(group.p)
        outputs = [h(f"v{i}".encode()) for i in range(200)]
        assert len(set(outputs)) == 200

    def test_small_modulus_rejected(self):
        with pytest.raises(ParameterError):
            hashes.IdealHash(5)


class TestFingerprint:
    def test_stable_and_short(self):
        assert hashes.fingerprint(b"key") == hashes.fingerprint(b"key")
        assert len(hashes.fingerprint(b"key")) == 16
        assert len(hashes.fingerprint(b"key", length=8)) == 8

    def test_distinct(self):
        assert hashes.fingerprint(b"a") != hashes.fingerprint(b"b")
