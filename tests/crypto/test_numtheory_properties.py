"""Property-based tests for numtheory, run against every backend.

Each property is checked under each available bigint backend
(pure Python always; gmpy2 when installed), so a backend cannot drift
from the reference semantics without a test noticing:

* Jacobi symbol agrees with the Euler criterion on primes,
* Tonelli-Shanks roots square back to their argument,
* CRT pair reconstruction is exact,
* ``modinv(a, m) * a = 1 (mod m)`` whenever ``gcd(a, m) = 1``,
* ``powmod`` agrees with the stdlib ``pow``.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import backend as bk
from repro.crypto import numtheory as nt
from repro.errors import ParameterError

#: Primes of both residue classes mod 4 (3-mod-4 takes the fast
#: square-root branch; 1-mod-4 the full Tonelli-Shanks loop).
ODD_PRIMES = [103, 7919, 104729, 2**127 - 1]

pytestmark = pytest.mark.parametrize(
    "backend_name", bk.available_backends()
)


@given(
    a=st.integers(min_value=1, max_value=2**256),
    p=st.sampled_from(ODD_PRIMES),
)
@settings(max_examples=80, deadline=None)
def test_jacobi_matches_euler_criterion(backend_name, a, p):
    with bk.use_backend(backend_name):
        a %= p
        if a == 0:
            assert nt.jacobi(a, p) == 0
            return
        euler = pow(a, (p - 1) // 2, p)
        assert nt.jacobi(a, p) == (1 if euler == 1 else -1)


@given(
    a=st.integers(min_value=1, max_value=2**128),
    p=st.sampled_from(ODD_PRIMES),
)
@settings(max_examples=80, deadline=None)
def test_sqrt_mod_prime_roots_square_back(backend_name, a, p):
    with bk.use_backend(backend_name):
        square = a * a % p
        root = nt.sqrt_mod_prime(square, p)
        assert root * root % p == square
        # The other root is the negation; both must square back too.
        assert (p - root) * (p - root) % p == square


@given(
    x=st.integers(min_value=0, max_value=2**128),
    moduli=st.sampled_from([(7, 11), (101, 103), (7919, 104729)]),
)
@settings(max_examples=80, deadline=None)
def test_crt_pair_reconstructs(backend_name, x, moduli):
    with bk.use_backend(backend_name):
        m1, m2 = moduli
        x %= m1 * m2
        assert nt.crt_pair(x % m1, m1, x % m2, m2) == x


@given(
    a=st.integers(min_value=1, max_value=2**192),
    m=st.sampled_from([9, 35, 101, 104729, 2**127 - 1, 3 * (2**89 - 1)]),
)
@settings(max_examples=100, deadline=None)
def test_modinv_times_a_is_one(backend_name, a, m):
    with bk.use_backend(backend_name):
        if math.gcd(a, m) != 1:
            with pytest.raises(ParameterError):
                nt.modinv(a, m)
            return
        assert nt.modinv(a, m) * a % m == 1


@given(
    base=st.integers(min_value=0, max_value=2**256),
    exponent=st.integers(min_value=0, max_value=2**96),
    modulus=st.sampled_from([2, 97, 104729, 2**127 - 1, 2**255 - 19]),
)
@settings(max_examples=100, deadline=None)
def test_powmod_matches_stdlib_pow(backend_name, base, exponent, modulus):
    with bk.use_backend(backend_name):
        result = nt.powmod(base, exponent, modulus)
        assert result == pow(base, exponent, modulus)
        assert type(result) is int


@given(n=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_primality_matches_trial_division(backend_name, n):
    with bk.use_backend(backend_name):
        by_trial = n >= 2 and all(n % d for d in range(2, math.isqrt(n) + 1))
        assert nt.is_probable_prime(n) == by_trial
