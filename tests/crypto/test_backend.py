"""Tests for the pluggable bigint backend layer (repro.crypto.backend).

The native (gmpy2) cases are skipped on hosts without gmpy2 — the CI
optional-deps job installs it and runs them; the tier-1 matrix proves
the pure-Python fallback by never installing it.
"""

import math

import pytest

from repro.crypto import backend as bk
from repro.errors import ParameterError
from repro.telemetry.metrics import MetricsRegistry, use_metrics

needs_gmpy2 = pytest.mark.skipif(
    not bk.native_available(), reason="gmpy2 not installed"
)

#: Moduli spanning word-size to production-size operands.
MODULI = [97, 104729, 2**127 - 1, (2**607 - 1)]


def every_backend():
    return [bk.resolve_backend(name) for name in bk.available_backends()]


class TestSelection:
    def test_python_always_available(self):
        assert "python" in bk.available_backends()

    def test_resolve_python(self):
        assert bk.resolve_backend("python").name == "python"

    def test_resolve_instance_is_identity(self):
        backend = bk.PythonBackend()
        assert bk.resolve_backend(backend) is backend

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ParameterError):
            bk.resolve_backend("openssl")

    def test_auto_resolves_to_an_available_backend(self):
        assert bk.resolve_backend("auto").name in bk.available_backends()

    def test_explicit_gmpy2_without_module_fails_fast(self):
        if bk.native_available():
            pytest.skip("gmpy2 installed; refusal path not reachable")
        with pytest.raises(ParameterError):
            bk.resolve_backend("gmpy2")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV, "python")
        assert bk.resolve_backend(None).name == "python"
        monkeypatch.setenv(bk.BACKEND_ENV, "no-such-backend")
        with pytest.raises(ParameterError):
            bk.resolve_backend(None)

    def test_set_backend_round_trip(self):
        previous = bk.set_backend("python")
        try:
            assert bk.active_backend().name == "python"
        finally:
            bk.set_backend(previous)

    def test_use_backend_restores(self):
        before = bk.active_backend()
        with bk.use_backend("python") as installed:
            assert bk.active_backend() is installed
        assert bk.active_backend() is before


class TestPythonBackend:
    backend = bk.PythonBackend()

    @pytest.mark.parametrize("modulus", MODULI)
    def test_powmod_matches_stdlib(self, modulus):
        for base, exponent in [(2, 3), (7, 1024), (modulus - 2, 65537)]:
            assert self.backend.powmod(base, exponent, modulus) == pow(
                base, exponent, modulus
            )

    def test_invert(self):
        assert self.backend.invert(3, 11) * 3 % 11 == 1
        with pytest.raises(ParameterError):
            self.backend.invert(6, 9)

    def test_gcd(self):
        assert self.backend.gcd(12, 18) == 6

    def test_jacobi_matches_legendre(self):
        p = 103
        for a in range(1, p):
            euler = pow(a, (p - 1) // 2, p)
            assert self.backend.jacobi(a, p) == (1 if euler == 1 else -1)

    def test_primality(self):
        assert self.backend.is_probable_prime(2**61 - 1, 40)
        assert not self.backend.is_probable_prime(561, 40)  # Carmichael
        assert not self.backend.is_probable_prime(1, 40)

    def test_batch_forms(self):
        modulus = 104729
        bases = [2, 3, 5, 7]
        exponents = [1, 10, 100, 1000]
        assert self.backend.powmod_base_list(bases, 65537, modulus) == [
            pow(b, 65537, modulus) for b in bases
        ]
        assert self.backend.powmod_exp_list(6, exponents, modulus) == [
            pow(6, e, modulus) for e in exponents
        ]

    def test_wrap_is_identity(self):
        assert self.backend.wrap(42) == 42
        assert type(self.backend.wrap(42)) is int


@needs_gmpy2
class TestNativeBackend:
    """The native backend must agree with the reference bit for bit."""

    def setup_method(self):
        self.native = bk.NativeBackend()
        self.reference = bk.PythonBackend()

    @pytest.mark.parametrize("modulus", MODULI)
    def test_powmod_agrees(self, modulus):
        for base, exponent in [(2, 3), (7, 1024), (modulus - 2, 65537)]:
            native = self.native.powmod(base, exponent, modulus)
            assert native == self.reference.powmod(base, exponent, modulus)
            assert type(native) is int

    def test_invert_agrees_and_maps_errors(self):
        assert self.native.invert(3, 11) == self.reference.invert(3, 11)
        with pytest.raises(ParameterError):
            self.native.invert(6, 9)

    def test_jacobi_agrees(self):
        for n in (103, 104729):
            for a in range(1, 60):
                assert self.native.jacobi(a, n) == self.reference.jacobi(a, n)

    def test_primality_agrees(self):
        for n in [2, 3, 561, 1105, 7919, 2**61 - 1, 2**61 + 1, 25326001]:
            assert self.native.is_probable_prime(n, 40) == (
                self.reference.is_probable_prime(n, 40)
            )

    def test_batch_forms_agree(self):
        modulus = 2**127 - 1
        bases = list(range(2, 40))
        exponents = [3, 65537, 2**64 + 1]
        assert self.native.powmod_base_list(
            bases, 65537, modulus
        ) == self.reference.powmod_base_list(bases, 65537, modulus)
        assert self.native.powmod_exp_list(
            7, exponents, modulus
        ) == self.reference.powmod_exp_list(7, exponents, modulus)

    def test_gcd_agrees(self):
        assert self.native.gcd(2**40, 3**20 * 2**10) == math.gcd(
            2**40, 3**20 * 2**10
        )


class TestBackendInfoMetric:
    def test_gauge_named_after_active_backend(self):
        registry = MetricsRegistry()
        with use_metrics(registry), bk.use_backend("python"):
            bk.record_backend_info()
        snapshot = registry.snapshot()
        family = snapshot[bk.BACKEND_INFO_METRIC]
        assert family["kind"] == "gauge"
        entries = {
            child["labels"]["backend"]: child["value"]
            for child in family["children"]
        }
        assert entries["python"] == 1

    def test_noop_without_registry(self):
        # Must not raise when no registry is installed.
        bk.record_backend_info()


class TestEngineIntegration:
    def test_engine_defaults_to_installed_backend(self):
        from repro.crypto.engine import CryptoEngine

        with bk.use_backend("python"):
            assert CryptoEngine().backend_name == "python"

    def test_engine_pins_explicit_backend(self):
        from repro.crypto.engine import CryptoEngine

        engine = CryptoEngine(backend="python")
        assert engine.backend_name == "python"
        # Pinned engines ignore later global switches.
        with bk.use_backend(bk.resolve_backend("auto")):
            assert engine.backend_name == "python"

    def test_batch_results_identical_across_backends(self):
        from repro.crypto.engine import CryptoEngine

        modulus = 2**127 - 1
        bases = list(range(2, 30))
        exponents = [3, 9, 81, 6561, 2**100 + 7]
        outputs = set()
        shared_base_outputs = set()
        for backend in every_backend():
            engine = CryptoEngine(backend=backend)
            outputs.add(tuple(engine.batch_pow(bases, 65537, modulus)))
            shared_base_outputs.add(
                tuple(engine.batch_pow_shared_base(5, exponents, modulus))
            )
        assert len(outputs) == 1
        assert len(shared_base_outputs) == 1
        assert outputs == {tuple(pow(b, 65537, modulus) for b in bases)}
        assert shared_base_outputs == {
            tuple(pow(5, e, modulus) for e in exponents)
        }
